"""Repo-root pytest configuration.

Puts ``src/`` on ``sys.path`` so the test and benchmark suites run even
when the package is not installed (e.g. offline environments where
``pip install -e .`` cannot fetch build dependencies).  When ``repro``
is installed normally, the installed package wins and this is a no-op.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

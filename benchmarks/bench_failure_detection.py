"""E6 — echo-packet failure detection (paper §4.1).

"Another function of the Group Manager is to periodically check all
hosts in the group by sending echo packets ... When a failure of a host
is detected ... the host is then marked as 'down' at the site's
resource-performance database."

We crash hosts at random times and measure, per echo period: mean and
worst detection latency, echo traffic, and whether the scheduler stops
using the dead host afterwards.

Expected shape: mean detection latency ≈ period/2 (uniform crash time
within an echo interval), worst ≈ period; traffic ∝ 1/period — the
classic liveness/overhead trade-off.
"""

import pytest

from repro.metrics import format_table
from repro.runtime import RuntimeConfig
from repro.scheduler import SiteScheduler
from repro.workloads import bag_of_tasks

from benchmarks._common import fresh_runtime, mean

HORIZON_S = 400.0


def run_detection(echo_period: float, seed: int = 0):
    rt = fresh_runtime(
        n_sites=1,
        hosts_per_site=8,
        seed=seed,
        config=RuntimeConfig(echo_period_s=echo_period),
    )
    rt.start_monitoring()
    rng = rt.sim.rng("bench:crashes")
    crash_times = {}
    for i, host in enumerate(rt.topology.all_hosts[:6]):
        t = float(rng.uniform(10.0, HORIZON_S - 50.0))
        crash_times[host.name] = t
        rt.sim.call_at(t, host.fail)
    rt.sim.run(until=HORIZON_S)

    latencies = []
    for host_name, crashed_at in crash_times.items():
        detections = [
            e for e in rt.stats.detection_log
            if e[1] == host_name and e[2] == "down"
        ]
        assert detections, f"{host_name} crash never detected"
        latencies.append(detections[0][0] - crashed_at)
    return latencies, rt.stats.echo_packets, rt


def test_detection_latency_vs_echo_period(benchmark):
    rows = []
    by_period = {}
    for period in (1.0, 5.0, 20.0):
        latencies, packets, _rt = run_detection(period)
        by_period[period] = (mean(latencies), max(latencies), packets)
        rows.append(
            {
                "echo_period_s": period,
                "mean_latency_s": round(mean(latencies), 2),
                "worst_latency_s": round(max(latencies), 2),
                "echo_packets": packets,
            }
        )
    print()
    print(format_table(rows, title="E6 — failure-detection latency vs echo period"))

    for period, (mean_lat, worst_lat, _packets) in by_period.items():
        assert mean_lat <= period * 1.05
        assert worst_lat <= period * 1.05
    # latency grows, traffic shrinks with the period
    assert by_period[20.0][0] > by_period[1.0][0]
    assert by_period[20.0][2] < by_period[1.0][2]

    benchmark(lambda: run_detection(5.0))


def test_scheduler_avoids_detected_down_hosts(benchmark):
    """After detection, host selection must exclude the dead host."""
    rt = fresh_runtime(
        n_sites=1, hosts_per_site=4, seed=1,
        config=RuntimeConfig(echo_period_s=2.0),
    )
    rt.start_monitoring()
    # the fastest host dies; detection happens by t=4
    fastest = max(rt.topology.all_hosts, key=lambda h: h.spec.speed)
    rt.sim.call_at(1.0, fastest.fail)
    rt.sim.run(until=10.0)
    assert not rt.repositories["site-0"].resources.get(fastest.name).up

    afg = bag_of_tasks(n=8, cost=2.0, seed=1)
    table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
    used = set(table.hosts_used())
    print(f"\nE6b — dead host {fastest.name} excluded from placement: "
          f"{fastest.name not in used} (used: {sorted(used)})")
    assert fastest.name not in used

    def cycle():
        return SiteScheduler(k=0).schedule(afg, rt.federation_view())

    benchmark(cycle)

"""E7 — dynamic task rescheduling under load spikes (paper §4.1).

"If the current load on any of these machines is more than a predefined
threshold value, the Application Controller terminates the task
execution on the machine and sends a task rescheduling request."

We run a long pipeline while workstation owners return at random
(sustained load spikes) and compare makespans with the Application
Controller's rescheduling enabled (threshold 3.0) vs disabled
(threshold effectively infinite), over several spike seeds.

Expected shape: rescheduling recovers most of the spike-induced
slowdown whenever spikes actually hit the critical path; it never makes
the no-spike case worse.
"""

import pytest

from repro.metrics import format_table
from repro.runtime import RuntimeConfig
from repro.scheduler import SiteScheduler
from repro.sim.workload import SpikeLoad, attach_generators
from repro.workloads import linear_pipeline

from benchmarks._common import fresh_runtime, mean

ENABLED = RuntimeConfig(load_threshold=3.0, check_period_s=1.0)
DISABLED = RuntimeConfig(load_threshold=1e9, check_period_s=1.0)


def run_case(config: RuntimeConfig, spikes: bool, seed: int):
    rt = fresh_runtime(n_sites=1, hosts_per_site=5, seed=seed, config=config)
    if spikes:
        attach_generators(
            rt.sim,
            rt.topology.all_hosts,
            lambda: SpikeLoad(base=0.1, spike_level=8.0, spike_prob=0.05,
                              spike_duration_periods=20, period_s=1.0),
        )
    afg = linear_pipeline(n_stages=8, cost=8.0, edge_mb=0.5)
    table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
    result = rt.sim.run_until_complete(
        rt.execute_process(afg, table, execute_payloads=False)
    )
    return result


def test_rescheduling_under_spikes(benchmark):
    seeds = (0, 1, 2, 3)
    quiet = mean(run_case(ENABLED, False, s).makespan for s in seeds)
    with_resched = [run_case(ENABLED, True, s) for s in seeds]
    without_resched = [run_case(DISABLED, True, s) for s in seeds]

    rows = [
        {
            "case": "no spikes (baseline)",
            "makespan_s": round(quiet, 2),
            "reschedules": 0,
        },
        {
            "case": "spikes + rescheduling",
            "makespan_s": round(mean(r.makespan for r in with_resched), 2),
            "reschedules": sum(r.reschedules for r in with_resched),
        },
        {
            "case": "spikes, no rescheduling",
            "makespan_s": round(mean(r.makespan for r in without_resched), 2),
            "reschedules": sum(r.reschedules for r in without_resched),
        },
    ]
    print()
    print(format_table(rows, title="E7 — load-threshold rescheduling "
                                   "(mean over 4 spike seeds)"))

    resched_mean = mean(r.makespan for r in with_resched)
    no_resched_mean = mean(r.makespan for r in without_resched)
    assert resched_mean <= no_resched_mean * 1.02, (
        "rescheduling should not be slower than riding out the spikes"
    )
    assert sum(r.reschedules for r in with_resched) > 0, (
        "spikes this strong must trigger at least one reschedule"
    )
    assert quiet <= resched_mean * 1.02, "spikes cannot speed things up"

    benchmark(lambda: run_case(ENABLED, True, 0))

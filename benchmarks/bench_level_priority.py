"""E9 — ablation of the level-based priority (paper §3, refs [2, 4]).

"The VDCE scheduling heuristic uses the level of each node to determine
its priority."  We run the same site scheduler with level priorities vs
plain FIFO ready-order on DAGs where ordering matters (deep, unbalanced
forks) and report realised makespans.

Expected shape: level priority <= FIFO on average, with the gap
concentrated on unbalanced graphs (on chains and uniform bags the two
orders coincide, so ties are expected there).
"""

import pytest

from repro.metrics import format_table
from repro.scheduler import SiteScheduler
from repro.workloads import RandomDAGConfig, fork_join, random_dag

from benchmarks._common import fresh_runtime, mean


def run(afg, use_levels: bool, seed: int) -> float:
    rt = fresh_runtime(n_sites=2, hosts_per_site=3, seed=seed)
    scheduler = SiteScheduler(k=1, use_level_priority=use_levels)
    table = scheduler.schedule(afg, rt.federation_view())
    result = rt.sim.run_until_complete(
        rt.execute_process(afg, table, execute_payloads=False)
    )
    return result.makespan


def unbalanced_fork(seed: int):
    """A fork whose branches differ 20x in cost — ordering matters."""
    afg = fork_join(width=6, branch_cost=1.0, head_cost=0.5)
    # make two branches heavy
    for branch in ("b000", "b003"):
        node = afg.task(branch)
        afg.replace_task(node.with_properties(workload_scale=20.0))
    return afg


def test_level_priority_vs_fifo(benchmark):
    workloads = [
        ("unbalanced-fork", unbalanced_fork),
        ("random-wide", lambda seed: random_dag(
            RandomDAGConfig(n_tasks=40, width=8, mean_cost=2.0,
                            cost_heterogeneity=0.8, ccr=0.2, seed=seed))),
        ("random-deep", lambda seed: random_dag(
            RandomDAGConfig(n_tasks=40, width=2, mean_cost=2.0,
                            cost_heterogeneity=0.8, ccr=0.2, seed=seed))),
    ]
    seeds = (0, 1, 2, 3)
    rows = []
    summary = {}
    for name, factory in workloads:
        level = mean(run(factory(s), True, s) for s in seeds)
        fifo = mean(run(factory(s), False, s) for s in seeds)
        summary[name] = (level, fifo)
        rows.append(
            {
                "workload": name,
                "level_makespan_s": round(level, 2),
                "fifo_makespan_s": round(fifo, 2),
                "gain_pct": round(100 * (fifo - level) / fifo, 1),
            }
        )
    print()
    print(format_table(rows, title="E9 — level priority vs FIFO ready order"))

    # per workload the heuristic may trade a few percent either way...
    for name, (level, fifo) in summary.items():
        assert level <= fifo * 1.15, f"level priority badly lost on {name}"
    # ...but in aggregate level priority must win
    overall_level = mean(v[0] for v in summary.values())
    overall_fifo = mean(v[1] for v in summary.values())
    assert overall_level <= overall_fifo

    benchmark(lambda: run(unbalanced_fork(0), True, 0))

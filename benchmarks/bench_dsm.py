"""E14 — the distributed shared memory model (paper §5 future work).

"We are also implementing a distributed shared memory model that will
allow VDCE users to describe their applications using a shared memory
paradigm."  The paper stops there; this experiment characterises the
implementation we built in its place: a home-based write-invalidate
protocol with sequential consistency.

Measured:

* read-mostly vs write-heavy sharing: cache hit rate and invalidation
  traffic as the write fraction grows;
* home placement locality: time per operation when the home host is
  local vs across the WAN.

Expected shape: hit rate falls and invalidations rise with the write
fraction (the fundamental invalidate-protocol trade-off); remote homes
cost one WAN round trip per miss/write.
"""

import pytest

from repro.metrics import format_table
from repro.runtime.dsm import DSM

from benchmarks._common import fresh_runtime


def run_sharing(write_fraction: float, n_ops: int = 400, seed: int = 0):
    rt = fresh_runtime(n_sites=2, hosts_per_site=2, seed=seed)
    dsm = DSM(rt.sim, rt.topology.network)
    hosts = sorted(h.name for h in rt.topology.all_hosts)
    dsm.allocate("x", hosts[0], initial=0)
    rng = rt.sim.rng("bench:dsm")

    def worker():
        for i in range(n_ops):
            host = hosts[int(rng.integers(len(hosts)))]
            if float(rng.uniform()) < write_fraction:
                yield from dsm.write("x", i, host)
            else:
                yield from dsm.read("x", host)

    started = rt.sim.now
    rt.sim.run_until_complete(rt.sim.process(worker()))
    return dsm.stats, rt.sim.now - started


def test_write_fraction_tradeoff(benchmark):
    rows = []
    by_fraction = {}
    for fraction in (0.0, 0.1, 0.5, 0.9):
        stats, elapsed = run_sharing(fraction)
        hit_rate = stats.hit_rate()
        by_fraction[fraction] = (hit_rate, stats.invalidations, elapsed)
        rows.append(
            {
                "write_frac": fraction,
                "reads": stats.reads,
                "hit_rate": round(hit_rate, 3),
                "writes": stats.writes,
                "invalidations": stats.invalidations,
                "virtual_s": round(elapsed, 3),
            }
        )
    print()
    print(format_table(rows, title="E14 — DSM write-invalidate trade-off "
                                   "(4 hosts, 2 sites)"))

    assert by_fraction[0.0][0] > 0.9, "read-only sharing must cache well"
    assert by_fraction[0.0][1] == 0, "no writes, no invalidations"
    assert by_fraction[0.9][0] < by_fraction[0.1][0], (
        "hit rate must fall with write fraction"
    )
    assert by_fraction[0.9][1] > by_fraction[0.1][1] * 2, (
        "invalidation traffic must grow with write fraction"
    )

    benchmark(lambda: run_sharing(0.5, n_ops=100))


def test_home_placement_locality(benchmark):
    """Ops from a host are cheaper when the variable's home is local."""

    def run_home(home_is_local: bool):
        rt = fresh_runtime(n_sites=2, hosts_per_site=2, seed=1)
        dsm = DSM(rt.sim, rt.topology.network)
        hosts = sorted(h.name for h in rt.topology.all_hosts)
        worker_host = hosts[0]  # in site-0
        home = worker_host if home_is_local else hosts[-1]  # site-1
        dsm.allocate("y", home, initial=0)

        def worker():
            for i in range(100):
                yield from dsm.write("y", i, worker_host)
                yield from dsm.read("y", worker_host)

        started = rt.sim.now
        rt.sim.run_until_complete(rt.sim.process(worker()))
        return rt.sim.now - started

    local = run_home(True)
    remote = run_home(False)
    print(f"\nE14b — 200 ops: local home {local * 1000:.1f} ms virtual, "
          f"remote home {remote * 1000:.1f} ms virtual "
          f"({remote / max(local, 1e-12):.0f}x)")
    assert remote > local * 10, "WAN home must cost a round trip per write"

    benchmark(lambda: run_home(False))

"""E2 — Figure 2: the site scheduler algorithm vs baseline schedulers.

The paper's claim: the site scheduler assigns "the most suitable
available resources ... in order to minimize the schedule length".  We
run random DAGs of growing size through VDCE's scheduler and the full
baseline set (random, round-robin, local-only, load-blind, min-min,
max-min, HEFT), executing each allocation on the *same* simulated
runtime, and report realised makespans.

Expected shape: VDCE beats the naive baselines (random/round-robin) at
every size and stays within the list-scheduling family's envelope
(close to min-min/HEFT).
"""

import pytest

from repro.metrics import format_table
from repro.scheduler import (
    HEFTScheduler,
    LoadBlindScheduler,
    LocalOnlyScheduler,
    MaxMinScheduler,
    MinMinScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SiteScheduler,
)
from repro.workloads import RandomDAGConfig, random_dag

from benchmarks._common import fresh_runtime, mean

SCHEDULERS = [
    ("vdce", lambda: SiteScheduler(k=1, name="vdce")),
    ("local-only", LocalOnlyScheduler),
    ("load-blind", lambda: LoadBlindScheduler(k=1)),
    ("min-min", MinMinScheduler),
    ("max-min", MaxMinScheduler),
    ("heft", HEFTScheduler),
    ("round-robin", RoundRobinScheduler),
    ("random", lambda: RandomScheduler(seed=1)),
]

SIZES = [10, 30, 60]
SEEDS = [0, 1, 2]


def run_one(n_tasks: int, seed: int, factory) -> float:
    runtime = fresh_runtime(n_sites=2, hosts_per_site=4, seed=seed)
    afg = random_dag(RandomDAGConfig(n_tasks=n_tasks, width=5, mean_cost=3.0,
                                     cost_heterogeneity=0.6, ccr=0.4,
                                     seed=seed))
    table = factory().schedule(afg, runtime.federation_view())
    result = runtime.sim.run_until_complete(
        runtime.execute_process(afg, table, execute_payloads=False)
    )
    return result.makespan


def test_scheduler_comparison_across_sizes(benchmark):
    rows = []
    makespans = {}
    for n_tasks in SIZES:
        row = {"n_tasks": n_tasks}
        for name, factory in SCHEDULERS:
            value = mean(run_one(n_tasks, s, factory) for s in SEEDS)
            row[name] = round(value, 2)
            makespans[(n_tasks, name)] = value
        rows.append(row)
    print()
    print(format_table(rows, title="E2 / Figure 2 — realised makespan (s), "
                                   "mean over 3 random DAGs"))

    for n_tasks in SIZES:
        vdce = makespans[(n_tasks, "vdce")]
        assert vdce <= makespans[(n_tasks, "random")] * 1.05, (
            f"VDCE lost to random at n={n_tasks}"
        )
        assert vdce <= makespans[(n_tasks, "round-robin")] * 1.05, (
            f"VDCE lost to round-robin at n={n_tasks}"
        )
        # same list-scheduling family: within 2x of HEFT
        assert vdce <= makespans[(n_tasks, "heft")] * 2.0

    benchmark(lambda: run_one(30, 0, SCHEDULERS[0][1]))

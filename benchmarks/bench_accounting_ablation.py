"""E13 — ablation of the reproduction's one algorithmic interpolation.

DESIGN.md §5 documents a single deviation from the literal text of
Figures 2-3: when predicting a task on a host, tasks already committed
to that host in the same scheduling round (and able to run
concurrently) count as run-queue load.  Read literally, the paper's
pseudo-code evaluates every task against the same static repository
state, so all comparable tasks collapse onto the single
fastest-looking host.

This bench runs both variants on three workload shapes:

* a *bag* of independent tasks — where the literal reading is
  catastrophic (everything piles onto one machine);
* a *chain* — where the two variants must agree exactly (stages never
  overlap, so accounting adds nothing);
* *random DAGs* — the general case.

Expected shape: accounting never loses, ties on chains, and wins big
(multiples) on wide/independent workloads.
"""

import pytest

from repro.metrics import format_table
from repro.scheduler import SiteScheduler
from repro.workloads import (
    RandomDAGConfig,
    bag_of_tasks,
    linear_pipeline,
    random_dag,
)

from benchmarks._common import fresh_runtime, mean


def run(afg, account: bool, seed: int) -> float:
    rt = fresh_runtime(n_sites=2, hosts_per_site=4, seed=seed)
    scheduler = SiteScheduler(k=1, account_commitments=account)
    table = scheduler.schedule(afg, rt.federation_view())
    result = rt.sim.run_until_complete(
        rt.execute_process(afg, table, execute_payloads=False)
    )
    return result.makespan


def test_accounting_ablation(benchmark):
    workloads = [
        ("bag-24", lambda s: bag_of_tasks(n=24, cost=4.0, seed=s)),
        ("chain-8", lambda s: linear_pipeline(n_stages=8, cost=3.0)),
        ("random-40", lambda s: random_dag(
            RandomDAGConfig(n_tasks=40, width=6, mean_cost=3.0,
                            cost_heterogeneity=0.5, ccr=0.3, seed=s))),
    ]
    seeds = (0, 1, 2)
    rows = []
    summary = {}
    for name, factory in workloads:
        with_acct = mean(run(factory(s), True, s) for s in seeds)
        literal = mean(run(factory(s), False, s) for s in seeds)
        summary[name] = (with_acct, literal)
        rows.append(
            {
                "workload": name,
                "accounting_s": round(with_acct, 2),
                "literal_fig3_s": round(literal, 2),
                "speedup": round(literal / with_acct, 2),
            }
        )
    print()
    print(format_table(rows, title="E13 — schedule-aware load accounting "
                                   "(the documented deviation) vs literal "
                                   "Fig. 2/3"))

    bag_acct, bag_literal = summary["bag-24"]
    assert bag_acct < bag_literal / 2, (
        "accounting must be multiples better on independent bags"
    )
    chain_acct, chain_literal = summary["chain-8"]
    assert chain_acct == pytest.approx(chain_literal, rel=0.02), (
        "chains must tie: stages never overlap"
    )
    rnd_acct, rnd_literal = summary["random-40"]
    assert rnd_acct <= rnd_literal * 1.02

    benchmark(lambda: run(bag_of_tasks(n=24, cost=4.0, seed=0), True, 0))

"""E4 — locality: "tasks are scheduled within a site (or within the
nearest-neighbor sites) to decrease inter-task communication time".

We sweep k (how many nearest remote sites join the schedule) on a
4-site star whose WAN latency grows with distance, for two workloads:

* a *chatty* application (big edges) — locality should dominate: small
  k (or at least co-located placement) wins, and growing k must not
  blow up the makespan because the transfer-time term of Fig. 2 keeps
  chatty neighbours together;
* a *compute-bound* bag (no edges) — more sites = more hosts, so
  makespan should fall (or at worst flatten) as k grows.

Also sweeps WAN bandwidth for the chatty case: the slower the WAN, the
larger the share of tasks the scheduler keeps on the submitting site.
"""

import pytest

from repro.metrics import format_table
from repro.scheduler import SiteScheduler
from repro.workloads import bag_of_tasks, linear_pipeline

from benchmarks._common import star_runtime


def run(runtime, afg, k):
    table = SiteScheduler(k=k).schedule(afg, runtime.federation_view("site-0"))
    result = runtime.sim.run_until_complete(
        runtime.execute_process(afg, table, submit_site="site-0",
                                execute_payloads=False)
    )
    local_share = sum(
        1 for r in result.records.values() if r.site == "site-0"
    ) / len(result.records)
    return result, local_share


def test_k_sweep_two_workloads(benchmark):
    rows = []
    chatty = {}
    compute = {}
    for k in (0, 1, 2, 3):
        rt = star_runtime(n_sites=4, hosts_per_site=3, seed=k)
        chatty_result, chatty_local = run(
            rt, linear_pipeline(n_stages=8, cost=3.0, edge_mb=20.0), k
        )
        rt2 = star_runtime(n_sites=4, hosts_per_site=3, seed=k)
        bag_result, _ = run(rt2, bag_of_tasks(n=24, cost=4.0, seed=k), k)
        chatty[k] = chatty_result
        compute[k] = bag_result
        rows.append(
            {
                "k": k,
                "chatty_makespan_s": round(chatty_result.makespan, 2),
                "chatty_local_share": round(chatty_local, 2),
                "chatty_moved_mb": round(chatty_result.data_transferred_mb, 1),
                "bag_makespan_s": round(bag_result.makespan, 2),
            }
        )
    print()
    print(format_table(rows, title="E4 — k-nearest-site sweep (star of 4 sites)"))

    # compute-bound: more sites must help (or at worst tie)
    assert compute[3].makespan <= compute[0].makespan * 1.02
    # chatty: widening the federation must not blow up the makespan —
    # the transfer term keeps the pipeline co-located
    assert chatty[3].makespan <= chatty[0].makespan * 1.25

    benchmark(lambda: run(star_runtime(n_sites=4, hosts_per_site=3, seed=0),
                          bag_of_tasks(n=24, cost=4.0, seed=0), 3))


def staged_pipeline(n_stages: int, cost: float, edge_mb: float,
                    file_mb: float):
    """A pipeline whose entry stage stages a big file from the submit site.

    With a file input, the entry task is *not* free to chase the fastest
    remote host: Fig. 2 charges it the transfer of ``file_mb`` from the
    submitting site, so WAN bandwidth gates offloading.
    """
    from repro.afg import (
        ApplicationFlowGraph,
        FileSpec,
        InputBinding,
        TaskNode,
        TaskProperties,
    )

    afg = ApplicationFlowGraph(f"staged-pipeline-{n_stages}")
    afg.add_task(
        TaskNode(
            id="s000",
            task_type="generic.compute",
            n_in_ports=1,
            n_out_ports=1,
            properties=TaskProperties(
                workload_scale=cost,
                inputs=(InputBinding(0, FileSpec("/data/input.dat", file_mb)),),
            ),
        )
    )
    for i in range(1, n_stages):
        afg.add_task(
            TaskNode(
                id=f"s{i:03d}",
                task_type="generic.compute",
                n_in_ports=1,
                n_out_ports=1,
                properties=TaskProperties(workload_scale=cost),
            )
        )
        afg.connect(f"s{i-1:03d}", f"s{i:03d}", size_mb=edge_mb)
    return afg


def test_wan_bandwidth_governs_offloading(benchmark):
    rows = []
    shares = {}
    for bandwidth in (0.05, 2.0, 50.0):
        # remote sites are faster, so offloading is tempting ...
        rt = star_runtime(n_sites=4, hosts_per_site=2, seed=1,
                          speeds=(1.0, 1.0, 3.0, 3.0),
                          wan_bandwidth_mbps=bandwidth)
        # ... but the 60 MB input must come from the submitting site
        afg = staged_pipeline(n_stages=10, cost=2.0, edge_mb=5.0,
                              file_mb=60.0)
        result, local_share = run(rt, afg, k=3)
        shares[bandwidth] = local_share
        rows.append(
            {
                "wan_mbps": bandwidth,
                "makespan_s": round(result.makespan, 2),
                "local_share": round(local_share, 2),
                "moved_mb": round(result.data_transferred_mb, 1),
            }
        )
    print()
    print(format_table(rows, title="E4b — WAN bandwidth vs offloading "
                                   "(file-staged pipeline)"))
    # slow WAN -> stay home; fast WAN -> chase the faster remote hosts
    assert shares[0.05] > shares[50.0]
    assert shares[0.05] == 1.0

    benchmark(
        lambda: run(
            star_runtime(n_sites=4, hosts_per_site=2, seed=1,
                         speeds=(1.0, 1.0, 3.0, 3.0),
                         wan_bandwidth_mbps=2.0),
            staged_pipeline(n_stages=10, cost=2.0, edge_mb=5.0, file_mb=60.0),
            3,
        )
    )

"""Benchmark trajectory harness — the committed ``BENCH_*.json`` files.

Every PR that touches a hot path runs this harness (``python -m repro
bench`` or ``python benchmarks/harness.py``) and commits the canonical
JSON it emits at the repo root.  The file is the perf trajectory: each
scenario records wall seconds, simulated kernel events per wall-second,
tasks scheduled per wall-second, **and the run's trace/metrics hashes**
— so a speedup that changes behaviour is caught by the same artifact
that celebrates it.

Design rules:

* **Fixed workloads, fixed seeds.**  A scenario's simulated workload is
  identical in ``--quick`` and full mode (quick only reduces timing
  repetitions), so the oracle hashes are comparable across modes,
  machines, and PRs.
* **Timing and oracles are separate runs.**  The timed repetitions run
  with tracing and metrics disabled (the production configuration); one
  additional instrumented run produces ``trace_hash`` and
  ``metrics_hash``.
* **Regression gate.**  ``compare(prev, cur)`` fails on a >20% drop in
  any scenario's throughput and on *any* trace-hash change.  Across
  machines (CI vs the committing developer's box) use ``hash_only`` —
  wall-clock numbers are not comparable between hosts, behaviour is.
* **Reference pass.**  With ``with_reference=True`` the harness re-runs
  every scenario with every :mod:`repro.perf` flag off and embeds the
  result, proving in one artifact that the optimized and reference
  configurations are byte-identical in behaviour and quantifying the
  speedup between them.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional

from repro.metrics.registry import NULL_METRICS, MetricsRegistry
from repro.obs.spans import SpanKind
from repro.perf import FLAGS, PerfFlags, use_flags
from repro.runtime import RuntimeConfig, VDCERuntime
from repro.scheduler import SiteScheduler
from repro.scheduler.host_selection import select_hosts
from repro.sim import TopologyBuilder
from repro.trace.serialize import trace_hash
from repro.trace.tracer import NULL_TRACER, Tracer
from repro.workloads import RandomDAGConfig, bag_of_tasks, random_dag

__all__ = [
    "SCENARIOS",
    "compare",
    "embed_baseline",
    "format_document",
    "run_all",
    "run_scenario",
    "run_traced",
]

#: schema version of the emitted document
SCHEMA = 1

#: canonical scenario order (subset of benchmarks/ the trajectory tracks)
SCENARIO_ORDER = ("end_to_end", "scalability", "host_selection")

#: RuntimeConfig override for scenario deployments.  None (always, for
#: the timed and hashed passes) means the stock ``RuntimeConfig()``;
#: :func:`run_traced` sets it temporarily for span-enabled passes so the
#: canonical workloads can be explained/profiled without touching the
#: committed hashes.
_SCENARIO_CONFIG: Optional[RuntimeConfig] = None


def _runtime(n_sites: int, hosts_per_site: int, seed: int,
             tracer: Tracer, metrics: MetricsRegistry) -> VDCERuntime:
    """A heterogeneous multi-site deployment (bench_scalability's shape)."""
    speeds = (1.0, 1.5, 2.0, 2.5)
    builder = (
        TopologyBuilder(seed=seed)
        .lan_defaults(0.0005, 10.0)
        .wan_defaults(0.03, 2.0)
    )
    for s in range(n_sites):
        builder.site(f"site-{s}", hosts=[
            (f"s{s}-h{h:02d}", float(speeds[(s + h) % len(speeds)]), 256)
            for h in range(hosts_per_site)
        ])
    return VDCERuntime(builder.build(),
                       config=_SCENARIO_CONFIG or RuntimeConfig(),
                       tracer=tracer, metrics=metrics)


def _schedule_and_execute(rt: VDCERuntime, afg, k: int) -> int:
    """Fig. 2 message exchange + placement, then simulated execution."""
    def run():
        table, _virtual = yield from rt.schedule_process(
            afg, SiteScheduler(k=k, model=rt.model), local_site="site-0"
        )
        result = yield rt.execute_process(
            afg, table, submit_site="site-0", execute_payloads=False
        )
        return result

    result = rt.sim.run_until_complete(rt.sim.process(run()))
    return len(result.records)


# -- scenarios ------------------------------------------------------------
#
# Each scenario builds a fresh deployment, runs a fixed-seed workload to
# completion, and returns the number of tasks it scheduled.  The harness
# reads wall time around the call and kernel event counts off rt.sim.

def _scenario_end_to_end(tracer: Tracer, metrics: MetricsRegistry) -> Dict:
    """bench_end_to_end's shape: full pipeline on a 4-site federation."""
    rt = _runtime(n_sites=4, hosts_per_site=4, seed=0,
                  tracer=tracer, metrics=metrics)
    rt.start_monitoring()
    afg = random_dag(RandomDAGConfig(n_tasks=120, width=6, mean_cost=3.0,
                                     ccr=0.3, seed=7))
    tasks = _schedule_and_execute(rt, afg, k=3)
    return {"tasks": tasks, "rt": rt}


def _scenario_scalability(tracer: Tracer, metrics: MetricsRegistry) -> Dict:
    """bench_scalability's shape, at production scale: a parameter-sweep
    style bag (384 identical tasks) over 8 sites x 8 hosts, scheduled
    through the distributed message exchange and executed under
    monitoring.  This is the headline hot path: host selection, Predict,
    in-round load accounting, and the event kernel all at full load."""
    rt = _runtime(n_sites=8, hosts_per_site=8, seed=0,
                  tracer=tracer, metrics=metrics)
    rt.start_monitoring()
    afg = bag_of_tasks(n=384, cost=4.0, heterogeneity=0.0, seed=0)
    tasks = _schedule_and_execute(rt, afg, k=7)
    return {"tasks": tasks, "rt": rt}


def _scenario_host_selection(tracer: Tracer, metrics: MetricsRegistry) -> Dict:
    """bench_fig3_host_selection's shape: pure Figure-3 placement of a
    300-task DAG at one 64-host site (no simulation — placement only)."""
    rt = _runtime(n_sites=1, hosts_per_site=64, seed=1,
                  tracer=tracer, metrics=metrics)
    repo = rt.repositories["site-0"]
    afg = random_dag(RandomDAGConfig(n_tasks=300, width=10, mean_cost=2.0,
                                     ccr=0.4, seed=1))
    # placement-only scenario: wrap the selection in a manual root +
    # schedule span so a span-enabled pass still yields an explainable
    # window (dead branches on the default, spans-off passes)
    sched_span = None
    if rt.spans.enabled:
        root = rt.spans.root_of(afg.name, source="bench:host_selection")
        sched_span = rt.spans.open(
            SpanKind.SCHEDULE, afg.name, parent=root,
            source="bench:host_selection", site="site-0",
        )
    results = select_hosts(afg, repo, model=rt.model,
                           tracer=tracer, metrics=metrics)
    if sched_span is not None:
        rt.spans.close(sched_span, source="bench:host_selection",
                       tasks=len(results))
        rt.spans.close_root(afg.name, source="bench:host_selection")
    return {"tasks": len(results), "rt": rt}


SCENARIOS: Dict[str, Callable[[Tracer, MetricsRegistry], Dict]] = {
    "end_to_end": _scenario_end_to_end,
    "scalability": _scenario_scalability,
    "host_selection": _scenario_host_selection,
}


# -- measurement ----------------------------------------------------------

def run_scenario(name: str, repeats: int = 3) -> Dict:
    """Time one scenario and produce its oracle hashes.

    ``repeats`` timed runs (tracing/metrics off — the production
    configuration) take the minimum wall time; one further instrumented
    run produces the trace/metrics hashes.  Workload and seeds are
    fixed, so the instrumented run re-simulates the same events.
    """
    fn = SCENARIOS[name]
    wall_s = float("inf")
    sim_events = 0
    tasks = 0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        out = fn(NULL_TRACER, NULL_METRICS)
        elapsed = time.perf_counter() - start
        wall_s = min(wall_s, elapsed)
        sim_events = out["rt"].sim.events_processed
        tasks = out["tasks"]

    tracer = Tracer()
    metrics = MetricsRegistry()
    out = fn(tracer, metrics)
    out["rt"].export_metrics()

    events_per_s = sim_events / wall_s if wall_s > 0 else 0.0
    tasks_per_s = tasks / wall_s if wall_s > 0 else 0.0
    return {
        "wall_s": round(wall_s, 6),
        "sim_events": sim_events,
        "events_per_s": round(events_per_s, 2),
        "tasks_scheduled": tasks,
        "tasks_per_s": round(tasks_per_s, 2),
        # regression gate input: kernel throughput when the scenario
        # simulates, placement throughput when it is scheduler-only
        "throughput": round(events_per_s if sim_events else tasks_per_s, 2),
        "trace_hash": trace_hash(tracer.events()),
        "metrics_hash": metrics.snapshot_hash(),
    }


def run_traced(name: str, causal_spans: bool = False):
    """One instrumented pass of a canonical scenario; returns its events.

    With ``causal_spans`` the deployment runs under
    ``RuntimeConfig(causal_spans=True)`` so the trace carries the full
    span tree — the input for ``repro explain --scenario`` and the
    ``repro bench --profile`` folded stacks.  This pass is separate from
    (and never replaces) the hashed oracle pass: the committed
    ``trace_hash``/``metrics_hash`` always come from the stock config.
    """
    global _SCENARIO_CONFIG
    tracer = Tracer()
    metrics = MetricsRegistry()
    if causal_spans:
        _SCENARIO_CONFIG = RuntimeConfig(causal_spans=True)
    try:
        SCENARIOS[name](tracer, metrics)
    finally:
        _SCENARIO_CONFIG = None
    return tracer.events()


def run_all(quick: bool = False, with_reference: bool = False,
            label: str = "BENCH_6") -> Dict:
    """Run every scenario; return the canonical bench document."""
    repeats = 1 if quick else 3
    document: Dict = {
        "schema": SCHEMA,
        "label": label,
        "quick": bool(quick),
        "flags": FLAGS.as_dict(),
        "scenarios": {
            name: run_scenario(name, repeats=repeats)
            for name in SCENARIO_ORDER
        },
    }
    if with_reference:
        with use_flags(**PerfFlags.all_off().as_dict()):
            reference = {
                name: run_scenario(name, repeats=repeats)
                for name in SCENARIO_ORDER
            }
        document["reference"] = {
            "flags": PerfFlags.all_off().as_dict(),
            "scenarios": reference,
        }
        document["speedup"] = {
            name: round(
                document["scenarios"][name]["throughput"]
                / reference[name]["throughput"], 2,
            )
            for name in SCENARIO_ORDER
            if reference[name]["throughput"] > 0
        }
    return document


def embed_baseline(document: Dict, baseline: Dict,
                   note: str = "pre-optimization measurement on the "
                               "committing machine") -> Dict:
    """Attach an older bench document as this one's fixed baseline.

    Unlike the ``reference`` section (all perf flags off on *current*
    code), a baseline is a measurement of **older code** — typically the
    parent commit, before the optimizations landed — so the speedup it
    yields includes unflagged wins (kernel, algorithmic) that the
    flag-off reference pass cannot show.  The baseline throughputs are
    copied verbatim; ``speedup_vs_baseline`` is this document's
    throughput over the baseline's, per scenario.
    """
    scenarios = baseline.get("scenarios", {})
    document["baseline"] = {
        "note": note,
        "scenarios": {
            name: {
                "throughput": s["throughput"],
                "wall_s": s["wall_s"],
                "trace_hash": s["trace_hash"],
            }
            for name, s in scenarios.items()
        },
    }
    document["speedup_vs_baseline"] = {
        name: round(document["scenarios"][name]["throughput"]
                    / s["throughput"], 2)
        for name, s in scenarios.items()
        if name in document.get("scenarios", {}) and s["throughput"] > 0
    }
    return document


# -- comparison (the regression + behaviour gate) -------------------------

#: default regression tolerance: fail on a >20% throughput drop
TOLERANCE = 0.20


def compare(previous: Dict, current: Dict, tolerance: float = TOLERANCE,
            hash_only: bool = False) -> List[str]:
    """Problems between two bench documents; empty list means clean.

    * any scenario whose ``trace_hash`` changed — behaviour changed;
    * (unless ``hash_only``) any scenario whose throughput dropped more
      than ``tolerance`` — a perf regression.

    Scenarios present in only one document are reported informationally
    by the caller; they are not failures (the trajectory grows).
    """
    problems: List[str] = []
    for side, document in (("previous", previous), ("current", current)):
        version = document.get("schema", SCHEMA)
        if version != SCHEMA:
            # refuse to compare across incompatible layouts — a silent
            # field mismatch would read as a spurious pass or failure
            return [
                f"{side} document has schema {version!r}; this harness "
                f"compares schema {SCHEMA} documents only"
            ]
    prev_scenarios = previous.get("scenarios", {})
    cur_scenarios = current.get("scenarios", {})
    for name in (n for n in SCENARIO_ORDER if n in prev_scenarios):
        if name not in cur_scenarios:
            problems.append(f"{name}: scenario missing from current run")
            continue
        prev, cur = prev_scenarios[name], cur_scenarios[name]
        if prev["trace_hash"] != cur["trace_hash"]:
            problems.append(
                f"{name}: trace hash changed "
                f"({prev['trace_hash'][:16]}... -> "
                f"{cur['trace_hash'][:16]}...) — behaviour is not "
                f"identical to the committed reference"
            )
        if prev.get("metrics_hash") != cur.get("metrics_hash"):
            problems.append(
                f"{name}: metrics snapshot hash changed — exported "
                f"aggregates differ from the committed reference"
            )
        if not hash_only:
            floor = prev["throughput"] * (1.0 - tolerance)
            if cur["throughput"] < floor:
                problems.append(
                    f"{name}: throughput regressed "
                    f"{prev['throughput']:.0f} -> {cur['throughput']:.0f} "
                    f"(> {tolerance:.0%} drop)"
                )
    return problems


def format_document(document: Dict) -> str:
    """Human-readable summary table of one bench document."""
    lines = [
        f"benchmark trajectory — {document.get('label', '?')}"
        f"{' (quick)' if document.get('quick') else ''}",
        f"{'scenario':<16} {'wall_s':>9} {'events':>8} {'ev/s':>10} "
        f"{'tasks':>6} {'tasks/s':>9}  trace_hash",
    ]
    for name in SCENARIO_ORDER:
        s = document["scenarios"].get(name)
        if s is None:
            continue
        lines.append(
            f"{name:<16} {s['wall_s']:>9.4f} {s['sim_events']:>8} "
            f"{s['events_per_s']:>10.0f} {s['tasks_scheduled']:>6} "
            f"{s['tasks_per_s']:>9.0f}  {s['trace_hash'][:16]}..."
        )
    if "speedup" in document:
        rendered = ", ".join(
            f"{name} {ratio:.2f}x"
            for name, ratio in document["speedup"].items()
        )
        lines.append(f"speedup vs reference (flags off): {rendered}")
    if "speedup_vs_baseline" in document:
        rendered = ", ".join(
            f"{name} {ratio:.2f}x"
            for name, ratio in document["speedup_vs_baseline"].items()
        )
        lines.append(f"speedup vs committed baseline: {rendered}")
    return "\n".join(lines)


def to_json(document: Dict) -> str:
    """Canonical JSON serialization (sorted keys, trailing newline)."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


if __name__ == "__main__":  # pragma: no cover - CLI lives in repro.cli
    import sys

    doc = run_all(quick="--quick" in sys.argv)
    print(format_document(doc))

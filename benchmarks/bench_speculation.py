"""E15 — straggler defense: speculative re-execution under slowdown.

The paper's failure model (§4.2) only distinguishes up from down; a
host that is merely *slow* — owner returned, thermal throttling, a
noisy neighbour — passes every echo check while stretching the
application's critical path arbitrarily.  This bench scripts that
scenario: the fastest hosts in the federation (the ones ``Predict``
loves) are slowed 10x before the schedule lands, and we compare
makespans with speculation disabled vs enabled.

With speculation on, the Application Controller notices the overdue
task, launches one backup on the next-best host, and takes whichever
copy finishes first.  Expected shape: at least a 2x makespan win on
every seed, terminal output hashes byte-identical to the
pure-evaluation oracle regardless of which copy won, and exactly zero
overhead (no launches, identical makespan) when nothing straggles.
"""

import pytest

from repro.metrics import format_table
from repro.runtime import RuntimeConfig
from repro.runtime.checkpoint import expected_output_hashes, final_output_hashes
from repro.runtime.straggler import SpeculationPolicy
from repro.scheduler import SiteScheduler
from repro.workloads import linear_pipeline

from benchmarks._common import fresh_runtime, mean

ENABLED = lambda: RuntimeConfig(  # noqa: E731 - fresh policy per run
    speculation=SpeculationPolicy(trigger_multiple=1.5, check_period_s=0.5)
)
DISABLED = lambda: RuntimeConfig()  # noqa: E731


def run_case(config: RuntimeConfig, straggle: bool, seed: int):
    rt = fresh_runtime(n_sites=2, hosts_per_site=4, seed=seed, config=config)
    if straggle:
        # degrade every speed-2.5 host: wherever Predict lands, it crawls
        for host in rt.topology.all_hosts:
            if host.spec.speed >= 2.5:
                host.set_slowdown(10.0)
    afg = linear_pipeline(n_stages=4, cost=6.0, edge_mb=0.5)
    table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
    result = rt.sim.run_until_complete(
        rt.execute_process(afg, table, execute_payloads=True)
    )
    return rt, afg, result


def test_speculation_under_scripted_slowdown(benchmark):
    seeds = (0, 1, 2)
    rows = []
    ratios = []
    for seed in seeds:
        _, _, slow = run_case(DISABLED(), True, seed)
        rt, afg, raced = run_case(ENABLED(), True, seed)
        ratios.append(slow.makespan / raced.makespan)
        rows.append({
            "seed": seed,
            "no_spec_s": round(slow.makespan, 2),
            "spec_s": round(raced.makespan, 2),
            "speedup": round(slow.makespan / raced.makespan, 2),
            "backups": rt.stats.speculative_launches,
            "wins": rt.stats.speculative_wins,
            "wasted_s": round(rt.stats.speculative_wasted_s, 2),
        })
        # speculation safety: outputs match the pure-evaluation oracle
        # no matter which copy of each task won its race
        assert final_output_hashes(raced) == expected_output_hashes(
            afg, rt.registry
        ), f"seed {seed}: backup win corrupted terminal outputs"
        assert rt.stats.speculative_launches >= 1
        assert rt.stats.speculative_wins >= 1

    # zero-overhead guard: without a straggler, speculation must change
    # nothing — no backups, and the same makespan as the disabled config
    rt_idle, _, clean_spec = run_case(ENABLED(), False, 0)
    _, _, clean_base = run_case(DISABLED(), False, 0)
    rows.append({
        "seed": "0 (healthy)",
        "no_spec_s": round(clean_base.makespan, 2),
        "spec_s": round(clean_spec.makespan, 2),
        "speedup": 1.0,
        "backups": rt_idle.stats.speculative_launches,
        "wins": 0,
        "wasted_s": 0.0,
    })

    print()
    print(format_table(rows, title="E15 — speculative re-execution under "
                                   "a scripted 10x slowdown"))

    assert min(ratios) >= 2.0, (
        f"speculation must at least halve the straggled makespan "
        f"(worst seed ratio {min(ratios):.2f})"
    )
    assert rt_idle.stats.speculative_launches == 0, (
        "a healthy run must never launch backups"
    )
    assert clean_spec.makespan == pytest.approx(clean_base.makespan), (
        "enabled-but-idle speculation must cost nothing"
    )
    assert mean(ratios) >= 2.0

    benchmark(lambda: run_case(ENABLED(), True, 0))

"""E11 — scaling to "several geographically distributed sites" (paper §5).

The paper's prototype ran campus-wide; its stated next step was
multi-site scale.  We sweep federation size and measure:

* distributed-scheduling cost: virtual time spent on the Fig. 2
  message exchange (AFG multicast + bid replies) and the number of
  scheduler messages — expected linear in k;
* pure placement cost: wall-clock time of the scheduler itself as the
  host pool grows;
* realised makespan of a fixed bag of tasks — expected to improve with
  more sites, saturating once the bag is spread thin.
"""

import time

import pytest

from repro.metrics import format_table
from repro.scheduler import SiteScheduler
from repro.workloads import bag_of_tasks

from benchmarks._common import star_runtime


def schedule_distributed(runtime, afg, k):
    def run():
        result = yield from runtime.schedule_process(
            afg, SiteScheduler(k=k), local_site="site-0"
        )
        return result

    return runtime.sim.run_until_complete(runtime.sim.process(run()))


def test_scaling_with_sites(benchmark):
    afg = bag_of_tasks(n=48, cost=4.0, heterogeneity=0.3, seed=0)
    rows = []
    overheads = {}
    messages = {}
    makespans = {}
    for n_sites in (1, 2, 4, 8):
        rt = star_runtime(n_sites=n_sites, hosts_per_site=4, seed=0)
        k = n_sites - 1
        wall_start = time.perf_counter()
        table, sched_virtual = schedule_distributed(rt, afg, k)
        wall = time.perf_counter() - wall_start
        result = rt.sim.run_until_complete(
            rt.execute_process(afg, table, submit_site="site-0",
                               execute_payloads=False)
        )
        overheads[n_sites] = sched_virtual
        messages[n_sites] = rt.stats.scheduler_messages
        makespans[n_sites] = result.makespan
        rows.append(
            {
                "sites": n_sites,
                "hosts": 4 * n_sites,
                "sched_msgs": rt.stats.scheduler_messages,
                "sched_virtual_s": round(sched_virtual, 4),
                "sched_wall_ms": round(wall * 1000, 2),
                "makespan_s": round(result.makespan, 2),
            }
        )
    print()
    print(format_table(rows, title="E11 — federation size sweep "
                                   "(48-task bag)"))

    # messages are exactly 2k (multicast out + bids back)
    for n_sites in (1, 2, 4, 8):
        assert messages[n_sites] == 2 * (n_sites - 1)
    # more sites -> more capacity -> no worse makespan
    assert makespans[8] <= makespans[1] * 1.02
    # scheduling overhead grows with the federation but stays bounded
    assert overheads[1] == 0.0
    assert overheads[8] >= overheads[2]

    rt = star_runtime(n_sites=4, hosts_per_site=4, seed=0)
    benchmark(lambda: SiteScheduler(k=3).schedule(
        afg, rt.federation_view("site-0")))


def test_placement_wall_time_vs_dag_size(benchmark):
    """Pure scheduler wall time on growing DAGs (fixed 4-site pool)."""
    from repro.workloads import RandomDAGConfig, random_dag

    rt = star_runtime(n_sites=4, hosts_per_site=4, seed=1)
    view = rt.federation_view("site-0")
    rows = []
    for n_tasks in (25, 100, 400):
        afg = random_dag(RandomDAGConfig(n_tasks=n_tasks, width=8, seed=1))
        start = time.perf_counter()
        SiteScheduler(k=3).schedule(afg, view)
        elapsed = time.perf_counter() - start
        rows.append({"n_tasks": n_tasks,
                     "placement_wall_ms": round(elapsed * 1000, 2)})
    print()
    print(format_table(rows, title="E11b — placement wall time vs DAG size"))

    afg = random_dag(RandomDAGConfig(n_tasks=100, width=8, seed=1))
    benchmark(lambda: SiteScheduler(k=3).schedule(afg, view))

"""E5 — Figure 4: the monitoring pathway and its significant-change filter.

Paper §4.1: "The Group Manager sends to the Site Manager only the
workloads of the resources that have changed considerably from the
previous measurement."  We sweep the change threshold against load
volatility and report:

* message volume: measurements forwarded to the Site Manager vs
  suppressed at the Group Manager;
* staleness error: mean absolute difference between the repository's
  belief and ground-truth host load, sampled every second.

Expected shape: higher thresholds suppress more messages at the cost
of higher belief error; at zero threshold everything is forwarded and
the error floor is set by the monitor period alone.
"""

import pytest

from repro.metrics import format_table
from repro.runtime import RuntimeConfig
from repro.sim.workload import OrnsteinUhlenbeckLoad, attach_generators

from benchmarks._common import fresh_runtime, mean

HORIZON_S = 120.0


def run_monitoring(threshold: float, sigma: float, seed: int = 0):
    rt = fresh_runtime(
        n_sites=1,
        hosts_per_site=8,
        seed=seed,
        config=RuntimeConfig(monitor_period_s=2.0, change_threshold=threshold),
    )
    attach_generators(
        rt.sim,
        rt.topology.all_hosts,
        lambda: OrnsteinUhlenbeckLoad(mean=1.0, theta=0.2, sigma=sigma,
                                      period_s=1.0),
    )
    rt.start_monitoring()

    errors = []

    def sample():
        repo = rt.repositories["site-0"]
        for host in rt.topology.all_hosts:
            believed = repo.resources.get(host.name).load
            errors.append(abs(believed - host.load_average()))

    t = 1.0
    while t < HORIZON_S:
        rt.sim.call_at(t, sample)
        t += 1.0
    rt.sim.run(until=HORIZON_S)
    return rt.stats, mean(errors)


def test_threshold_vs_volatility(benchmark):
    rows = []
    cells = {}
    for sigma in (0.05, 0.3):
        for threshold in (0.0, 0.25, 1.0):
            stats, error = run_monitoring(threshold, sigma)
            total = stats.workload_forwards + stats.workload_suppressed
            rows.append(
                {
                    "sigma": sigma,
                    "threshold": threshold,
                    "measured": total,
                    "forwarded": stats.workload_forwards,
                    "suppressed_pct": round(
                        100.0 * stats.workload_suppressed / total, 1
                    ),
                    "belief_err": round(error, 3),
                }
            )
            cells[(sigma, threshold)] = (stats.workload_forwards, error)
    print()
    print(format_table(rows, title="E5 / Figure 4 — significant-change filter"))

    for sigma in (0.05, 0.3):
        f0, e0 = cells[(sigma, 0.0)]
        f1, e1 = cells[(sigma, 1.0)]
        assert f1 < f0, "higher threshold must forward fewer messages"
        assert e1 >= e0 * 0.9, "suppression cannot reduce belief error"
    # calm hosts suppress more than volatile hosts at the same threshold
    assert cells[(0.05, 0.25)][0] <= cells[(0.3, 0.25)][0]

    benchmark(lambda: run_monitoring(0.25, 0.3))

"""E8 — the Data Manager over real TCP sockets (paper §4.2).

Measures, with genuine localhost sockets:

* channel setup latency (connect + ChannelSetup + Ack round trip);
* point-to-point goodput as payload size grows;
* the full protocol (setup, acks, startup signal, dataflow) on an
  n-stage pipeline, wall clock.

Expected shape: setup latency is sub-millisecond-to-millisecond on
localhost and independent of payload; goodput grows with payload size
until pickling dominates; protocol cost scales with edge count.
"""

import numpy as np
import pytest

from repro.afg import ApplicationFlowGraph, TaskNode, TaskProperties
from repro.metrics import format_table
from repro.net import CommunicationProxy
from repro.runtime import LocalDataManager
from repro.scheduler import AllocationTable, TaskAssignment
from repro.workloads import linear_pipeline


def test_channel_setup_latency(benchmark):
    with CommunicationProxy("src") as src, CommunicationProxy("dst") as dst:
        counter = [0]

        def setup_once():
            counter[0] += 1
            edge = ("a", "b", counter[0], 0)
            channel = src.open_channel("bench", edge, dst.address, "dst")
            channel.close()

        benchmark(setup_once)
    print(f"\nE8a — {counter[0]} real channel setups (connect+setup+ack) "
          f"completed")


@pytest.mark.parametrize("size_kb", [1, 64, 1024])
def test_point_to_point_goodput(benchmark, size_kb):
    payload = np.random.default_rng(0).bytes(size_kb * 1024)
    with CommunicationProxy("src") as src, CommunicationProxy("dst") as dst:
        edge = ("a", "b", 0, 0)
        channel = src.open_channel("bench", edge, dst.address, "dst")

        def send_recv():
            channel.send(payload)
            return dst.receive(edge, timeout_s=10.0)

        received = benchmark(send_recv)
        assert received == payload
        channel.close()


def test_full_protocol_pipeline(benchmark):
    """Whole §4.2 protocol on a real 5-stage pipeline."""
    afg = linear_pipeline(n_stages=5, cost=0.01, edge_mb=0.0)
    table = AllocationTable(afg.name, scheduler="manual")
    hosts = ["h0", "h1"]
    for i, task in enumerate(afg.topological_order()):
        table.assign(TaskAssignment(task, "local", (hosts[i % 2],), 0.01))

    manager = LocalDataManager(timeout_s=30.0)
    report = benchmark(lambda: manager.execute(afg, table))
    rows = [
        {
            "stages": 5,
            "channels": report.channels,
            "acks": report.acks,
            "payload_frames": report.payloads,
            "bytes": report.bytes_sent,
            "setup_ms": round(report.startup_wall_s * 1000, 3),
            "makespan_ms": round(report.makespan_wall_s * 1000, 3),
        }
    ]
    print()
    print(format_table(rows, title="E8b — full Data Manager protocol "
                                   "(real sockets)"))
    assert report.channels == 4
    assert report.acks == 4
    assert report.payloads == 4

"""E3 — Figure 3: prediction-driven host selection within one site.

The host-selection algorithm picks, per task, the host minimising
``Predict(task, R)`` using the repository's speed and *recent workload*
attributes.  We load a heterogeneous site unevenly and compare three
within-site policies on a bag of independent tasks:

* ``predictive`` — the paper's algorithm (speed + load aware);
* ``load-blind`` — same, but prediction ignores load (speed only);
* ``random`` — uniform placement.

Expected shape: predictive <= load-blind <= random in realised
makespan; the gap vs load-blind grows with load skew because blind
placement keeps picking the nominally fastest (but busy) hosts.
"""

import pytest

from repro.metrics import format_table
from repro.scheduler import (
    LoadBlindScheduler,
    RandomScheduler,
    SiteScheduler,
)
from repro.workloads import bag_of_tasks

from benchmarks._common import fresh_runtime, mean

POLICIES = [
    ("predictive", lambda: SiteScheduler(k=0, name="predictive")),
    ("load-blind", lambda: LoadBlindScheduler(k=0)),
    ("random", lambda: RandomScheduler(seed=3)),
]


def run_policy(factory, load_skew: float, seed: int) -> float:
    runtime = fresh_runtime(n_sites=1, hosts_per_site=6,
                            speeds=(1.0, 1.5, 2.0, 2.5, 3.0, 3.5), seed=seed)
    # ground truth + repository view: fast hosts are the busy ones
    hosts = sorted(runtime.topology.all_hosts, key=lambda h: h.spec.speed)
    for rank, host in enumerate(hosts):
        load = load_skew * rank / (len(hosts) - 1)
        host.set_bg_load(load)
        runtime.repositories["site-0"].resources.update_workload(
            host.name, load=load, available_memory_mb=256, time=0.0
        )
    afg = bag_of_tasks(n=18, cost=4.0, heterogeneity=0.4, seed=seed)
    table = factory().schedule(afg, runtime.federation_view())
    result = runtime.sim.run_until_complete(
        runtime.execute_process(afg, table, execute_payloads=False)
    )
    return result.makespan


def test_host_selection_policies(benchmark):
    rows = []
    results = {}
    for skew in (0.0, 2.0, 6.0):
        row = {"load_skew": skew}
        for name, factory in POLICIES:
            value = mean(run_policy(factory, skew, seed) for seed in (0, 1, 2))
            row[name] = round(value, 2)
            results[(skew, name)] = value
        rows.append(row)
    print()
    print(format_table(
        rows,
        title="E3 / Figure 3 — bag-of-tasks makespan (s) within one site",
    ))

    for skew in (2.0, 6.0):
        assert results[(skew, "predictive")] <= results[(skew, "load-blind")] * 1.02
        assert results[(skew, "predictive")] <= results[(skew, "random")] * 1.02
    # under skew, awareness must actually help, not just tie
    assert results[(6.0, "predictive")] < results[(6.0, "load-blind")]

    benchmark(lambda: run_policy(POLICIES[0][1], 6.0, 0))


def test_host_selection_pure_algorithm_speed(benchmark):
    """Wall-time of Figure 3 itself (pure host selection over a site)."""
    from repro.scheduler import select_hosts
    from repro.workloads import RandomDAGConfig, random_dag

    runtime = fresh_runtime(n_sites=1, hosts_per_site=16, seed=0)
    afg = random_dag(RandomDAGConfig(n_tasks=100, seed=0))
    repo = runtime.repositories["site-0"]
    bids = benchmark(lambda: select_hosts(afg, repo))
    assert len(bids) == 100

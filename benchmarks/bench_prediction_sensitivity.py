"""E10 — prediction is "the core" of the scheduler (paper §3).

"The core of the given built-in scheduling algorithms is the
performance prediction phase."  How much does schedule quality depend
on prediction accuracy?  We perturb ``Predict`` with multiplicative
noise (deterministic per (task, host)) and measure realised makespan
across noise levels and seeds, plus the post-execution calibration loop
(§4.1) that the Site Manager uses to shrink exactly this error.

Expected shape: makespan degrades as noise grows (placement ranking
inversions appear); with zero noise the realised/predicted error is
driven only by contention; the calibration loop reduces prediction
error run over run on a stable system.
"""

import pytest

from repro.metrics import format_table
from repro.scheduler import PredictionModel, SiteScheduler
from repro.workloads import RandomDAGConfig, random_dag

from benchmarks._common import fresh_runtime, mean


def run_with_noise(noise: float, seed: int) -> float:
    rt = fresh_runtime(n_sites=2, hosts_per_site=4, seed=seed)
    afg = random_dag(RandomDAGConfig(n_tasks=40, width=6, mean_cost=3.0,
                                     cost_heterogeneity=0.7, ccr=0.3,
                                     seed=seed))
    model = PredictionModel(noise=noise, noise_seed=seed)
    table = SiteScheduler(k=1, model=model).schedule(afg, rt.federation_view())
    result = rt.sim.run_until_complete(
        rt.execute_process(afg, table, execute_payloads=False)
    )
    return result.makespan


def test_noise_degrades_schedules(benchmark):
    seeds = range(5)
    rows = []
    by_noise = {}
    for noise in (0.0, 0.2, 0.5, 0.9):
        value = mean(run_with_noise(noise, s) for s in seeds)
        by_noise[noise] = value
        rows.append({"noise": noise, "makespan_s": round(value, 2),
                     "vs_oracle_pct": None})
    for row in rows:
        row["vs_oracle_pct"] = round(
            100 * (row["makespan_s"] - rows[0]["makespan_s"])
            / rows[0]["makespan_s"], 1,
        )
    print()
    print(format_table(rows, title="E10 — makespan vs prediction noise "
                                   "(mean over 5 DAGs)"))

    assert by_noise[0.0] <= by_noise[0.9] * 1.02, (
        "oracle predictions must beat heavily-noised ones"
    )
    # weak monotonicity across the sweep (noise can occasionally luck out)
    assert by_noise[0.0] <= by_noise[0.5] * 1.05

    benchmark(lambda: run_with_noise(0.5, 0))


def test_calibration_loop_reduces_error(benchmark):
    """§4.1: measured times are folded back into the task-performance DB.

    Controlled setting: a serial pipeline (no contention, so measured
    times are deterministic) scheduled with a systematically *wrong*
    prediction model (40% multiplicative noise).  After each run the
    Site Manager records measured/expected ratios; the learned
    calibration cancels the systematic error, so the prediction error
    collapses after the first re-submission.
    """
    from repro.scheduler import PredictionModel
    from repro.workloads import linear_pipeline

    rt = fresh_runtime(n_sites=1, hosts_per_site=4, seed=3)
    afg = linear_pipeline(n_stages=6, cost=3.0, edge_mb=0.1)
    # pin each stage to a host (the user's preferred-machine property) so
    # the measurement isolates the §4.1 refinement loop from placement
    # migration — otherwise calibrating one host makes another look
    # better and the freshly visited host starts uncalibrated again
    host_names = sorted(h.name for h in rt.topology.all_hosts)
    for i, task_id in enumerate(afg.topological_order()):
        node = afg.task(task_id)
        afg.replace_task(
            node.with_properties(preferred_machine=host_names[i % 4])
        )
    model = PredictionModel(noise=0.4, noise_seed=3)
    errors = []
    for _run_index in range(4):
        table = SiteScheduler(k=0, model=model).schedule(
            afg, rt.federation_view()
        )
        result = rt.sim.run_until_complete(
            rt.execute_process(afg, table, execute_payloads=False)
        )
        per_task = [
            abs(r.measured_time - r.predicted_time) / r.predicted_time
            for r in result.records.values()
            if r.predicted_time > 0
        ]
        errors.append(mean(per_task))
    rows = [{"run": i + 1, "mean_rel_error": round(e, 4)}
            for i, e in enumerate(errors)]
    print()
    print(format_table(rows, title="E10b — calibration loop "
                                   "(same app re-submitted, noisy model)"))
    assert errors[-1] < errors[0] * 0.5, (
        "calibration must cancel the systematic prediction error"
    )

    benchmark(lambda: SiteScheduler(k=0, model=model).schedule(
        afg, rt.federation_view()))

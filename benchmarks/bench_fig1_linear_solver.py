"""E1 — Figure 1: the Linear Equation Solver, end to end.

Reproduces the paper's only concrete application: the Figure 1 AFG with
its annotated task properties (LU-Decomposition parallel on 2 nodes
with the 124.88 MB file input; Matrix-Multiplication sequential on a
SUN solaris machine), scheduled and executed on a two-site deployment.

Reported rows: per-task placement + timing, mirroring the information
in Figure 1's task-properties windows, plus the end-to-end pipeline
stages.  Expected shape: the parallel LU gets exactly two machines; the
multiplication's machine-type preference is honoured; the application
completes.
"""

import pytest

from repro.metrics import format_table
from repro.scheduler import SiteScheduler
from repro.workloads import figure1_afg, linear_solver_afg

from benchmarks._common import fresh_runtime


def schedule_and_run(runtime, afg):
    table = SiteScheduler(k=1).schedule(afg, runtime.federation_view())
    proc = runtime.execute_process(afg, table, execute_payloads=False)
    return table, runtime.sim.run_until_complete(proc)


def test_figure1_placement_and_execution(benchmark):
    runtime = fresh_runtime(n_sites=2, hosts_per_site=4, seed=1)
    afg = figure1_afg()
    table, result = schedule_and_run(runtime, afg)

    rows = []
    for task_id in sorted(result.records):
        record = result.records[task_id]
        node = afg.task(task_id)
        rows.append(
            {
                "task": task_id,
                "mode": node.properties.mode.value,
                "nodes": node.properties.n_nodes,
                "site": record.site,
                "hosts": ",".join(record.hosts),
                "predicted_s": round(record.predicted_time, 3),
                "measured_s": round(record.measured_time, 3),
            }
        )
    print()
    print(format_table(rows, title="E1 / Figure 1 — Linear Equation Solver"))
    print(
        f"setup={result.setup_time:.4f}s  makespan={result.makespan:.3f}s  "
        f"moved={result.data_transferred_mb:.1f}MB"
    )

    # paper-shape assertions
    lu = result.records["LU_Decomposition"]
    assert len(lu.hosts) == 2, "parallel LU must be placed on 2 machines"
    mm = result.records["Matrix_Multiplication"]
    host_spec = runtime.topology.host(mm.hosts[0]).spec
    assert host_spec.os == "solaris", "machine-type preference violated"
    assert result.makespan > 0

    # wall-clock benchmark: one full schedule+execute cycle
    def cycle():
        rt = fresh_runtime(n_sites=2, hosts_per_site=4, seed=1)
        return schedule_and_run(rt, figure1_afg())

    benchmark(cycle)


def test_computational_variant_produces_correct_solution(benchmark):
    """The computational linear solver runs with real payloads."""
    runtime = fresh_runtime(n_sites=2, hosts_per_site=4, seed=2)
    afg = linear_solver_afg(scale=0.2, parallel_lu_nodes=2)
    table = SiteScheduler(k=1).schedule(afg, runtime.federation_view())
    result = runtime.sim.run_until_complete(
        runtime.execute_process(afg, table, execute_payloads=True)
    )
    (residual,) = result.outputs["verify"]
    print(f"\nE1b residual ||Ax-b|| = {residual:.2e}, "
          f"makespan = {result.makespan:.3f}s")
    assert residual < 1e-8

    def cycle():
        rt = fresh_runtime(n_sites=2, hosts_per_site=4, seed=2)
        t = SiteScheduler(k=1).schedule(afg, rt.federation_view())
        return rt.sim.run_until_complete(
            rt.execute_process(afg, t, execute_payloads=True)
        )

    benchmark(cycle)

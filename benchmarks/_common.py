"""Shared builders for the experiment benches (E1-E12).

Each bench module regenerates one experiment from DESIGN.md §4: it
prints the experiment's table (captured into EXPERIMENTS.md) and
asserts the *shape* the paper's design predicts, so regressions in the
scheduler/runtime break the bench, not just the numbers.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.runtime import RuntimeConfig, VDCERuntime
from repro.scheduler import SiteScheduler
from repro.sim import TopologyBuilder
from repro.sim.topology import star_topology


def fresh_runtime(
    n_sites: int = 2,
    hosts_per_site: int = 4,
    speeds=(1.0, 1.5, 2.0, 2.5),
    wan_latency_s: float = 0.03,
    wan_bandwidth_mbps: float = 2.0,
    lan_latency_s: float = 0.0005,
    lan_bandwidth_mbps: float = 10.0,
    seed: int = 0,
    config: Optional[RuntimeConfig] = None,
) -> VDCERuntime:
    """A heterogeneous multi-site deployment with fresh state."""
    builder = (
        TopologyBuilder(seed=seed)
        .lan_defaults(lan_latency_s, lan_bandwidth_mbps)
        .wan_defaults(wan_latency_s, wan_bandwidth_mbps)
    )
    for s in range(n_sites):
        hosts = [
            (f"s{s}-h{h:02d}", float(speeds[(s + h) % len(speeds)]), 256)
            for h in range(hosts_per_site)
        ]
        builder.site(f"site-{s}", hosts=hosts)
    return VDCERuntime(builder.build(), config=config or RuntimeConfig())


def star_runtime(n_sites: int = 4, hosts_per_site: int = 4, seed: int = 0,
                 config: Optional[RuntimeConfig] = None,
                 **star_kwargs) -> VDCERuntime:
    topo = star_topology(seed=seed, n_sites=n_sites,
                         hosts_per_site=hosts_per_site, **star_kwargs)
    return VDCERuntime(topo, config=config or RuntimeConfig())


def run_app(runtime: VDCERuntime, afg, scheduler=None, payloads=False,
            submit_site=None):
    """Schedule (pure) + execute (simulated); returns the result."""
    scheduler = scheduler or SiteScheduler(k=runtime_default_k(runtime))
    view = runtime.federation_view(submit_site)
    table = scheduler.schedule(afg, view)
    proc = runtime.execute_process(afg, table, submit_site=submit_site,
                                   execute_payloads=payloads)
    return runtime.sim.run_until_complete(proc)


def runtime_default_k(runtime: VDCERuntime) -> int:
    return max(0, len(runtime.topology.site_names) - 1)


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0

"""E12 — the whole pipeline: design -> schedule -> setup -> run (paper §§2-4).

For each of the three flagship applications (the Figure 1 linear
solver, the C3I surveillance pipeline, and a random scientific DAG) we
report the latency breakdown across the paper's three phases:

* *schedule*: the Fig. 2 message exchange + placement (virtual time);
* *setup*: allocation distribution + channel setup + startup signal;
* *execute*: startup signal to last task completion,

plus the control-message bill each run leaves behind.

Expected shape: execution dominates end-to-end time for these
compute-heavy applications; setup cost scales with edge count, schedule
cost with federation width.
"""

import pytest

from repro.metrics import format_table
from repro.scheduler import SiteScheduler
from repro.workloads import (
    RandomDAGConfig,
    linear_solver_afg,
    random_dag,
    surveillance_afg,
)

from benchmarks._common import fresh_runtime

APPLICATIONS = [
    ("linear-solver", lambda: linear_solver_afg(scale=0.3,
                                                parallel_lu_nodes=2), True),
    ("c3i-surveillance", lambda: surveillance_afg(n_sensors=4,
                                                  scale=0.5), True),
    ("random-dag-40", lambda: random_dag(
        RandomDAGConfig(n_tasks=40, width=6, mean_cost=3.0, ccr=0.3,
                        seed=7)), False),
]


def run_pipeline(afg, payloads):
    rt = fresh_runtime(n_sites=2, hosts_per_site=4, seed=5)

    def pipeline():
        table, sched_time = yield from rt.schedule_process(
            afg, SiteScheduler(k=1)
        )
        result = yield rt.execute_process(afg, table,
                                          execute_payloads=payloads)
        return sched_time, result

    sched_time, result = rt.sim.run_until_complete(rt.sim.process(pipeline()))
    return rt, sched_time, result


def test_end_to_end_breakdown(benchmark):
    rows = []
    for name, factory, payloads in APPLICATIONS:
        afg = factory()
        rt, sched_time, result = run_pipeline(afg, payloads)
        rows.append(
            {
                "application": name,
                "tasks": len(afg),
                "edges": len(afg.edges),
                "schedule_s": round(sched_time, 4),
                "setup_s": round(result.setup_time, 4),
                "execute_s": round(result.makespan, 3),
                "ctrl_msgs": rt.stats.total_control_messages(),
                "moved_mb": round(result.data_transferred_mb, 1),
            }
        )
        # execution dominates for these compute-heavy apps
        assert result.makespan > result.setup_time
        assert result.makespan > sched_time
    print()
    print(format_table(rows, title="E12 — end-to-end phase breakdown"))

    benchmark(lambda: run_pipeline(linear_solver_afg(scale=0.3), True))


def test_quality_of_outputs_end_to_end(benchmark):
    """The full pipeline must produce *correct* answers, not just finish."""
    rt, _, solver_result = run_pipeline(
        linear_solver_afg(scale=0.2, parallel_lu_nodes=2), True
    )
    (residual,) = solver_result.outputs["verify"]
    rt2, _, c3i_result = run_pipeline(surveillance_afg(n_sensors=3,
                                                       scale=0.4), True)
    (summary,) = c3i_result.outputs["archive"]
    print(f"\nE12b — solver residual {residual:.2e}; "
          f"c3i tracks {summary['tracks']}")
    assert residual < 1e-8
    assert summary["tracks"] > 0

    benchmark(lambda: run_pipeline(surveillance_afg(n_sensors=3, scale=0.4),
                                   True))

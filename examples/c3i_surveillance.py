#!/usr/bin/env python
"""C3I surveillance on VDCE — the workload the paper's funders cared about.

Builds a four-sensor surveillance application from the C3I task library
(sensor sweeps -> track filters -> pairwise correlation -> threat
assessment -> display + archive), runs it across a three-site
federation with live background load on every host, and prints the
fused threat picture the operator display task produced.

Run:  python examples/c3i_surveillance.py
"""

from repro import VDCE, DeploymentSpec, SiteConfig
from repro.sim.workload import OrnsteinUhlenbeckLoad, attach_generators
from repro.workloads import surveillance_afg


def main() -> None:
    spec = DeploymentSpec(
        sites=(
            SiteConfig(name="command-post", n_hosts=3, speed=2.0),
            SiteConfig(name="radar-east", n_hosts=2, speed=1.0),
            SiteConfig(name="radar-west", n_hosts=2, speed=1.0),
        ),
        wan_latency_s=0.04,
        wan_bandwidth_mbps=1.5,
        seed=11,
    )
    env = VDCE(spec=spec)

    # non-dedicated workstations: other users contend for CPU
    attach_generators(
        env.sim,
        env.topology.all_hosts,
        lambda: OrnsteinUhlenbeckLoad(mean=0.4, theta=0.3, sigma=0.2,
                                      period_s=1.0),
    )
    env.start_monitoring()
    env.advance(10.0)  # let monitors populate the resource DBs

    afg = surveillance_afg(n_sensors=4, scale=0.5)
    result = env.submit(afg, k=2)

    print("placement across the federation:")
    for task_id, record in sorted(result.records.items()):
        print(f"  {task_id:<14} -> {record.site:<14} {record.hosts[0]}")

    (picture,) = result.outputs["display"]
    print("\noperator display (top threats):")
    print(picture)

    (summary,) = result.outputs["archive"]
    print(
        f"\narchive: {summary['tracks']} tracks, "
        f"max threat {summary['max_threat']:.3f}, "
        f"mean {summary['mean_threat']:.3f}"
    )
    print(f"\nmakespan: {result.makespan:.3f}s  "
          f"(setup {result.setup_time:.4f}s, "
          f"{result.data_transferred_mb:.1f} MB moved)")
    print("\n" + env.gantt(result, width=64))


if __name__ == "__main__":
    main()

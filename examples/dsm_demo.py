#!/usr/bin/env python
"""Distributed shared memory — the paper's §5 future work, running.

"We are also implementing a distributed shared memory model that will
allow VDCE users to describe their applications using a shared memory
paradigm."  This demo shows that model: four hosts across two sites
cooperate on a shared accumulator and a shared work queue index using
sequentially consistent reads/writes and atomic fetch-and-add, with
the home-based write-invalidate protocol's traffic visible in the
statistics.

Run:  python examples/dsm_demo.py
"""

from repro import VDCE
from repro.runtime import DSM


def main() -> None:
    env = VDCE.standard(n_sites=2, hosts_per_site=2, seed=9)
    dsm = DSM(env.sim, env.topology.network)

    hosts = [h.name for h in env.topology.all_hosts]
    dsm.allocate("total", home_host=hosts[0], initial=0.0)
    dsm.allocate("next_chunk", home_host=hosts[0], initial=0)

    CHUNKS = 16
    CHUNK_VALUES = [float(i * i) for i in range(CHUNKS)]
    per_host_work = {h: 0 for h in hosts}

    def worker(host):
        """Claim chunks via fetch_add, accumulate into the shared total.

        Both the queue index and the accumulator use atomic
        fetch-and-add: a plain read-modify-write from two hosts could
        interleave and lose updates — exactly the hazard a DSM user
        must avoid, here as on any real shared-memory machine.
        """
        while True:
            index = yield from dsm.fetch_add("next_chunk", 1, host)
            chunk = index - 1  # fetch_add returns the post-increment value
            if chunk >= CHUNKS:
                return
            per_host_work[host] += 1
            yield from dsm.fetch_add("total", CHUNK_VALUES[chunk], host)

    procs = [env.sim.process(worker(h), name=f"worker:{h}") for h in hosts]

    def waiter():
        for proc in procs:
            yield proc
        value = yield from dsm.read("total", hosts[0])
        return value

    total = env.sim.run_until_complete(env.sim.process(waiter()))
    expected = sum(CHUNK_VALUES)

    print(f"shared total = {total}  (expected {expected})")
    assert total == expected, "lost update — DSM consistency violated!"
    print(f"chunks per host: {per_host_work}")
    print(f"virtual time:   {env.sim.now * 1000:.1f} ms")
    print("\nDSM protocol statistics:")
    print(f"  reads:         {dsm.stats.reads} "
          f"(hit rate {dsm.stats.hit_rate():.0%})")
    print(f"  writes:        {dsm.stats.writes}")
    print(f"  invalidations: {dsm.stats.invalidations}")
    print("\nNote: the accumulator uses atomic fetch-and-add because plain"
          "\nread-modify-write from two hosts can interleave and lose updates"
          "\n— the same discipline any real shared-memory machine demands.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The web Application Editor: the paper's §2 pipeline over HTTP.

Drives the Flask editor API exactly as the 1997 browser applet would
have: log in to the site's VDCE Server, browse the task-library menus,
place tasks, wire ports, validate, submit — all over HTTP/JSON.

Uses Flask's test client so the demo needs no port; to serve it for a
real browser, do::

    from repro import VDCE
    from repro.editor.webapp import create_webapp
    create_webapp(VDCE.standard().runtime).run(port=8080)

Run:  python examples/web_editor_demo.py
"""

import json

from repro import VDCE
from repro.editor.webapp import create_webapp


def main() -> None:
    env = VDCE.standard(n_sites=2, hosts_per_site=3, seed=4)
    app = create_webapp(env.runtime, site="site-0")
    client = app.test_client()

    # -- login (paper: "After user authentication, the Application Editor
    #    is loaded into the user's local web browser") --------------------
    response = client.post(
        "/login", json={"user": "admin", "password": "vdce-admin"}
    )
    token = response.get_json()["token"]
    headers = {"X-VDCE-Token": token}
    print(f"POST /login -> {response.status_code} "
          f"{json.dumps({k: v for k, v in response.get_json().items() if k != 'token'})}")

    # -- browse the menus ---------------------------------------------------
    menus = client.get("/libraries", headers=headers).get_json()
    print(f"GET /libraries -> {list(menus)} "
          f"({sum(len(v) for v in menus.values())} tasks)")

    # -- build the application ------------------------------------------------
    client.post("/applications", json={"name": "solver"}, headers=headers)

    def post(path, payload):
        response = client.post(path, json=payload, headers=headers)
        assert response.status_code in (200, 201), response.get_json()
        return response.get_json()

    gen = post("/applications/solver/tasks",
               {"task_type": "matrix.generate_system",
                "workload_scale": 0.25})["task_id"]
    lu = post("/applications/solver/tasks",
              {"task_type": "matrix.lu_decomposition",
               "workload_scale": 0.25, "mode": "parallel",
               "n_nodes": 2})["task_id"]
    solve = post("/applications/solver/tasks",
                 {"task_type": "matrix.triangular_solve",
                  "workload_scale": 0.25})["task_id"]
    post("/applications/solver/edges", {"src": gen, "dst": lu,
                                        "src_port": 0, "dst_port": 0})
    post("/applications/solver/edges", {"src": gen, "dst": solve,
                                        "src_port": 1, "dst_port": 1})
    post("/applications/solver/edges", {"src": lu, "dst": solve,
                                        "src_port": 0, "dst_port": 0})
    print(f"built application 'solver' with tasks {gen}, {lu}, {solve}")

    # -- validate + submit ---------------------------------------------------------
    problems = post("/applications/solver/validate", {})["problems"]
    print(f"POST /validate -> problems: {problems}")

    body = post("/applications/solver/submit", {"k": 1})
    print(f"POST /submit -> makespan {body['makespan_s']:.3f}s, "
          f"{body['reschedules']} reschedules")
    for task, info in sorted(body["tasks"].items()):
        print(f"  {task:<28} {info['site']:<8} hosts={info['hosts']} "
              f"measured={info['measured_s']:.3f}s")


if __name__ == "__main__":
    main()

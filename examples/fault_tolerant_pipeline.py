#!/usr/bin/env python
"""Fault tolerance: crash a host mid-run and watch VDCE recover.

Exercises the paper's §4.1 machinery end to end:

* the Group Manager's echo packets detect the crash and mark the host
  "down" in the resource-performance database;
* the execution coordinator reschedules the killed task onto a
  replacement host and re-stages its inputs;
* a second scenario triggers the *load-threshold* path instead — the
  Application Controller terminates a task whose host got busy and
  requests rescheduling;
* a third scenario partitions the WAN mid-execution: an in-flight
  cross-site pipeline survives by retrying its killed transfers and
  re-establishing channels once the partition heals, while an
  application submitted *during* the partition degrades gracefully to
  local-only placement (no remote site answers the AFG multicast
  before the bid deadline);
* a fourth scenario crashes the submitting site's VDCE Server (the
  Site Manager process) mid-application: every completed task is
  already in the durable checkpoint journal, so the run restarts on
  the surviving site, re-executes only the frontier, and reproduces
  the exact output hashes of an uninterrupted run.

Run:  python examples/fault_tolerant_pipeline.py [checkpoint_dir]

With a ``checkpoint_dir`` argument scenario 4 leaves its journal,
repository snapshots and ``expected_hashes.json`` there, so the CI
resume smoke step (or you) can independently verify

    python -m repro resume <dir> --expect <dir>/expected_hashes.json

Expected output of scenario 3 (seed-pinned, deterministic):

    ================================================================
    scenario 3: WAN partition mid-execution
    ================================================================
    pipeline placed across sites: ['site-0', 'site-1']
    partitioning site-0 | site-1 at t=+1.0s for 8.0s
    in-flight app survived the partition: True
      transfer retries: 4, channel re-establishes: 4
    app submitted during partition placed on: ['site-0'] (local-only)
    site scheduler timed-out RPCs: 4
"""

import json
import os
import sys
import tempfile

from repro import VDCE
from repro.net.rpc import ManagerUnavailable
from repro.runtime import RuntimeConfig
from repro.runtime.checkpoint import (
    ApplicationCheckpoint,
    create_checkpoint_dir,
    expected_output_hashes,
    final_output_hashes,
    journal_path,
)
from repro.runtime.execution import ExecutionCoordinator
from repro.scheduler import SiteScheduler
from repro.scheduler.allocation import AllocationTable, TaskAssignment
from repro.sim import FailureInjector
from repro.workloads import linear_pipeline


def crash_scenario() -> None:
    print("=" * 64)
    print("scenario 1: host crash mid-pipeline")
    print("=" * 64)
    env = VDCE.standard(n_sites=2, hosts_per_site=3, seed=5)
    env.start_monitoring()

    afg = linear_pipeline(n_stages=5, cost=6.0, edge_mb=1.0)
    table = SiteScheduler(k=1).schedule(afg, env.runtime.federation_view())
    victim = table.get("s001").hosts[0]
    print(f"stage s001 placed on {victim}; crashing it at t=+4s")

    proc = env.runtime.execute_process(afg, table)
    env.sim.call_after(4.0, lambda: env.topology.host(victim).fail())
    result = env.sim.run_until_complete(proc)

    record = result.records["s001"]
    print(f"s001: attempts={record.attempts} final hosts={record.hosts}")
    print(f"reschedule reasons: {record.reschedule_reasons}")
    print(f"application completed anyway: makespan={result.makespan:.2f}s, "
          f"{result.reschedules} reschedule(s)")

    detections = [e for e in env.runtime.stats.detection_log if e[1] == victim]
    if detections:
        t, host, kind = detections[0]
        print(f"echo protocol detected {host} {kind} at t={t:.2f}s")
    down = not env.repository(
        env.topology.site_of_host(victim).name
    ).resources.get(victim).up
    print(f"resource DB marks {victim} down: {down}")


def load_threshold_scenario() -> None:
    print()
    print("=" * 64)
    print("scenario 2: workstation owner returns (load threshold)")
    print("=" * 64)
    env = VDCE.standard(
        n_sites=1,
        hosts_per_site=3,
        seed=6,
        runtime_config=RuntimeConfig(load_threshold=3.0, check_period_s=0.5),
    )
    afg = linear_pipeline(n_stages=3, cost=10.0)
    table = SiteScheduler(k=0).schedule(afg, env.runtime.federation_view())
    busy_host = table.get("s000").hosts[0]
    print(f"s000 on {busy_host}; owner's load hits 8.0 at t=+2s "
          f"(threshold 3.0)")

    proc = env.runtime.execute_process(afg, table)
    env.sim.call_after(
        2.0, lambda: env.topology.host(busy_host).set_bg_load(8.0)
    )
    result = env.sim.run_until_complete(proc)

    record = result.records["s000"]
    print(f"s000: attempts={record.attempts} moved to {record.hosts}")
    print(f"Application Controller reschedule requests: "
          f"{env.runtime.stats.reschedule_requests}")
    print(f"makespan={result.makespan:.2f}s")


def partition_scenario() -> None:
    print()
    print("=" * 64)
    print("scenario 3: WAN partition mid-execution")
    print("=" * 64)
    env = VDCE.standard(n_sites=2, hosts_per_site=2, seed=7)
    env.start_monitoring()

    # pin a pipeline across both sites so its dataflow crosses the WAN
    afg = linear_pipeline(n_stages=4, cost=2.0, edge_mb=8.0)
    hosts = {s: sorted(env.topology.site(s).hosts) for s in env.sites}
    table = AllocationTable(afg.name, scheduler="manual")
    placements = {
        "s000": ("site-0", hosts["site-0"][0]),
        "s001": ("site-0", hosts["site-0"][1]),
        "s002": ("site-1", hosts["site-1"][0]),
        "s003": ("site-1", hosts["site-1"][1]),
    }
    for task_id, (site, host) in placements.items():
        table.assign(TaskAssignment(task_id, site, (host,), 1.0))
    print(f"pipeline placed across sites: {table.sites_used()}")

    injector = FailureInjector(env.sim)
    injector.schedule_partition(
        env.topology.network, [["site-0"], ["site-1"]], start=1.0, duration=8.0
    )
    print("partitioning site-0 | site-1 at t=+1.0s for 8.0s")

    proc = env.runtime.execute_process(afg, table, submit_site="site-0")

    # meanwhile a second user submits from site-0 while the WAN is down:
    # the AFG multicast to site-1 times out and placement degrades to
    # local-only instead of blocking on the unreachable site
    placed = {}

    def submit_during_partition():
        afg2 = linear_pipeline(n_stages=3, cost=4.0)
        afg2.name = "during-partition"
        table2, _ = yield from env.runtime.schedule_process(
            afg2, SiteScheduler(k=1), local_site="site-0"
        )
        placed["table"] = table2

    env.sim.call_after(
        3.0, lambda: env.sim.process(submit_during_partition())
    )

    result = env.sim.run_until_complete(proc, limit=1e5)
    if "table" not in placed:  # drain the second app's scheduling round
        env.sim.run(until=env.sim.now + 60.0)

    print(f"in-flight app survived the partition: "
          f"{result.makespan > 0 and not env.topology.network.partitioned}")
    print(f"  transfer retries: {result.transfer_retries}, "
          f"channel re-establishes: {result.channel_reestablishes}")
    print(f"app submitted during partition placed on: "
          f"{placed['table'].sites_used()} (local-only)")
    print(f"site scheduler timed-out RPCs: {env.runtime.stats.rpc_timeouts}")


def checkpoint_resume_scenario(checkpoint_dir=None) -> None:
    print()
    print("=" * 64)
    print("scenario 4: Site Manager crash + checkpoint restart")
    print("=" * 64)
    directory = checkpoint_dir or tempfile.mkdtemp(prefix="vdce-checkpoint-")

    env = VDCE.standard(n_sites=2, hosts_per_site=2, seed=8)
    afg = linear_pipeline(n_stages=5, cost=4.0, edge_mb=1.0)

    # the resume-equivalence oracle: pure evaluation, no runtime at all
    expected = expected_output_hashes(afg, env.runtime.registry)
    journal = create_checkpoint_dir(env, directory)
    with open(os.path.join(directory, "expected_hashes.json"), "w",
              encoding="utf-8") as fh:
        json.dump(expected, fh, indent=2, sort_keys=True)
        fh.write("\n")

    table = SiteScheduler(k=1).schedule(afg, env.runtime.federation_view())
    proc = env.runtime.execute_process(
        afg, table, submit_site="site-0", journal=journal
    )
    injector = FailureInjector(env.sim)
    injector.schedule_site_manager_crash(
        env.runtime.site_managers["site-0"], time=5.0
    )
    print("crashing site-0's VDCE Server (Site Manager) at t=+5.0s")
    try:
        env.sim.run_until_complete(proc)
        print("application finished before the crash bit (unexpected)")
    except ManagerUnavailable as exc:
        print(f"control plane lost: {exc}")

    checkpoint = ApplicationCheckpoint.load(journal_path(directory))
    print(f"journal holds {len(checkpoint.completed)} completed task(s); "
          f"frontier to re-run: {checkpoint.incomplete()}")

    coordinator = ExecutionCoordinator(
        env.runtime, checkpoint.afg, checkpoint.table,
        submit_site="site-1", journal=journal, checkpoint=checkpoint,
    )
    result = env.sim.run_until_complete(coordinator.start())
    env.save_repositories(os.path.join(directory, "repos"))
    print(f"restarted on site-1 and completed at t={result.finished_at:.2f}s "
          f"({env.runtime.stats.resumes} resume, "
          f"{result.reschedules} reschedule(s))")
    equivalent = final_output_hashes(result) == expected
    print(f"resume equivalence (crash+restart == uninterrupted): {equivalent}")
    print(f"checkpoint directory: {directory}")
    print("  verify offline:  python -m repro resume "
          f"{directory} --expect {directory}/expected_hashes.json")
    if not equivalent:
        raise SystemExit(1)


if __name__ == "__main__":
    crash_scenario()
    load_threshold_scenario()
    partition_scenario()
    checkpoint_resume_scenario(sys.argv[1] if len(sys.argv) > 1 else None)

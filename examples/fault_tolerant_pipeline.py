#!/usr/bin/env python
"""Fault tolerance: crash a host mid-run and watch VDCE recover.

Exercises the paper's §4.1 machinery end to end:

* the Group Manager's echo packets detect the crash and mark the host
  "down" in the resource-performance database;
* the execution coordinator reschedules the killed task onto a
  replacement host and re-stages its inputs;
* a second scenario triggers the *load-threshold* path instead — the
  Application Controller terminates a task whose host got busy and
  requests rescheduling.

Run:  python examples/fault_tolerant_pipeline.py
"""

from repro import VDCE
from repro.runtime import RuntimeConfig
from repro.scheduler import SiteScheduler
from repro.workloads import linear_pipeline


def crash_scenario() -> None:
    print("=" * 64)
    print("scenario 1: host crash mid-pipeline")
    print("=" * 64)
    env = VDCE.standard(n_sites=2, hosts_per_site=3, seed=5)
    env.start_monitoring()

    afg = linear_pipeline(n_stages=5, cost=6.0, edge_mb=1.0)
    table = SiteScheduler(k=1).schedule(afg, env.runtime.federation_view())
    victim = table.get("s001").hosts[0]
    print(f"stage s001 placed on {victim}; crashing it at t=+4s")

    proc = env.runtime.execute_process(afg, table)
    env.sim.call_after(4.0, lambda: env.topology.host(victim).fail())
    result = env.sim.run_until_complete(proc)

    record = result.records["s001"]
    print(f"s001: attempts={record.attempts} final hosts={record.hosts}")
    print(f"reschedule reasons: {record.reschedule_reasons}")
    print(f"application completed anyway: makespan={result.makespan:.2f}s, "
          f"{result.reschedules} reschedule(s)")

    detections = [e for e in env.runtime.stats.detection_log if e[1] == victim]
    if detections:
        t, host, kind = detections[0]
        print(f"echo protocol detected {host} {kind} at t={t:.2f}s")
    down = not env.repository(
        env.topology.site_of_host(victim).name
    ).resources.get(victim).up
    print(f"resource DB marks {victim} down: {down}")


def load_threshold_scenario() -> None:
    print()
    print("=" * 64)
    print("scenario 2: workstation owner returns (load threshold)")
    print("=" * 64)
    env = VDCE.standard(
        n_sites=1,
        hosts_per_site=3,
        seed=6,
        runtime_config=RuntimeConfig(load_threshold=3.0, check_period_s=0.5),
    )
    afg = linear_pipeline(n_stages=3, cost=10.0)
    table = SiteScheduler(k=0).schedule(afg, env.runtime.federation_view())
    busy_host = table.get("s000").hosts[0]
    print(f"s000 on {busy_host}; owner's load hits 8.0 at t=+2s "
          f"(threshold 3.0)")

    proc = env.runtime.execute_process(afg, table)
    env.sim.call_after(
        2.0, lambda: env.topology.host(busy_host).set_bg_load(8.0)
    )
    result = env.sim.run_until_complete(proc)

    record = result.records["s000"]
    print(f"s000: attempts={record.attempts} moved to {record.hosts}")
    print(f"Application Controller reschedule requests: "
          f"{env.runtime.stats.reschedule_requests}")
    print(f"makespan={result.makespan:.2f}s")


if __name__ == "__main__":
    crash_scenario()
    load_threshold_scenario()

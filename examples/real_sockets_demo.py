#!/usr/bin/env python
"""The Data Manager over *real* TCP sockets (paper §4.2, for real).

Runs the linear solver through :class:`LocalDataManager`: every logical
host is a communication proxy listening on a localhost port, every AFG
edge is a genuine socket channel (setup message + acknowledgment), the
startup signal fires only after all acks, and task payloads (numpy
matrices) travel as pickled frames through the sockets.

Also cross-checks the result against the simulated Data Manager — both
implementations must compute the identical residual.

Run:  python examples/real_sockets_demo.py
"""

import numpy as np

from repro import VDCE
from repro.runtime import LocalDataManager
from repro.scheduler import AllocationTable, SiteScheduler, TaskAssignment
from repro.workloads import linear_solver_afg


def main() -> None:
    afg = linear_solver_afg(scale=0.2, parallel_lu_nodes=1)

    # manual placement over three logical hosts on this machine
    table = AllocationTable(afg.name, scheduler="manual")
    hosts = ["node-a", "node-b", "node-c"]
    for i, task in enumerate(afg.topological_order()):
        table.assign(TaskAssignment(task, "local", (hosts[i % 3],), 0.1))

    print("executing over real TCP sockets on localhost ...")
    report = LocalDataManager(timeout_s=30.0).execute(afg, table)

    print(f"channels opened: {report.channels} "
          f"(one per AFG edge, each with a setup+ack handshake)")
    print(f"acks received:   {report.acks}")
    print(f"payload frames:  {report.payloads}")
    print(f"bytes on wire:   {report.bytes_sent}")
    print(f"setup wall time: {report.startup_wall_s * 1000:.2f} ms")
    print(f"makespan (wall): {report.makespan_wall_s * 1000:.2f} ms")

    (residual,) = report.outputs["verify"]
    print(f"\nresidual ||Ax-b|| over the wire: {residual:.2e}")

    # -- cross-check against the simulated Data Manager -----------------------
    env = VDCE.standard(n_sites=2, hosts_per_site=2, seed=1)
    sim_table = SiteScheduler(k=1).schedule(afg, env.runtime.federation_view())
    sim_result = env.sim.run_until_complete(
        env.runtime.execute_process(afg, sim_table)
    )
    (sim_residual,) = sim_result.outputs["verify"]
    assert np.isclose(residual, sim_residual), "implementations disagree!"
    print(f"simulated Data Manager residual:  {sim_residual:.2e}  (identical)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The paper's Figure 1, end to end: editor -> scheduler -> runtime.

Reproduces the application development pipeline of paper §2 exactly as
a user would drive it: open an authenticated editor session, build the
Linear Equation Solver AFG task by task (LU-Decomposition parallel on
2 nodes with a file input, Matrix-Multiplication sequential preferring
a SUN solaris machine — the two task-properties windows of Figure 1),
then submit and watch the scheduler honour the preferences.

Run:  python examples/linear_equation_solver.py
"""

from repro import VDCE
from repro.workloads import figure1_afg
from repro.workloads.linear_solver import (
    FIGURE1_MATRIX_PATH,
    FIGURE1_MATRIX_SIZE_MB,
)


def main() -> None:
    env = VDCE.standard(n_sites=2, hosts_per_site=4, seed=3)
    env.add_user("user_k", "secret", priority=3)

    # -- the editor pipeline of §2 ------------------------------------------
    session = env.open_editor("user_k", "secret")
    print(f"authenticated as {session.account.user_name} "
          f"(uid={session.account.user_id}, "
          f"priority={session.account.priority})")

    print("\ntask library menus (paper: 'menu-driven task libraries'):")
    for library, entries in session.libraries().items():
        names = ", ".join(e["name"].split(".", 1)[1] for e in entries[:4])
        print(f"  {library:<8} {names}, ...")

    builder = session.new_application("linear-equation-solver")
    lu = builder.add(
        "matrix.lu_decomposition",
        id="LU_Decomposition",
        mode="parallel",
        n_nodes=2,                      # "Number of Nodes: 2"
        workload_scale=2.0,
    )
    builder.bind_file(lu, 0, FIGURE1_MATRIX_PATH, FIGURE1_MATRIX_SIZE_MB)
    mm = builder.add(
        "matrix.matrix_multiply",
        id="Matrix_Multiplication",
        mode="sequential",
        n_nodes=1,                      # "Number of Nodes: 1"
        preferred_machine_type="SUN solaris",
    )
    src = builder.add("matrix.transpose", id="Matrix_Source")
    builder.bind_file(src, 0, FIGURE1_MATRIX_PATH, FIGURE1_MATRIX_SIZE_MB)
    builder.connect(lu, mm, src_port=0, dst_port=0, size_mb=60.0)
    builder.connect(src, mm, src_port=0, dst_port=1,
                    size_mb=FIGURE1_MATRIX_SIZE_MB)
    afg = builder.build()
    print(f"\nbuilt AFG {afg.name!r}: {len(afg)} tasks, {len(afg.edges)} edges")

    # -- schedule + execute (shape-only: the 124 MB file is synthetic) --------
    result = session.submit(afg, k=1, execute_payloads=False)

    print("\nrealised allocation (compare with Figure 1's properties windows):")
    for task_id, record in sorted(result.records.items()):
        print(f"  {task_id:<22} site={record.site:<8} hosts={record.hosts}")
    lu_record = result.records["LU_Decomposition"]
    assert len(lu_record.hosts) == 2, "parallel LU must get two machines"

    print(f"\nsetup (alloc distribution + channel setup): "
          f"{result.setup_time:.4f}s")
    print(f"makespan: {result.makespan:.3f}s")
    print(f"data moved: {result.data_transferred_mb:.1f} MB "
          f"over {result.data_transfers} transfers")

    # the prebuilt figure1_afg() is the same graph, one call away:
    prebuilt = figure1_afg()
    print(f"\n(prebuilt variant available: {prebuilt.name!r}, "
          f"{len(prebuilt)} tasks)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A day on the campus grid: everything VDCE does, in one scenario.

Simulates eight virtual hours of a three-site federation under
realistic conditions:

* every workstation carries a *diurnal* background load (owners work
  during the day) plus jitter;
* hosts crash and recover stochastically; the echo protocol (with a
  lossy LAN and a suspicion threshold) keeps the resource DBs honest;
* a stream of applications — solvers, C3I pipelines, DSP chains —
  arrives through the priority admission queue from users with
  different priorities and access domains;
* the Application Controllers reschedule tasks off machines whose
  owners return.

At the end: per-application outcomes, fleet utilisation and the
control-plane message bill.

Run:  python examples/campus_day.py
"""

from repro import VDCE, DeploymentSpec, SiteConfig
from repro.metrics import host_utilization
from repro.runtime import AdmissionQueue, RuntimeConfig
from repro.repository import AccessDomain
from repro.sim import DiurnalLoad, FailureInjector
from repro.sim.workload import attach_generators
from repro.workloads import (
    RandomDAGConfig,
    linear_solver_afg,
    random_dag,
    surveillance_afg,
)

HOURS = 8
DAY_S = HOURS * 3600.0


def main() -> None:
    spec = DeploymentSpec(
        sites=(
            SiteConfig(name="engineering", n_hosts=4, speed=2.0),
            SiteConfig(name="science", n_hosts=4, speed=1.5),
            SiteConfig(name="library", n_hosts=3, speed=1.0),
        ),
        wan_latency_s=0.03,
        wan_bandwidth_mbps=2.0,
        seed=1997,
    )
    env = VDCE(
        spec=spec,
        runtime_config=RuntimeConfig(
            monitor_period_s=30.0,
            change_threshold=0.25,
            echo_period_s=60.0,
            echo_loss_prob=0.05,
            suspicion_threshold=3,
            load_threshold=4.0,
            check_period_s=30.0,
        ),
    )

    # owners arrive mid-morning: diurnal load peaking at noon
    attach_generators(
        env.sim,
        env.topology.all_hosts,
        lambda: DiurnalLoad(base=0.1, amplitude=2.0, day_length_s=DAY_S * 2,
                            phase_s=0.0, jitter=0.15, period_s=60.0),
    )

    # stochastic crashes: MTBF 6 h, repair in ~20 min
    injector = FailureInjector(env.sim)
    for host in env.topology.all_hosts:
        injector.start_random(host, mtbf_s=6 * 3600.0, mttr_s=20 * 60.0)

    env.start_monitoring()

    env.add_user("ops", "x", priority=9, access_domain=AccessDomain.GLOBAL)
    env.add_user("grad", "x", priority=3, access_domain=AccessDomain.CAMPUS)
    env.add_user("intro-class", "x", priority=1,
                 access_domain=AccessDomain.LOCAL)

    queue = AdmissionQueue(env.runtime, max_concurrent=3, site="engineering")

    def make_app(index: int):
        kind = index % 3
        if kind == 0:
            afg = linear_solver_afg(scale=0.2)
        elif kind == 1:
            afg = surveillance_afg(n_sensors=3, scale=0.4)
        else:
            afg = random_dag(RandomDAGConfig(n_tasks=16, width=4,
                                             mean_cost=30.0, ccr=0.3,
                                             seed=index))
        afg.name = f"{afg.name}#{index}"
        return afg

    users = ["ops", "grad", "grad", "intro-class"]
    signals = []
    rng = env.sim.rng("campus:arrivals")
    t = 600.0
    for i in range(12):
        afg = make_app(i)
        user = users[i % len(users)]
        env.sim.call_at(
            t, lambda afg=afg, user=user: signals.append(
                (afg.name, user, queue.submit(afg, user))
            ),
        )
        t += float(rng.exponential(DAY_S / 16))

    env.advance(DAY_S)

    print(f"=== campus day: {HOURS} virtual hours, "
          f"{len(env.topology.all_hosts)} hosts, 3 sites ===\n")
    completed = failed = 0
    for name, user, signal in signals:
        if not signal.triggered:
            print(f"  {name:<28} [{user:<11}] still running at close")
        elif signal.failed:
            failed += 1
            print(f"  {name:<28} [{user:<11}] FAILED: {signal.exception}")
        else:
            completed += 1
            result = signal.value
            note = f", {result.reschedules} resched" if result.reschedules else ""
            print(f"  {name:<28} [{user:<11}] "
                  f"makespan {result.makespan:8.1f}s{note}")
    print(f"\ncompleted {completed}, failed {failed}, "
          f"queued-at-close {sum(1 for *_, s in signals if not s.triggered)}")

    downs = [e for e in injector.log if e.kind == "down"]
    detected = [e for e in env.runtime.stats.detection_log if e[2] == "down"]
    print(f"\ncrashes injected: {len(downs)}; detections logged: "
          f"{len(detected)}")
    false_positives = sum(
        gm.false_positives for gm in env.runtime.group_managers.values()
    )
    print(f"false positives under 5% echo loss (threshold 3): "
          f"{false_positives}")

    util = host_utilization(env.topology)
    busiest = sorted(util.items(), key=lambda kv: -kv[1])[:5]
    print("\nbusiest hosts (fraction of day running VDCE tasks):")
    for host, fraction in busiest:
        print(f"  {host:<20} {fraction:6.1%}")

    stats = env.stats()
    print(f"\ncontrol plane: {stats['monitor_reports']} measurements, "
          f"{stats['workload_forwards']} forwarded "
          f"({stats['workload_suppressed']} suppressed), "
          f"{stats['echo_packets']} echoes, "
          f"{stats['reschedule_requests']} reschedule requests")


if __name__ == "__main__":
    main()

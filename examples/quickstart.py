#!/usr/bin/env python
"""Quickstart: bring up a two-site VDCE, run the linear solver, look around.

This is the 60-second tour of the reproduction:

1. deploy a federation (two sites, heterogeneous hosts, WAN between);
2. submit the Linear Equation Solver application (the paper's Figure 1
   workload, computational variant) through the distributed scheduler;
3. inspect the resource allocation, the Gantt chart and the runtime
   statistics the paper's components produced along the way.

Run:  python examples/quickstart.py
"""

from repro import VDCE, DeploymentSpec, HostConfig, SiteConfig
from repro.metrics import summarize_result
from repro.workloads import linear_solver_afg


def main() -> None:
    # -- 1. deploy ---------------------------------------------------------
    spec = DeploymentSpec(
        sites=(
            SiteConfig(
                name="syracuse",
                hosts=(
                    HostConfig("grad1", speed=1.0, memory_mb=128),
                    HostConfig("grad2", speed=1.5, memory_mb=256),
                    HostConfig("hunding", speed=2.5, memory_mb=512),
                ),
            ),
            SiteConfig(name="rome-lab", n_hosts=4, speed=2.0),
        ),
        wan_latency_s=0.03,
        wan_bandwidth_mbps=2.0,
        seed=7,
    )
    env = VDCE(spec=spec)
    env.start_monitoring()
    print(f"deployed: {env!r}")

    # -- 2. submit the Figure 1 application --------------------------------
    afg = linear_solver_afg(scale=0.25, parallel_lu_nodes=2)
    result = env.submit(afg, k=1)

    # -- 3. inspect --------------------------------------------------------
    print("\nper-task placement (the resource allocation table, realised):")
    for task_id, record in sorted(result.records.items()):
        print(
            f"  {task_id:<10} -> site={record.site:<10} hosts={record.hosts} "
            f"predicted={record.predicted_time:7.3f}s "
            f"measured={record.measured_time:7.3f}s"
        )

    (residual,) = result.outputs["verify"]
    print(f"\nlinear system residual ||Ax-b|| = {residual:.2e}  (correct!)")

    print("\n" + env.gantt(result))

    summary = summarize_result(result, afg, env.repository().task_perf)
    print(
        f"\nmakespan={summary.makespan:.3f}s  SLR={summary.slr:.3f}  "
        f"speedup={summary.speedup:.3f}  sites={summary.n_sites}"
    )

    print("\nruntime statistics (control + data plane):")
    for key, value in env.stats().items():
        if value:
            print(f"  {key:<26} {value}")


if __name__ == "__main__":
    main()

"""Virtual-clock sampling profile of the runtime hot paths.

Turns a span trace into a **folded-stack** profile: one line per
distinct span ancestry (frames joined by ``;``) with its total *self
time* — span duration minus the union of its children's intervals — in
integer virtual microseconds.  The format is the classic collapsed
stack format consumed by flamegraph tooling and speedscope's importer,
so ``repro bench --profile out.folded`` drops straight into
https://speedscope.app.

Frames are stable, human-meaningful names rather than span ids
(``app:mapreduce;task:map-3;execute``), so identical work on different
runs aggregates to identical lines; the output is sorted and therefore
deterministic for a fixed seed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.obs.attribution import SpanNode, build_forest
from repro.obs.spans import SpanKind
from repro.trace.events import TraceEvent

__all__ = ["folded_stacks", "format_folded", "self_time"]


def _frame(node: SpanNode) -> str:
    """Aggregation-friendly frame name for one span."""
    if node.kind == SpanKind.APP:
        return f"app:{node.app}" if node.app else "app:?"
    if node.kind == SpanKind.TASK:
        return f"task:{node.attrs.get('task', '?')}"
    if node.kind == SpanKind.RPC:
        return f"rpc:{node.attrs.get('label', '?')}"
    return node.kind


def _union_length(intervals: List[Tuple[float, float]]) -> float:
    """Total length covered by a set of (start, end) intervals."""
    if not intervals:
        return 0.0
    covered = 0.0
    cur_start, cur_end = None, None
    for start, end in sorted(intervals):
        if cur_end is None or start > cur_end:
            if cur_end is not None:
                covered += cur_end - cur_start
            cur_start, cur_end = start, end
        elif end > cur_end:
            cur_end = end
    covered += cur_end - cur_start
    return covered


def self_time(node: SpanNode) -> float:
    """Span duration not covered by any child span (clamped to the span)."""
    window = (node.open_time, node.end)
    child_intervals = [
        (max(c.open_time, window[0]), min(c.end, window[1]))
        for c in node.children
        if min(c.end, window[1]) > max(c.open_time, window[0])
    ]
    return max(0.0, node.duration - _union_length(child_intervals))


def folded_stacks(
    events: Iterable[TraceEvent], prefix: str = ""
) -> Dict[str, int]:
    """Aggregate folded stacks: ``;``-joined frames -> self microseconds.

    Zero-self-time stacks are dropped.  ``prefix`` (e.g. the benchmark
    scenario name) becomes the root frame when given.
    """
    stacks: Dict[str, int] = {}

    def visit(node: SpanNode, frames: List[str]) -> None:
        frames = frames + [_frame(node)]
        micros = int(round(self_time(node) * 1e6))
        if micros > 0:
            key = ";".join(frames)
            stacks[key] = stacks.get(key, 0) + micros
        for child in node.children:
            visit(child, frames)

    base = [prefix] if prefix else []
    for root in build_forest(events):
        visit(root, base)
    return stacks


def format_folded(stacks: Dict[str, int]) -> str:
    """Render to the collapsed-stack text format, sorted for determinism."""
    return "".join(
        f"{key} {value}\n" for key, value in sorted(stacks.items())
    )

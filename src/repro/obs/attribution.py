"""Attribution: from a span trace to "why was this application slow?".

Rebuilds the span forest from the paired ``span_open`` / ``span_close``
(/ ``span_orphan``) trace events, then answers three questions per
application:

* **Wait-state breakdown** — every instant of the application's wall
  time is assigned to exactly one category (queue, scheduling, staging,
  execution, retry, speculation, or other) by an elementary-interval
  sweep over the root window: the category intervals of every
  descendant span are clamped to the window, boundaries partition it
  into elementary segments, and each segment takes the highest-priority
  category active on it.  The partition is exact by construction, so
  the per-category sums always add up to the window's wall time — the
  report records the residual and the CLI enforces it at 1e-6.
* **Critical path** — the chain of spans that determined the finish
  time: from the root, repeatedly descend into the child that closed
  last (ties broken by smaller span id, deterministically).
* **Top-k** — slowest tasks by task-span duration, and busiest hosts by
  summed execute-span time.

Everything is computed on the virtual clock from the trace alone, with
no RNG and no wall-clock reads, and the report is canonical JSON
(sorted keys, 9-decimal rounding) hashed with sha256 — two runs of the
same seed produce byte-identical reports.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.spans import SpanKind
from repro.trace.events import EventKind, TraceEvent

__all__ = [
    "ATTRIBUTION_SCHEMA_VERSION",
    "SpanNode",
    "build_forest",
    "explain",
    "report_hash",
    "report_to_json",
    "span_integrity",
]

#: version stamp of the explain report layout
#: (v3 adds the "repair" wait-state: data-integrity refetch + lineage
#: regeneration episodes, DESIGN §16; v4 adds the "drain" wait-state:
#: rescheduling forced by graceful host drains / membership changes,
#: DESIGN §17)
ATTRIBUTION_SCHEMA_VERSION = 4

#: span kind -> wait-state category; None marks container spans whose
#: time is attributed through their children
CATEGORY: Dict[str, Optional[str]] = {
    SpanKind.APP: None,
    SpanKind.TASK: None,
    SpanKind.COLLECT: None,
    SpanKind.RESUME: None,
    SpanKind.FAILOVER: None,
    SpanKind.ADMISSION_WAIT: "queue",
    SpanKind.SCHEDULE: "scheduling",
    SpanKind.BID_EXCHANGE: "scheduling",
    SpanKind.ALLOCATION: "scheduling",
    SpanKind.SM_FANOUT: "scheduling",
    SpanKind.CHANNEL_SETUP: "scheduling",
    SpanKind.RPC: "scheduling",
    SpanKind.RPC_ATTEMPT: "scheduling",
    SpanKind.RETRY_BACKOFF: "retry",
    SpanKind.RESCHEDULE: "retry",
    SpanKind.INPUT_WAIT: "staging",
    SpanKind.STAGE_IN: "staging",
    SpanKind.STAGE_OUT: "staging",
    SpanKind.EXECUTE: "execution",
    SpanKind.SPECULATE_BACKUP: "speculation",
    SpanKind.REPAIR: "repair",
    SpanKind.DRAIN: "drain",
}

#: when several categories are active on one elementary segment, the
#: highest-priority one owns it (earlier = higher).  Repair outranks
#: staging: while a corrupted delivery is being refetched/regenerated
#: the consumer's input wait is *caused* by the repair, and E-series
#: repair-overhead numbers read straight off this category.
PRIORITY: Tuple[str, ...] = (
    "execution", "repair", "drain", "staging", "retry", "speculation",
    "scheduling", "shed", "queue",
)

#: every category a breakdown reports, in canonical order
CATEGORIES: Tuple[str, ...] = PRIORITY + ("other",)

_SPAN_KINDS = frozenset(
    (EventKind.SPAN_OPEN, EventKind.SPAN_CLOSE, EventKind.SPAN_ORPHAN)
)


@dataclass
class SpanNode:
    """One reconstructed span."""

    span_id: int
    kind: str
    app: str
    parent_id: Optional[int]
    open_time: float
    close_time: Optional[float] = None
    status: str = ""
    orphaned: bool = False
    unclosed: bool = False
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        end = self.close_time if self.close_time is not None else self.open_time
        return max(0.0, end - self.open_time)

    @property
    def end(self) -> float:
        return self.close_time if self.close_time is not None else self.open_time

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def build_forest(events: Iterable[TraceEvent]) -> List[SpanNode]:
    """Span forest from a trace; unclosed spans are closed at trace end.

    Returns the root nodes (spans with no parent) in open order.
    Children are sorted by (open_time, span_id), so the forest is
    deterministic regardless of event interleaving.
    """
    nodes: Dict[int, SpanNode] = {}
    last_time = 0.0
    for event in events:
        last_time = max(last_time, event.time)
        if event.kind not in _SPAN_KINDS:
            continue
        data = event.data
        span_id = int(data["span_id"])
        if event.kind == EventKind.SPAN_OPEN:
            parent_id = data.get("parent_id")
            attrs = {
                k: v for k, v in data.items()
                if k not in ("span", "span_id", "parent_id", "application")
            }
            nodes[span_id] = SpanNode(
                span_id=span_id,
                kind=str(data.get("span", "")),
                app=str(data.get("application", "")),
                parent_id=int(parent_id) if parent_id is not None else None,
                open_time=event.time,
                attrs=attrs,
            )
        elif span_id in nodes:
            node = nodes[span_id]
            if node.close_time is None:
                node.close_time = event.time
                if event.kind == EventKind.SPAN_ORPHAN:
                    node.orphaned = True
                    node.status = str(data.get("reason", "orphaned"))
                else:
                    node.status = str(data.get("status", "ok"))
    roots: List[SpanNode] = []
    for span_id in sorted(nodes):
        node = nodes[span_id]
        if node.close_time is None:
            node.close_time = last_time
            node.unclosed = True
            node.status = "unclosed"
        parent = nodes.get(node.parent_id) if node.parent_id is not None else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.open_time, n.span_id))
    return roots


def span_integrity(events: Iterable[TraceEvent]) -> List[str]:
    """Span-pairing violations in a trace; empty list means clean.

    The chaos invariant I9: every ``span_open`` is matched by exactly
    one ``span_close`` *or* one explicit ``span_orphan``, never both,
    never more than one, and never a close/orphan without an open.
    """
    violations: List[str] = []
    state: Dict[int, str] = {}  # span_id -> "open" | "closed" | "orphaned"
    for event in events:
        if event.kind not in _SPAN_KINDS:
            continue
        span_id = int(event.data["span_id"])
        kind = str(event.data.get("span", "?"))
        if event.kind == EventKind.SPAN_OPEN:
            if span_id in state:
                violations.append(f"span {span_id} ({kind}) opened twice")
            state[span_id] = "open"
        else:
            verb = (
                "closed" if event.kind == EventKind.SPAN_CLOSE else "orphaned"
            )
            prior = state.get(span_id)
            if prior is None:
                violations.append(
                    f"span {span_id} ({kind}) {verb} without an open"
                )
            elif prior != "open":
                violations.append(
                    f"span {span_id} ({kind}) {verb} after already {prior}"
                )
            state[span_id] = verb
    for span_id, prior in sorted(state.items()):
        if prior == "open":
            violations.append(
                f"span {span_id} never closed and never orphan-marked"
            )
    return violations


# -- the wait-state sweep --------------------------------------------------

def _sweep(window: Tuple[float, float],
           intervals: List[Tuple[float, float, str]]) -> Dict[str, float]:
    """Exact partition of ``window`` over categories.

    ``intervals`` are (start, end, category); they are clamped to the
    window, boundaries split it into elementary segments, and each
    segment is charged to the highest-priority active category (or
    ``other`` when none is active).  The returned sums add up to
    exactly ``window[1] - window[0]`` up to float associativity.
    """
    w0, w1 = window
    out = {c: 0.0 for c in CATEGORIES}
    if w1 <= w0:
        return out
    clamped = []
    points = {w0, w1}
    for start, end, category in intervals:
        start, end = max(start, w0), min(end, w1)
        if end <= start:
            continue
        clamped.append((start, end, category))
        points.add(start)
        points.add(end)
    rank = {c: i for i, c in enumerate(PRIORITY)}
    bounds = sorted(points)
    for left, right in zip(bounds, bounds[1:]):
        mid_best: Optional[str] = None
        for start, end, category in clamped:
            if start <= left and end >= right:
                if mid_best is None or rank[category] < rank[mid_best]:
                    mid_best = category
        out[mid_best if mid_best is not None else "other"] += right - left
    return out


def _category_intervals(root: SpanNode) -> List[Tuple[float, float, str]]:
    intervals = []
    for node in root.walk():
        category = CATEGORY.get(node.kind)
        if (node.kind == SpanKind.ADMISSION_WAIT
                and node.status in ("shed", "expired")):
            # the wait ended in a shed, not an admission: that time was
            # spent being overloaded, not waiting for a slot
            category = "shed"
        if category is not None and node.end > node.open_time:
            intervals.append((node.open_time, node.end, category))
    return intervals


def _critical_path(root: SpanNode) -> List[Dict[str, Any]]:
    """The chain of spans that determined the root's finish time."""
    path = []
    node = root
    while True:
        path.append({
            "span": node.kind,
            "span_id": node.span_id,
            "task": node.attrs.get("task"),
            "open": node.open_time,
            "close": node.end,
            "duration_s": node.duration,
        })
        if not node.children:
            return path
        node = max(node.children, key=lambda n: (n.end, -n.span_id))


# -- the report ------------------------------------------------------------

def explain(events: Iterable[TraceEvent], top: int = 5) -> Dict[str, Any]:
    """The full attribution report for one trace.

    Per application: wall time (summed over its root windows — a
    checkpoint-restarted application has one window per incarnation),
    the wait-state breakdown, the span-level critical path of the last
    window, per-task breakdowns, and top-``top`` slow tasks.  Globally:
    top hosts by execute time and the span-integrity summary.
    """
    events = list(events)
    roots = build_forest(events)
    app_roots: Dict[str, List[SpanNode]] = {}
    for root in roots:
        if root.kind == SpanKind.APP:
            app_roots.setdefault(root.app, []).append(root)

    apps: Dict[str, Any] = {}
    host_execute: Dict[str, float] = {}
    for app, windows in sorted(app_roots.items()):
        breakdown = {c: 0.0 for c in CATEGORIES}
        wall = 0.0
        tasks: Dict[str, Any] = {}
        for root in windows:
            wall += root.duration
            swept = _sweep(
                (root.open_time, root.end), _category_intervals(root)
            )
            for category, value in swept.items():
                breakdown[category] += value
            for node in root.walk():
                if node.kind == SpanKind.TASK:
                    task_id = str(node.attrs.get("task", node.span_id))
                    t_swept = _sweep(
                        (node.open_time, node.end),
                        _category_intervals(node),
                    )
                    tasks[task_id] = {
                        "wall_s": node.duration,
                        "site": node.attrs.get("site"),
                        "hosts": node.attrs.get("hosts"),
                        "status": node.status,
                        "breakdown": t_swept,
                    }
                elif node.kind == SpanKind.EXECUTE:
                    host = node.attrs.get("host")
                    if host:
                        host_execute[str(host)] = (
                            host_execute.get(str(host), 0.0) + node.duration
                        )
        residual = wall - sum(breakdown.values())
        top_tasks = sorted(
            tasks.items(), key=lambda kv: (-kv[1]["wall_s"], kv[0])
        )[:top]
        apps[app] = {
            "windows": len(windows),
            "wall_s": wall,
            "breakdown": breakdown,
            "breakdown_residual_s": residual,
            "critical_path": _critical_path(windows[-1]),
            "tasks": tasks,
            "top_tasks": [
                {"task": task_id, "wall_s": info["wall_s"]}
                for task_id, info in top_tasks
            ],
        }

    top_hosts = sorted(
        host_execute.items(), key=lambda kv: (-kv[1], kv[0])
    )[:top]
    integrity = span_integrity(events)
    orphaned = sum(
        1 for e in events if e.kind == EventKind.SPAN_ORPHAN
    )
    return {
        "schema_version": ATTRIBUTION_SCHEMA_VERSION,
        "apps": apps,
        "top_hosts": [
            {"host": host, "execute_s": value} for host, value in top_hosts
        ],
        "integrity": {
            "violations": integrity,
            "orphaned_spans": orphaned,
        },
    }


def _round_floats(value: Any, digits: int = 9) -> Any:
    if isinstance(value, float):
        rounded = round(value, digits)
        return 0.0 if rounded == 0 else rounded
    if isinstance(value, dict):
        return {k: _round_floats(v, digits) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round_floats(v, digits) for v in value]
    return value


def report_to_json(report: Dict[str, Any]) -> str:
    """Canonical JSON: 9-decimal rounding, sorted keys, trailing newline."""
    return json.dumps(
        _round_floats(report), sort_keys=True, separators=(",", ":")
    ) + "\n"


def report_hash(report: Dict[str, Any]) -> str:
    """sha256 of the canonical JSON — the explain determinism oracle."""
    return hashlib.sha256(report_to_json(report).encode("utf-8")).hexdigest()

"""Causal spans: tree-structured timing on top of the flat tracer.

A *span* is one timed operation in an application's lifecycle — the
admission wait, the distributed schedule, one RPC attempt, one task's
execute attempt.  Spans carry a ``span_id`` and a ``parent_id`` so the
whole lifecycle forms a tree rooted at the application's ``app`` span:

    app
    ├── admission_wait
    ├── schedule
    │   └── bid_exchange (per remote site)
    │       └── rpc → rpc_attempt → retry_backoff
    ├── allocation
    │   ├── rpc → rpc_attempt            (remote table portions)
    │   └── sm_fanout                    (SM → GM → AC, per site)
    ├── channel_setup
    │   └── rpc → rpc_attempt            (per edge)
    └── task (per AFG task)
        ├── input_wait / stage_in
        ├── execute (per attempt)
        │   └── speculate_backup         (sibling race copy)
        ├── reschedule
        └── stage_out (per out-edge)

Spans are emitted as paired trace events (``span_open`` /
``span_close``) through the ordinary :class:`~repro.trace.tracer.Tracer`
— they share its clock, sequence numbers and JSONL persistence, and the
attribution engine (:mod:`repro.obs.attribution`) rebuilds the tree
from a saved trace alone.  A span that can no longer close (its owner
crashed, or the campaign ended) is *orphan-marked* with a
``span_orphan`` event; the chaos invariant I9 checks that every opened
span is closed exactly once or explicitly orphaned.

The recorder is pure bookkeeping on the virtual clock: it draws no
random numbers and never yields, so enabling it cannot perturb
scheduling decisions or timing — only the event stream grows.  The
:data:`NULL_SPANS` singleton is the disabled recorder (the default
everywhere); hot paths guard with ``if spans.enabled:`` exactly like
the tracer's null-object pattern.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, NamedTuple, Optional

from repro.trace.events import EventKind
from repro.trace.tracer import Tracer

__all__ = [
    "NULL_SPAN",
    "NULL_SPANS",
    "NullSpanRecorder",
    "SpanContext",
    "SpanKind",
    "SpanRecorder",
]


class SpanKind:
    """Namespace of well-known span kinds (plain strings)."""

    #: application root: submit → result collected
    APP = "app"
    #: queued at the admission queue, waiting for a slot
    ADMISSION_WAIT = "admission_wait"
    #: distributed scheduling (Fig. 2 steps 2-5 + placement)
    SCHEDULE = "schedule"
    #: one AFG-multicast / bid-reply exchange with a remote site
    BID_EXCHANGE = "bid_exchange"
    #: allocation-table distribution to every involved site
    ALLOCATION = "allocation"
    #: Site Manager → Group Managers → App Controllers fanout at one site
    SM_FANOUT = "sm_fanout"
    #: per-edge channel setup + acks
    CHANNEL_SETUP = "channel_setup"
    #: one AFG task, input wait → execution → output handoff
    TASK = "task"
    #: waiting on upstream dataflow edges
    INPUT_WAIT = "input_wait"
    #: staging explicit file inputs onto the assigned host
    STAGE_IN = "stage_in"
    #: one execution attempt on the assigned host(s)
    EXECUTE = "execute"
    #: pushing one produced value down its channel
    STAGE_OUT = "stage_out"
    #: post-execution refinement + result assembly
    COLLECT = "collect"
    #: one ControlPlane request (all attempts)
    RPC = "rpc"
    #: one attempt of a ControlPlane request
    RPC_ATTEMPT = "rpc_attempt"
    #: backoff pause between failed attempts (RPC or data retries)
    RETRY_BACKOFF = "retry_backoff"
    #: replacement placement + input re-staging after a failure
    RESCHEDULE = "reschedule"
    #: speculative backup copy racing the primary (sibling of execute)
    SPECULATE_BACKUP = "speculate_backup"
    #: restoring completed tasks from a checkpoint on resume
    RESUME = "resume"
    #: Group Manager deputy election window (crash → restart)
    FAILOVER = "failover"
    #: data-integrity repair episode: refetches + lineage regeneration
    #: from corruption/loss detection until resolution (DESIGN §16)
    REPAIR = "repair"
    #: replacement placement after a graceful drain / membership change
    #: evicted or invalidated the original assignment (DESIGN §17)
    DRAIN = "drain"


class SpanContext(NamedTuple):
    """An open span's identity, passed to children and to ``close``."""

    span_id: int
    kind: str
    app: str


#: the disabled context (what :data:`NULL_SPANS` hands out)
NULL_SPAN = SpanContext(-1, "", "")


class SpanRecorder:
    """Opens/closes causal spans as paired trace events.

    Span ids are a per-recorder counter, so they are deterministic for
    a deterministic simulation.  ``_open`` tracks live spans for the
    orphan-marking path; ``close`` on an id that was already closed or
    orphaned is a silent no-op (a late stage-out closing after its
    application was abandoned must not double-close).
    """

    enabled: bool = True

    def __init__(self, tracer: Tracer):
        self.tracer = tracer
        self._ids = itertools.count(1)
        #: live spans: span_id -> context
        self._open: Dict[int, SpanContext] = {}
        #: lazily-created application roots: app -> context
        self._roots: Dict[str, SpanContext] = {}
        #: ambient context stack (RPC handler-side propagation)
        self._stack: List[SpanContext] = []

    # -- core --------------------------------------------------------------

    def open(
        self,
        kind: str,
        app: str,
        parent: Optional[SpanContext] = None,
        source: str = "",
        **attrs: Any,
    ) -> SpanContext:
        """Open one span; returns the context to close it with."""
        span_id = next(self._ids)
        parent_id = (
            parent.span_id
            if parent is not None and parent.span_id >= 0
            else None
        )
        ctx = SpanContext(span_id, kind, app)
        self._open[span_id] = ctx
        self.tracer.emit(
            EventKind.SPAN_OPEN, source=source, span=kind, span_id=span_id,
            parent_id=parent_id, application=app, **attrs,
        )
        return ctx

    def close(
        self,
        ctx: SpanContext,
        source: str = "",
        status: str = "ok",
        **attrs: Any,
    ) -> None:
        """Close an open span; no-op if already closed or orphaned."""
        if ctx.span_id not in self._open:
            return
        del self._open[ctx.span_id]
        self.tracer.emit(
            EventKind.SPAN_CLOSE, source=source, span=ctx.kind,
            span_id=ctx.span_id, application=ctx.app, status=status, **attrs,
        )

    def orphan(self, ctx: SpanContext, reason: str, source: str = "") -> None:
        """Explicitly mark a span that can no longer close (crash)."""
        if ctx.span_id not in self._open:
            return
        del self._open[ctx.span_id]
        self.tracer.emit(
            EventKind.SPAN_ORPHAN, source=source, span=ctx.kind,
            span_id=ctx.span_id, application=ctx.app, reason=reason,
        )

    # -- application roots -------------------------------------------------

    def root_of(self, app: str, source: str = "") -> SpanContext:
        """The application's root span, created lazily on first use.

        Every entry point (admission queue, ``submit``, the chaos
        harness, resume) shares root management through this method, so
        whichever runs first owns creation and the rest parent to it.
        """
        ctx = self._roots.get(app)
        if ctx is None:
            ctx = self.open(SpanKind.APP, app, source=source)
            self._roots[app] = ctx
        return ctx

    def close_root(self, app: str, source: str = "", status: str = "ok",
                   **attrs: Any) -> None:
        """Close the application's root span (idempotent)."""
        ctx = self._roots.pop(app, None)
        if ctx is not None:
            self.close(ctx, source=source, status=status, **attrs)

    def abandon_app(self, app: str, reason: str, source: str = "") -> None:
        """Orphan-mark every live span of one application (crash path).

        A checkpoint-restart of the same application afterwards gets a
        fresh root from :meth:`root_of`; the attribution engine treats
        the two roots as separate windows of the same application.
        """
        self._roots.pop(app, None)
        for span_id in sorted(
            (i for i, c in self._open.items() if c.app == app), reverse=True
        ):
            self.orphan(self._open[span_id], reason, source=source)

    def orphan_all(self, reason: str, source: str = "") -> None:
        """Orphan-mark every live span (end of a chaos campaign)."""
        self._roots.clear()
        for span_id in sorted(self._open, reverse=True):
            self.orphan(self._open[span_id], reason, source=source)

    # -- ambient context (RPC handler-side propagation) --------------------

    def push(self, ctx: SpanContext) -> None:
        self._stack.append(ctx)

    def pop(self) -> None:
        self._stack.pop()

    @property
    def current(self) -> Optional[SpanContext]:
        """The innermost ambient context, or None outside any."""
        return self._stack[-1] if self._stack else None

    # -- introspection -----------------------------------------------------

    @property
    def open_spans(self) -> Dict[int, SpanContext]:
        return dict(self._open)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanRecorder({len(self._open)} open)"


class NullSpanRecorder(SpanRecorder):
    """The disabled recorder: every method a no-op, every span NULL."""

    enabled = False

    def __init__(self):
        super().__init__(tracer=None)  # type: ignore[arg-type]

    def open(self, kind, app, parent=None, source="", **attrs):
        return NULL_SPAN

    def close(self, ctx, source="", status="ok", **attrs):
        pass

    def orphan(self, ctx, reason, source=""):
        pass

    def root_of(self, app, source=""):
        return NULL_SPAN

    def close_root(self, app, source="", status="ok", **attrs):
        pass

    def abandon_app(self, app, reason, source=""):
        pass

    def orphan_all(self, reason, source=""):
        pass

    def push(self, ctx):
        pass

    def pop(self):
        pass

    @property
    def current(self) -> Optional[SpanContext]:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullSpanRecorder()"


#: shared disabled recorder — safe because it holds no state
NULL_SPANS = NullSpanRecorder()

"""Causal observability: span trees, latency attribution, profiles.

``repro.obs`` builds on the flat trace stream (:mod:`repro.trace`) to
answer *why* an application was slow, not just *what* happened:

* :mod:`repro.obs.spans` — the :class:`~repro.obs.spans.SpanRecorder`:
  tree-structured spans (span_id / parent_id / app / kind) opened and
  closed on the virtual clock and emitted as paired trace events, with
  context propagation through the ControlPlane so one application's
  lifecycle forms a single tree across Group Manager → Site Manager →
  host.
* :mod:`repro.obs.attribution` — reconstructs the span forest from a
  trace, computes the span-level critical path, and produces a
  deterministic per-app / per-task wait-state breakdown (queue,
  scheduling, staging, execution, retry, speculation) with a
  canonical-JSON report hash.
* :mod:`repro.obs.profile` — span self-time rollup exported as
  speedscope-compatible folded stacks.

Everything defaults off: :data:`~repro.obs.spans.NULL_SPANS` is the
disabled recorder, and enabling spans never changes scheduling,
timing, or RNG draws — only the event stream.
"""

from repro.obs.attribution import (
    build_forest,
    explain,
    report_hash,
    report_to_json,
    span_integrity,
)
from repro.obs.profile import folded_stacks, format_folded
from repro.obs.spans import (
    NULL_SPAN,
    NULL_SPANS,
    NullSpanRecorder,
    SpanContext,
    SpanKind,
    SpanRecorder,
)

__all__ = [
    "NULL_SPAN",
    "NULL_SPANS",
    "NullSpanRecorder",
    "SpanContext",
    "SpanKind",
    "SpanRecorder",
    "build_forest",
    "explain",
    "folded_stacks",
    "format_folded",
    "report_hash",
    "report_to_json",
    "span_integrity",
]

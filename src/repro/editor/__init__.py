"""The Application Editor (paper §2).

"The Application Editor component of VDCE is a web-based, graphical
user interface for developing parallel and distributed applications.
The end-user establishes a URL connection to the VDCE Server software
within the site (Site Manager), which runs on a VDCE Server.  After
user authentication, the Application Editor is loaded into the user's
local web browser ..."

Three layers, innermost first:

* :class:`~repro.editor.builder.AFGBuilder` — the programmatic editor:
  pick tasks from the library menus, drop them on the canvas, wire
  ports, set properties;
* :class:`~repro.editor.session.EditorSession` — an authenticated
  connection to one site (the paper's user-authentication step) that
  owns builders and submits finished applications to the runtime;
* :func:`~repro.editor.webapp.create_webapp` — the web face: a Flask
  application exposing the same operations over HTTP/JSON.
"""

from repro.editor.builder import AFGBuilder, BuilderError
from repro.editor.session import EditorSession, SessionError

__all__ = ["AFGBuilder", "BuilderError", "EditorSession", "SessionError"]

"""Editor sessions: authenticated connections to a VDCE site.

Paper §2: the user "establishes a URL connection to the VDCE Server
software within the site (Site Manager) ... After user authentication,
the Application Editor is loaded".  A session therefore carries the
authenticated account and the site it talks to, owns application
builders, and forwards submissions to the runtime with the account's
priority attached.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.afg.graph import ApplicationFlowGraph
from repro.editor.builder import AFGBuilder
from repro.repository.users import AccessDomain, UserAccount
from repro.runtime.execution import ApplicationResult
from repro.runtime.vdce_runtime import VDCERuntime
from repro.scheduler.site_scheduler import SiteScheduler

__all__ = ["CAMPUS_MAX_K", "EditorSession", "SessionError"]

_session_counter = itertools.count(1)

#: how many nearest-neighbour sites a CAMPUS-domain account may reach
CAMPUS_MAX_K = 2


class SessionError(RuntimeError):
    """Session-level misuse (closed session, unknown application, ...)."""


class EditorSession:
    """One user's editor connection to one site."""

    def __init__(
        self,
        runtime: VDCERuntime,
        site: str,
        user: str,
        password: str,
    ):
        if site not in runtime.repositories:
            raise SessionError(f"unknown site {site!r}")
        # paper §2: authentication precedes loading the editor
        self.account: UserAccount = runtime.repositories[site].users.authenticate(
            user, password
        )
        self.runtime = runtime
        self.site = site
        self.session_id = f"sess-{next(_session_counter)}"
        self._builders: Dict[str, AFGBuilder] = {}
        self._imported: Dict[str, ApplicationFlowGraph] = {}
        self._results: Dict[str, ApplicationResult] = {}
        self._open = True

    # -- editor surface -----------------------------------------------------

    def libraries(self) -> Dict[str, List[Dict[str, object]]]:
        """The menu-driven task libraries, grouped by functionality."""
        self._check_open()
        registry = self.runtime.registry
        menu: Dict[str, List[Dict[str, object]]] = {}
        for library in registry.libraries():
            menu[library] = [
                {
                    "name": sig.qualified_name,
                    "inputs": sig.n_in_ports,
                    "outputs": sig.n_out_ports,
                    "parallelizable": sig.parallelizable,
                    "description": sig.description,
                }
                for sig in registry.library_entries(library)
            ]
        return menu

    def new_application(self, name: str) -> AFGBuilder:
        self._check_open()
        if name in self._builders:
            raise SessionError(f"application {name!r} already exists")
        builder = AFGBuilder(name, registry=self.runtime.registry)
        self._builders[name] = builder
        return builder

    def import_application(self, data) -> ApplicationFlowGraph:
        """Load a serialised AFG (the editor's open-file operation).

        ``data`` is the dict produced by
        :func:`repro.afg.serialize.afg_to_dict` (or a JSON string).
        The graph is validated against this deployment's registry and
        becomes submittable under its own name.
        """
        self._check_open()
        from repro.afg.serialize import afg_from_dict, afg_from_json
        from repro.afg.validate import validate_afg

        afg = afg_from_json(data) if isinstance(data, str) else afg_from_dict(data)
        if afg.name in self._imported:
            raise SessionError(f"application {afg.name!r} already imported")
        validate_afg(afg, registry=self.runtime.registry)
        self._imported[afg.name] = afg
        return afg

    def imported(self, name: str) -> ApplicationFlowGraph:
        try:
            return self._imported[name]
        except KeyError:
            raise SessionError(f"no imported application {name!r}") from None

    def application(self, name: str) -> AFGBuilder:
        self._check_open()
        try:
            return self._builders[name]
        except KeyError:
            raise SessionError(f"unknown application {name!r}") from None

    def applications(self) -> List[str]:
        return sorted(self._builders)

    # -- submission ---------------------------------------------------------------

    def effective_k(self, requested_k: int) -> int:
        """Clamp the federation reach by the account's access domain.

        The user-accounts 5-tuple carries an "access domain type" (§3):
        LOCAL accounts schedule on their own site only, CAMPUS accounts
        may reach the :data:`CAMPUS_MAX_K` nearest neighbours, GLOBAL
        accounts are unrestricted.
        """
        if requested_k < 0:
            raise ValueError("k must be non-negative")
        domain = self.account.access_domain
        if domain is AccessDomain.LOCAL:
            return 0
        if domain is AccessDomain.CAMPUS:
            return min(requested_k, CAMPUS_MAX_K)
        return requested_k

    def submit(
        self,
        name_or_afg,
        k: int = 2,
        execute_payloads: Optional[bool] = None,
        admission=None,
        deadline_s: Optional[float] = None,
        ttl_s: Optional[float] = None,
    ) -> ApplicationResult:
        """Build (if needed), schedule and execute an application.

        ``k`` is a request; the account's access domain caps it (see
        :meth:`effective_k`).  With ``admission`` (an
        :class:`~repro.runtime.admission.AdmissionQueue`), the
        submission goes through bounded admission under this account's
        priority — it may raise
        :class:`~repro.runtime.admission.AdmissionRejected` /
        :class:`~repro.runtime.admission.AdmissionExpired` instead of
        returning a result.  ``deadline_s``/``ttl_s`` only apply there.
        """
        self._check_open()
        if isinstance(name_or_afg, ApplicationFlowGraph):
            afg = name_or_afg
        elif name_or_afg in self._imported:
            afg = self._imported[name_or_afg]
        else:
            afg = self.application(name_or_afg).build()
        scheduler = SiteScheduler(k=self.effective_k(k), model=self.runtime.model)
        if admission is not None:
            signal = admission.submit(
                afg, self.account.user_name,
                scheduler=scheduler,
                execute_payloads=execute_payloads,
                deadline_s=deadline_s, ttl_s=ttl_s,
            )

            def waiter():
                value = yield signal
                return value

            result = self.runtime.sim.run_until_complete(
                self.runtime.sim.process(
                    waiter(), name=f"editor-submit:{afg.name}"
                )
            )
        else:
            result = self.runtime.submit(
                afg,
                scheduler,
                submit_site=self.site,
                execute_payloads=execute_payloads,
            )
        self._results[afg.name] = result
        return result

    def result(self, name: str) -> ApplicationResult:
        try:
            return self._results[name]
        except KeyError:
            raise SessionError(f"no result for application {name!r}") from None

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        self._open = False

    @property
    def is_open(self) -> bool:
        return self._open

    def _check_open(self) -> None:
        if not self._open:
            raise SessionError(f"session {self.session_id} is closed")

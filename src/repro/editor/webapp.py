"""The web face of the Application Editor: a Flask JSON API.

The paper's editor was a browser GUI loaded from the VDCE Server after
authentication; this module reproduces the protocol behind it as a REST
API (the 1997 applet's drawing surface is out of scope; every operation
it performed — menu browsing, task placement, wiring, property editing,
validation, submission — is an endpoint here).

Endpoints (all JSON):

    POST /login                      {user, password}        -> {token}
    GET  /libraries                                          -> menus
    POST /applications               {name}                  -> {application}
    GET  /applications                                        -> {applications}
    POST /applications/<app>/tasks   {task_type, id?, ...}   -> {task_id}
    POST /applications/<app>/edges   {src, dst, ports, size} -> {ok}
    POST /applications/<app>/files   {task, port, path, size}-> {ok}
    PATCH /applications/<app>/tasks/<task> {properties}      -> {ok}
    GET  /applications/<app>                                  -> AFG JSON
    POST /applications/<app>/validate                         -> {problems}
    POST /applications/<app>/submit  {k?}                    -> result summary
    GET  /applications/<app>/result                           -> full result
    GET  /applications/<app>/gantt                            -> text chart
    GET  /metrics                    (no auth)  -> Prometheus exposition

Authentication: the token returned by /login goes in the
``X-VDCE-Token`` header of every later request (``/metrics`` is the
standard unauthenticated scrape target).

Flask is an optional dependency (``pip install repro[web]``); importing
this module without Flask raises a clear error.
"""

from __future__ import annotations

import secrets
from typing import Dict

try:
    from flask import Flask, jsonify, request
except ImportError as _exc:  # pragma: no cover - environment without flask
    Flask = None
    _import_error = _exc

from repro.afg.serialize import afg_to_dict
from repro.afg.validate import AFGValidationError, validate_afg
from repro.editor.builder import BuilderError
from repro.editor.session import EditorSession, SessionError
from repro.repository.users import AuthenticationError, UnknownUserError
from repro.runtime.admission import AdmissionExpired, AdmissionRejected
from repro.runtime.vdce_runtime import VDCERuntime
from repro.scheduler.site_scheduler import SchedulingError

__all__ = ["create_webapp"]


def create_webapp(runtime: VDCERuntime, site: str | None = None,
                  admission=None):
    """Build the Flask app serving one site's Application Editor.

    With ``admission`` (an
    :class:`~repro.runtime.admission.AdmissionQueue`), submissions are
    routed through bounded admission: shed submissions return 429 and
    the submit JSON carries the queue's occupancy.
    """
    if Flask is None:  # pragma: no cover
        raise ImportError(
            "flask is required for the web editor; install repro[web]"
        ) from _import_error

    site = site or runtime.default_site
    app = Flask("vdce-editor")
    sessions: Dict[str, EditorSession] = {}

    def current_session() -> EditorSession:
        token = request.headers.get("X-VDCE-Token", "")
        session = sessions.get(token)
        if session is None:
            raise AuthenticationError("missing or invalid session token")
        return session

    @app.errorhandler(AuthenticationError)
    def auth_error(exc):
        return jsonify({"error": str(exc)}), 401

    @app.errorhandler(SessionError)
    @app.errorhandler(BuilderError)
    def client_error(exc):
        return jsonify({"error": str(exc)}), 400

    @app.errorhandler(AFGValidationError)
    def validation_error(exc):
        return jsonify({"error": "validation failed", "problems": exc.problems}), 422

    @app.errorhandler(KeyError)
    def missing_field(exc):
        return jsonify({"error": f"missing required field: {exc}"}), 400

    @app.errorhandler(UnknownUserError)
    def unknown_user(exc):
        # more specific than the KeyError handler above: a submission
        # under a nonexistent account is a permission problem, not a
        # malformed request
        return jsonify({"error": str(exc)}), 403

    @app.errorhandler(AdmissionRejected)
    @app.errorhandler(AdmissionExpired)
    def admission_shed(exc):
        # 429: the deployment is shedding load; retry later
        return jsonify({"error": str(exc)}), 429

    @app.errorhandler(SchedulingError)
    def scheduling_error(exc):
        # 409: the graph is valid but no resources can satisfy it
        return jsonify({"error": f"scheduling failed: {exc}"}), 409

    @app.get("/")
    def index():
        lines = [
            "VDCE Application Editor (paper section 2, over HTTP/JSON)",
            f"site: {site}",
            "",
            "POST /login {user, password}            -> {token}",
            "   pass the token as X-VDCE-Token on every other request",
            "GET  /libraries                          -> task menus",
            "POST /applications {name}",
            "POST /applications/import                <- serialised AFG",
            "GET  /applications",
            "POST /applications/<app>/tasks {task_type, ...}",
            "POST /applications/<app>/edges {src, dst, ports, size_mb}",
            "POST /applications/<app>/files {task, port, path, size_mb}",
            "PATCH /applications/<app>/tasks/<task> {properties}",
            "GET  /applications/<app>                 -> AFG JSON",
            "POST /applications/<app>/validate",
            "POST /applications/<app>/submit {k?}",
            "GET  /applications/<app>/result | /gantt | /report",
            "GET  /metrics                            -> Prometheus text",
        ]
        return "\n".join(lines), 200, {"Content-Type": "text/plain"}

    @app.get("/metrics")
    def metrics():
        from repro.metrics.export import prometheus_text

        text = prometheus_text(runtime.export_metrics())
        return text, 200, {"Content-Type": "text/plain; version=0.0.4"}

    @app.post("/login")
    def login():
        body = request.get_json(force=True)
        session = EditorSession(
            runtime, site, body.get("user", ""), body.get("password", "")
        )
        token = secrets.token_hex(16)
        sessions[token] = session
        return jsonify(
            {
                "token": token,
                "site": site,
                "user": session.account.user_name,
                "priority": session.account.priority,
                "access_domain": session.account.access_domain.value,
            }
        )

    @app.get("/libraries")
    def libraries():
        return jsonify(current_session().libraries())

    @app.post("/applications")
    def create_application():
        body = request.get_json(force=True)
        name = body.get("name", "")
        current_session().new_application(name)
        return jsonify({"application": name}), 201

    @app.get("/applications")
    def list_applications():
        return jsonify({"applications": current_session().applications()})

    @app.post("/applications/import")
    def import_application():
        body = request.get_json(force=True)
        afg = current_session().import_application(body)
        return jsonify({"application": afg.name, "tasks": len(afg)}), 201

    @app.post("/applications/<name>/tasks")
    def add_task(name):
        body = request.get_json(force=True)
        builder = current_session().application(name)
        task_id = builder.add(
            body["task_type"],
            id=body.get("id"),
            mode=body.get("mode", "sequential"),
            n_nodes=body.get("n_nodes", 1),
            preferred_machine=body.get("preferred_machine"),
            preferred_machine_type=body.get("preferred_machine_type"),
            workload_scale=body.get("workload_scale", 1.0),
            memory_mb=body.get("memory_mb", 0),
        )
        return jsonify({"task_id": task_id}), 201

    @app.post("/applications/<name>/edges")
    def add_edge(name):
        body = request.get_json(force=True)
        builder = current_session().application(name)
        builder.connect(
            body["src"],
            body["dst"],
            src_port=body.get("src_port", 0),
            dst_port=body.get("dst_port", 0),
            size_mb=body.get("size_mb"),
        )
        return jsonify({"ok": True}), 201

    @app.post("/applications/<name>/files")
    def bind_file(name):
        body = request.get_json(force=True)
        builder = current_session().application(name)
        builder.bind_file(
            body["task"], body["port"], body["path"], body["size_mb"]
        )
        return jsonify({"ok": True}), 201

    @app.delete("/applications/<name>/tasks/<task_id>")
    def delete_task(name, task_id):
        current_session().application(name).remove(task_id)
        return jsonify({"ok": True})

    @app.delete("/applications/<name>/edges")
    def delete_edge(name):
        body = request.get_json(force=True)
        current_session().application(name).disconnect(
            body["src"], body["dst"],
            src_port=body.get("src_port", 0),
            dst_port=body.get("dst_port", 0),
        )
        return jsonify({"ok": True})

    @app.patch("/applications/<name>/tasks/<task_id>")
    def edit_task(name, task_id):
        body = request.get_json(force=True)
        current_session().application(name).set_properties(task_id, **body)
        return jsonify({"ok": True})

    @app.get("/applications/<name>")
    def get_application(name):
        builder = current_session().application(name)
        return jsonify(afg_to_dict(builder.preview()))

    @app.post("/applications/<name>/validate")
    def validate(name):
        builder = current_session().application(name)
        # validate a built copy without mutating the canvas? build() is
        # idempotent over bindings, so validating in place is fine
        try:
            builder.build(validate=True)
            return jsonify({"problems": []})
        except AFGValidationError as exc:
            return jsonify({"problems": exc.problems}), 422

    @app.get("/applications/<name>/result")
    def get_result(name):
        result = current_session().result(name)
        return jsonify(result.to_dict())

    @app.get("/applications/<name>/gantt")
    def get_gantt(name):
        from repro.viz import gantt

        result = current_session().result(name)
        return gantt(result), 200, {"Content-Type": "text/plain"}

    @app.get("/applications/<name>/report")
    def get_report(name):
        from repro.viz import execution_report

        result = current_session().result(name)
        return execution_report(result), 200, {"Content-Type": "text/plain"}

    @app.post("/applications/<name>/submit")
    def submit(name):
        body = request.get_json(force=True) if request.data else {}
        session = current_session()
        result = session.submit(
            name,
            k=body.get("k", 2),
            execute_payloads=body.get("execute_payloads"),
            admission=admission,
            deadline_s=body.get("deadline_s"),
            ttl_s=body.get("ttl_s"),
        )
        payload = {
                "application": result.application,
                "scheduler": result.scheduler,
                "makespan_s": result.makespan,
                "setup_s": result.setup_time,
                "tasks": {
                    t: {
                        "site": r.site,
                        "hosts": list(r.hosts),
                        "predicted_s": r.predicted_time,
                        "measured_s": r.measured_time,
                        "attempts": r.attempts,
                        "transfer_retries": r.transfer_retries,
                        "channel_reestablishes": r.channel_reestablishes,
                    }
                    for t, r in result.records.items()
                },
                "reschedules": result.reschedules,
                "transfer_retries": result.transfer_retries,
                "channel_reestablishes": result.channel_reestablishes,
        }
        if admission is not None:
            payload["admission"] = {
                "queued": admission.queued,
                "running": admission.running,
            }
        return jsonify(payload)

    return app

"""AFGBuilder: the Application Editor's canvas, programmatically.

Mirrors the two-step process of paper §2 — "building the application
flow graph (AFG), and specifying the task properties of the
application" — with library-aware defaults: port counts come from the
task signature, edge sizes default to the producing task's declared
communication size, and dataflow input bindings are synthesised from
the wiring so the user only states what Figure 1's popup panel states.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Dict, List, Optional

from repro.afg.graph import ApplicationFlowGraph
from repro.afg.properties import (
    ComputationMode,
    FileSpec,
    InputBinding,
    TaskProperties,
)
from repro.afg.task import TaskNode
from repro.afg.validate import AFGValidationError, validate_afg
from repro.tasklib.registry import TaskRegistry, default_registry

__all__ = ["AFGBuilder", "BuilderError"]


class BuilderError(ValueError):
    """Editor misuse: unknown task types, bad wiring, bad properties."""


class AFGBuilder:
    """Fluent construction of a validated AFG."""

    def __init__(self, name: str, registry: Optional[TaskRegistry] = None):
        self.name = name
        self.registry = registry or default_registry()
        self._afg = ApplicationFlowGraph(name)
        self._auto_ids = itertools.count(1)
        #: explicit file bindings per task: task id -> {port: FileSpec}
        self._file_inputs: Dict[str, Dict[int, FileSpec]] = {}

    # -- canvas operations -------------------------------------------------

    def add(
        self,
        task_type: str,
        id: Optional[str] = None,
        mode: str = "sequential",
        n_nodes: int = 1,
        preferred_machine: Optional[str] = None,
        preferred_machine_type: Optional[str] = None,
        workload_scale: float = 1.0,
        memory_mb: int = 0,
        outputs: Optional[List[FileSpec]] = None,
    ) -> str:
        """Drop one library task on the canvas; returns its node id."""
        if not self.registry.has(task_type):
            raise BuilderError(f"unknown task type {task_type!r}")
        signature = self.registry.get(task_type)
        if id is None:
            short = task_type.split(".", 1)[1]
            id = f"{short}-{next(self._auto_ids)}"
        try:
            properties = TaskProperties(
                mode=ComputationMode(mode),
                n_nodes=n_nodes,
                preferred_machine=preferred_machine,
                preferred_machine_type=preferred_machine_type,
                workload_scale=workload_scale,
                memory_mb=memory_mb,
                outputs=tuple(outputs or ()),
            )
            node = TaskNode(
                id=id,
                task_type=task_type,
                n_in_ports=signature.n_in_ports,
                n_out_ports=signature.n_out_ports,
                properties=properties,
            )
        except ValueError as exc:
            raise BuilderError(str(exc)) from exc
        try:
            self._afg.add_task(node)
        except ValueError as exc:
            raise BuilderError(str(exc)) from exc
        return id

    def connect(
        self,
        src: str,
        dst: str,
        src_port: int = 0,
        dst_port: int = 0,
        size_mb: Optional[float] = None,
    ) -> None:
        """Wire an output port to an input port.

        ``size_mb`` defaults to the producer's declared communication
        size scaled by its workload scale — the editor knows the
        library, the user doesn't retype it.
        """
        try:
            src_node = self._afg.task(src)
        except KeyError as exc:
            raise BuilderError(str(exc)) from exc
        if size_mb is None:
            signature = self.registry.get(src_node.task_type)
            size_mb = signature.output_size_mb(src_node.properties.workload_scale)
        try:
            self._afg.connect(src, dst, src_port=src_port, dst_port=dst_port,
                              size_mb=size_mb)
        except (KeyError, ValueError) as exc:
            raise BuilderError(str(exc)) from exc

    def remove(self, task: str) -> None:
        """Delete a task (and its wiring and file bindings) from the canvas."""
        try:
            self._afg.remove_task(task)
        except KeyError as exc:
            raise BuilderError(str(exc)) from exc
        self._file_inputs.pop(task, None)

    def disconnect(self, src: str, dst: str, src_port: int = 0,
                   dst_port: int = 0) -> None:
        """Remove one wire from the canvas."""
        try:
            self._afg.disconnect(src, dst, src_port=src_port, dst_port=dst_port)
        except KeyError as exc:
            raise BuilderError(str(exc)) from exc

    def bind_file(self, task: str, port: int, path: str, size_mb: float) -> None:
        """Attach an explicit file input (Figure 1's Input: <file, SIZE=...>)."""
        try:
            node = self._afg.task(task)
        except KeyError as exc:
            raise BuilderError(str(exc)) from exc
        if port < 0 or port >= node.n_in_ports:
            raise BuilderError(
                f"task {task!r} has no input port {port} "
                f"(0..{node.n_in_ports - 1})"
            )
        if any(e.dst_port == port for e in self._afg.in_edges(task)):
            raise BuilderError(
                f"input port {port} of {task!r} is already fed by dataflow"
            )
        try:
            spec = FileSpec(path, size_mb)
        except ValueError as exc:
            raise BuilderError(str(exc)) from exc
        self._file_inputs.setdefault(task, {})[port] = spec

    def set_properties(self, task: str, **changes) -> None:
        """Edit the popup panel of an existing task."""
        try:
            node = self._afg.task(task)
        except KeyError as exc:
            raise BuilderError(str(exc)) from exc
        if "mode" in changes and isinstance(changes["mode"], str):
            changes["mode"] = ComputationMode(changes["mode"])
        try:
            self._afg.replace_task(
                replace(node, properties=replace(node.properties, **changes))
            )
        except (TypeError, ValueError) as exc:
            raise BuilderError(str(exc)) from exc

    # -- introspection ---------------------------------------------------------

    @property
    def task_ids(self) -> List[str]:
        return [t.id for t in self._afg]

    def preview(self) -> ApplicationFlowGraph:
        """The graph as wired so far (no validation, no bindings applied)."""
        return self._afg

    # -- finalisation -------------------------------------------------------------

    def build(self, validate: bool = True) -> ApplicationFlowGraph:
        """Synthesise input bindings and return the validated AFG.

        Every input port fed by an edge is bound as dataflow; ports with
        registered files get file bindings; any port left over is a
        validation error ("unconnected and has no file binding").
        """
        for node in list(self._afg):
            bindings: List[InputBinding] = []
            connected = {e.dst_port for e in self._afg.in_edges(node.id)}
            files = self._file_inputs.get(node.id, {})
            for port in range(node.n_in_ports):
                if port in connected:
                    bindings.append(InputBinding(port))
                elif port in files:
                    bindings.append(InputBinding(port, files[port]))
            self._afg.replace_task(
                replace(node, properties=replace(node.properties,
                                                 inputs=tuple(bindings)))
            )
        if validate:
            problems = validate_afg(self._afg, registry=self.registry,
                                    collect=True)
            if problems:
                raise AFGValidationError(problems)
        return self._afg

"""Declarative deployment configuration for the VDCE facade."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.sim.topology import Topology, TopologyBuilder

__all__ = ["DeploymentSpec", "HostConfig", "SiteConfig"]


@dataclass(frozen=True)
class HostConfig:
    """One machine in a deployment spec."""

    name: str
    speed: float = 1.0
    memory_mb: int = 256
    arch: str = "sparc"
    os: str = "solaris"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("host name must be non-empty")
        if self.speed <= 0:
            raise ValueError(f"host {self.name!r}: speed must be positive")
        if self.memory_mb <= 0:
            raise ValueError(f"host {self.name!r}: memory_mb must be positive")
        if not self.arch or not self.os:
            raise ValueError(f"host {self.name!r}: arch/os must be non-empty")


@dataclass(frozen=True)
class SiteConfig:
    """One site: explicit hosts, or a uniform block."""

    name: str
    hosts: Tuple[HostConfig, ...] = ()
    n_hosts: int = 0
    speed: float = 1.0
    memory_mb: int = 256
    group_size: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("site name must be non-empty")
        if not self.hosts and self.n_hosts <= 0:
            raise ValueError(f"site {self.name!r}: provide hosts or n_hosts")
        if self.hosts and self.n_hosts:
            raise ValueError(
                f"site {self.name!r}: hosts and n_hosts are mutually exclusive"
            )


@dataclass(frozen=True)
class DeploymentSpec:
    """A whole federation: sites plus LAN/WAN parameters."""

    sites: Tuple[SiteConfig, ...]
    lan_latency_s: float = 0.0005
    lan_bandwidth_mbps: float = 10.0
    wan_latency_s: float = 0.05
    wan_bandwidth_mbps: float = 1.0
    #: per-pair WAN overrides: {(site_a, site_b): (latency_s, bandwidth_mbps)}
    wan_overrides: Tuple[Tuple[str, str, float, float], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.sites:
            raise ValueError("deployment needs at least one site")
        names = [s.name for s in self.sites]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate site names: {names}")

    def build_topology(self) -> Topology:
        builder = (
            TopologyBuilder(seed=self.seed)
            .lan_defaults(self.lan_latency_s, self.lan_bandwidth_mbps)
            .wan_defaults(self.wan_latency_s, self.wan_bandwidth_mbps)
        )
        from repro.sim.host import HostSpec

        for site in self.sites:
            if site.hosts:
                builder.site(
                    site.name,
                    hosts=[
                        HostSpec(name=h.name, speed=h.speed,
                                 memory_mb=h.memory_mb, arch=h.arch, os=h.os)
                        for h in site.hosts
                    ],
                    group_size=site.group_size,
                )
            else:
                builder.site(
                    site.name,
                    n_hosts=site.n_hosts,
                    speed=site.speed,
                    memory_mb=site.memory_mb,
                    group_size=site.group_size,
                )
        for a, b, latency, bandwidth in self.wan_overrides:
            builder.wan(a, b, latency_s=latency, bandwidth_mbps=bandwidth)
        return builder.build()

"""The VDCE facade: a whole deployment behind one object.

:class:`~repro.core.vdce.VDCE` composes the simulation substrate, site
repositories, scheduler and runtime into the environment the paper
describes in §1 — "distributed sites, each of which has one or more
VDCE Servers" — with the user-facing operations: open an editor
session, submit applications, run the monitoring control plane, and
inspect results.
"""

from repro.core.config import DeploymentSpec, HostConfig, SiteConfig
from repro.core.vdce import VDCE

__all__ = ["VDCE", "DeploymentSpec", "HostConfig", "SiteConfig"]

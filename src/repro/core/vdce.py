"""VDCE: the Virtual Distributed Computing Environment, in one object."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import DeploymentSpec, SiteConfig
from repro.editor.session import EditorSession
from repro.metrics.export import (
    prometheus_text,
    registry_snapshot,
    save_snapshot,
    snapshot_hash,
)
from repro.metrics.registry import MetricsRegistry, NULL_METRICS
from repro.repository.store import SiteRepository
from repro.repository.users import AccessDomain
from repro.runtime.execution import ApplicationResult
from repro.runtime.vdce_runtime import RuntimeConfig, VDCERuntime
from repro.scheduler.prediction import PredictionModel
from repro.scheduler.site_scheduler import SiteScheduler
from repro.sim.topology import Topology
from repro.tasklib.registry import TaskRegistry, default_registry
from repro.trace.serialize import trace_hash, write_jsonl
from repro.trace.tracer import NULL_TRACER, Tracer
from repro.viz.gantt import gantt

__all__ = ["VDCE"]


class VDCE:
    """A running Virtual Distributed Computing Environment.

    Construct from a :class:`~repro.core.config.DeploymentSpec` (or use
    :meth:`standard` for a quick uniform federation), then:

    * :meth:`add_user` / :meth:`open_editor` — accounts and editor
      sessions (paper §2);
    * :meth:`submit` — schedule + execute an AFG (paper §§3-4);
    * :meth:`start_monitoring` / :meth:`advance` — run the control
      plane (paper §4.1);
    * :meth:`gantt` — the visualisation service (paper §4.2).
    """

    def __init__(
        self,
        spec: Optional[DeploymentSpec] = None,
        topology: Optional[Topology] = None,
        registry: Optional[TaskRegistry] = None,
        runtime_config: RuntimeConfig = RuntimeConfig(),
        model: Optional[PredictionModel] = None,
        default_site: Optional[str] = None,
        repositories=None,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        """``repositories`` (optional): pre-built/restored per-site
        repositories — e.g. from :meth:`load_repositories` — instead of
        bootstrapping fresh ones.  ``tracer`` (optional): a
        :class:`~repro.trace.tracer.Tracer` shared by every component;
        the default no-op tracer records nothing.  ``metrics``
        (optional): a :class:`~repro.metrics.registry.MetricsRegistry`
        shared the same way; the default no-op registry records
        nothing."""
        if (spec is None) == (topology is None):
            raise ValueError("provide exactly one of spec or topology")
        self.spec = spec
        self.topology = topology if topology is not None else spec.build_topology()
        self.registry = registry or default_registry()
        self.runtime = VDCERuntime(
            self.topology,
            repositories=repositories,
            registry=self.registry,
            config=runtime_config,
            model=model,
            default_site=default_site,
            tracer=tracer,
            metrics=metrics,
        )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def standard(
        cls,
        n_sites: int = 2,
        hosts_per_site: int = 4,
        speed: float = 1.0,
        seed: int = 0,
        **kwargs,
    ) -> "VDCE":
        """A uniform federation: ``n_sites`` sites of identical hosts."""
        spec = DeploymentSpec(
            sites=tuple(
                SiteConfig(name=f"site-{i}", n_hosts=hosts_per_site, speed=speed)
                for i in range(n_sites)
            ),
            seed=seed,
        )
        return cls(spec=spec, **kwargs)

    # -- convenience accessors ----------------------------------------------------

    @property
    def sim(self):
        return self.topology.sim

    @property
    def sites(self) -> List[str]:
        return self.topology.site_names

    def repository(self, site: Optional[str] = None) -> SiteRepository:
        return self.runtime.repositories[site or self.runtime.default_site]

    # -- accounts & editor (paper §2) ------------------------------------------------

    def add_user(
        self,
        user: str,
        password: str,
        priority: int = 1,
        access_domain: AccessDomain = AccessDomain.GLOBAL,
        sites: Optional[List[str]] = None,
    ) -> None:
        """Create an account at the given sites (default: all sites)."""
        for site in sites or self.sites:
            self.runtime.repositories[site].users.add_user(
                user, password, priority=priority, access_domain=access_domain
            )

    def open_editor(
        self,
        user: str = "admin",
        password: str = "vdce-admin",
        site: Optional[str] = None,
    ) -> EditorSession:
        return EditorSession(
            self.runtime, site or self.runtime.default_site, user, password
        )

    # -- scheduling + execution (paper §§3-4) -------------------------------------------

    def submit(
        self,
        afg,
        k: int = 2,
        site: Optional[str] = None,
        execute_payloads: Optional[bool] = None,
        scheduler: Optional[SiteScheduler] = None,
    ) -> ApplicationResult:
        scheduler = scheduler or SiteScheduler(k=k, model=self.runtime.model)
        return self.runtime.submit(
            afg,
            scheduler,
            submit_site=site,
            execute_payloads=execute_payloads,
        )

    # -- control plane (paper §4.1) ------------------------------------------------------

    def start_monitoring(self) -> None:
        self.runtime.start_monitoring()

    def advance(self, seconds: float) -> float:
        """Run the simulation forward (monitoring, workload dynamics...)."""
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        return self.sim.run(until=self.sim.now + seconds)

    # -- durable state --------------------------------------------------------

    def save_repositories(self, directory: str) -> List[str]:
        """Snapshot every site's repository to ``<dir>/<site>.json``.

        Returns the written paths.  Use :meth:`load_repositories` with a
        freshly built topology to resume a deployment's durable state
        (accounts, calibrations, constraints, last known host states).
        """
        import os

        from repro.repository.persistence import save_repository

        os.makedirs(directory, exist_ok=True)
        paths = []
        for site, repo in sorted(self.runtime.repositories.items()):
            path = os.path.join(directory, f"{site}.json")
            save_repository(repo, path)
            paths.append(path)
        return paths

    @staticmethod
    def load_repositories(directory: str) -> Dict[str, SiteRepository]:
        """Load the snapshots written by :meth:`save_repositories`."""
        import os

        from repro.repository.persistence import load_repository

        repositories: Dict[str, SiteRepository] = {}
        for entry in sorted(os.listdir(directory)):
            if entry.endswith(".json"):
                repo = load_repository(os.path.join(directory, entry))
                repositories[repo.site_name] = repo
        if not repositories:
            raise FileNotFoundError(
                f"no repository snapshots (*.json) in {directory!r}"
            )
        return repositories

    # -- services (paper §4.2) --------------------------------------------------------------

    def gantt(self, result: ApplicationResult, width: int = 72) -> str:
        return gantt(result, width=width)

    def stats(self) -> Dict[str, float]:
        return self.runtime.stats.as_dict()

    # -- observability ---------------------------------------------------------

    @property
    def tracer(self) -> Tracer:
        return self.runtime.tracer

    def save_trace(self, path: str) -> str:
        """Write the recorded trace as JSONL; returns the path."""
        return write_jsonl(self.tracer, path)

    def trace_hash(self) -> str:
        """Stable content hash of the recorded trace (regression oracle)."""
        return trace_hash(self.tracer)

    @property
    def metrics(self) -> MetricsRegistry:
        return self.runtime.metrics

    def metrics_snapshot(self) -> dict:
        """Export end-of-run stats into the registry and snapshot it."""
        return registry_snapshot(self.runtime.export_metrics())

    def save_metrics(self, path: str) -> str:
        """Write the metrics snapshot as canonical JSON; returns the path."""
        save_snapshot(self.runtime.export_metrics(), path)
        return path

    def metrics_hash(self) -> str:
        """Stable content hash of the snapshot (trace_hash's counterpart)."""
        return snapshot_hash(self.metrics_snapshot())

    def prometheus_metrics(self) -> str:
        """The registry in Prometheus text exposition format."""
        return prometheus_text(self.runtime.export_metrics())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VDCE(sites={self.sites}, hosts={len(self.topology.all_hosts)}, "
            f"t={self.sim.now:.2f})"
        )

"""Structured event tracing across the VDCE stack.

The paper's Resource Controller is built on continuous measurement
(Monitor daemons, echo packets, significant-change filtering); this
package is the reproduction's counterpart for *observability*: every
interesting runtime action — task lifecycle, schedule decisions,
monitor reports, echo/failure/recovery, channel setup, data transfers
— can be recorded as a typed, timestamped event.

Because the simulation kernel is fully deterministic, a trace is also a
regression oracle: two same-seed runs produce byte-identical canonical
traces, and :func:`~repro.trace.serialize.trace_hash` reduces that to
one comparable string.  The default tracer everywhere is the no-op
:data:`~repro.trace.tracer.NULL_TRACER`, so instrumentation costs one
attribute check when disabled.
"""

from repro.trace.events import EventKind, KNOWN_KINDS, TraceEvent
from repro.trace.serialize import (
    diff_traces,
    event_to_json,
    events_to_jsonl,
    parse_jsonl,
    read_jsonl,
    trace_hash,
    write_jsonl,
)
from repro.trace.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "EventKind",
    "KNOWN_KINDS",
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "diff_traces",
    "event_to_json",
    "events_to_jsonl",
    "parse_jsonl",
    "read_jsonl",
    "trace_hash",
    "write_jsonl",
]

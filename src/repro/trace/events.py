"""Typed event records for the VDCE trace stream.

A trace is an ordered list of :class:`TraceEvent` records.  Every event
carries the virtual time it happened at, a monotonically increasing
sequence number (the tie-breaker that makes the stream totally
ordered), a *kind* drawn from :class:`EventKind`, the component that
emitted it, and a JSON-safe payload.

The kinds mirror the paper's message classes one-to-one where a
:class:`~repro.runtime.stats.RuntimeStats` counter exists (monitor
reports, echo packets, failure notifications, channel setups, ...) so
that ``count(kind) == counter`` is a checkable invariant — the
cross-check tests rely on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["EventKind", "KNOWN_KINDS", "TraceEvent"]


class EventKind:
    """Namespace of well-known event kinds (plain strings).

    Emitters are free to use ad-hoc kinds; these are the ones the
    instrumented stack produces and the summary/cross-check tooling
    understands.
    """

    # -- kernel -----------------------------------------------------------
    PROCESS_SPAWN = "process_spawn"
    PROCESS_FINISH = "process_finish"
    PROCESS_FAIL = "process_fail"

    # -- monitoring / control plane (paper §4.1) --------------------------
    MONITOR_REPORT = "monitor_report"
    WORKLOAD_FORWARD = "workload_forward"
    WORKLOAD_SUPPRESS = "workload_suppress"
    ECHO = "echo"
    FAILURE_NOTIFICATION = "failure_notification"
    RECOVERY_NOTIFICATION = "recovery_notification"
    LOAD_CANCEL = "load_cancel"

    # -- scheduling (paper §3) --------------------------------------------
    AFG_MULTICAST = "afg_multicast"
    BID_REPLY = "bid_reply"
    HOST_BID = "host_bid"
    SCHEDULE_DECISION = "schedule_decision"

    # -- execution / data plane (paper §4.2) ------------------------------
    ALLOCATION_MULTICAST = "allocation_multicast"
    EXECUTION_REQUEST = "execution_request"
    CHANNEL_SETUP = "channel_setup"
    CHANNEL_ACK = "channel_ack"
    STARTUP_SIGNAL = "startup_signal"
    TASK_START = "task_start"
    TASK_FINISH = "task_finish"
    DATA_TRANSFER = "data_transfer"
    FILE_STAGE = "file_stage"
    RESCHEDULE = "reschedule"
    TASKPERF_UPDATE = "taskperf_update"

    # -- faults / control-plane retries (second-generation fault model) ----
    RPC_RETRY = "rpc_retry"
    RPC_TIMEOUT = "rpc_timeout"
    SITE_UNREACHABLE = "site_unreachable"
    TRANSFER_RETRY = "transfer_retry"
    CHANNEL_REESTABLISH = "channel_reestablish"

    # -- checkpointing & control-plane failover ----------------------------
    CHECKPOINT = "checkpoint"
    RESUME = "resume"
    FAILOVER = "failover"
    MANAGER_CRASH = "manager_crash"
    MANAGER_RECOVER = "manager_recover"

    # -- straggler defense (performance-fault model) ------------------------
    SUSPECT = "suspect"
    TRUST = "trust"
    SPECULATE = "speculate"
    SPECULATE_WIN = "speculate_win"
    SPECULATE_CANCEL = "speculate_cancel"
    QUARANTINE = "quarantine"
    PROBATION = "probation"

    # -- overload protection (admission, brownout, circuit breakers) -------
    SHED = "shed"
    BROWNOUT = "brownout"
    SITE_OVERLOADED = "site_overloaded"
    BREAKER_OPEN = "breaker_open"
    BREAKER_HALF_OPEN = "breaker_half_open"
    BREAKER_CLOSE = "breaker_close"

    # -- data integrity & repair (corruption fault model) ------------------
    CORRUPT_DETECTED = "corrupt_detected"
    ARTIFACT_LOST = "artifact_lost"
    REFETCH = "refetch"
    REGENERATE = "regenerate"
    POISON = "poison"

    # -- elastic membership (host churn) -----------------------------------
    HOST_JOIN = "host_join"
    HOST_DRAIN = "host_drain"
    HOST_DEPART = "host_depart"
    HOST_REJOIN = "host_rejoin"
    #: checkpoint resume found a frontier task bound to a departed host
    RESUME_MEMBERSHIP_WARNING = "resume_membership_warning"

    # -- spans (timed operations) -----------------------------------------
    SPAN_BEGIN = "span_begin"
    SPAN_END = "span_end"

    # -- causal spans (tree-structured, repro.obs) -------------------------
    SPAN_OPEN = "span_open"
    SPAN_CLOSE = "span_close"
    SPAN_ORPHAN = "span_orphan"


KNOWN_KINDS = frozenset(
    value
    for name, value in vars(EventKind).items()
    if not name.startswith("_") and isinstance(value, str)
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record."""

    #: virtual time (simulated runs) or caller-clock time (real runs)
    time: float
    #: total order over the stream; unique within one trace
    seq: int
    #: event kind, usually one of :class:`EventKind`
    kind: str
    #: emitting component, e.g. ``"monitor:s0-h01"`` or ``"app:solver"``
    source: str = ""
    #: JSON-safe payload
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (the JSONL wire format)."""
        return {
            "time": self.time,
            "seq": self.seq,
            "kind": self.kind,
            "source": self.source,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceEvent":
        return cls(
            time=float(payload["time"]),
            seq=int(payload["seq"]),
            kind=str(payload["kind"]),
            source=str(payload.get("source", "")),
            data=dict(payload.get("data", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent(t={self.time:.6g}, #{self.seq}, {self.kind!r})"

"""Trace persistence: JSONL export/import, canonical hashing, diffing.

The wire format is one JSON object per line (``TraceEvent.to_dict``).
The *canonical* form — sorted keys, minimal separators — is what the
content hash is computed over, so the hash is a function of the trace's
information only, never of incidental formatting.  Because the
simulation kernel is fully deterministic, two same-seed runs produce
byte-identical canonical traces, which makes :func:`trace_hash` an
exact, cheap regression oracle.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, List, Sequence, Union

from repro.trace.events import TraceEvent
from repro.trace.tracer import Tracer

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "diff_traces",
    "event_to_json",
    "events_to_jsonl",
    "parse_jsonl",
    "read_jsonl",
    "trace_hash",
    "write_jsonl",
]

#: version of the on-disk JSONL layout.  Bump when an event's shape
#: changes incompatibly; readers fail loudly on a mismatch instead of
#: silently misinterpreting old files.
TRACE_SCHEMA_VERSION = 1

TraceLike = Union[Tracer, Sequence[TraceEvent]]


def _events_of(trace: TraceLike) -> List[TraceEvent]:
    if isinstance(trace, Tracer):
        return trace.events()
    return list(trace)


def event_to_json(event: TraceEvent) -> str:
    """Canonical single-line JSON for one event."""
    return json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))


def events_to_jsonl(trace: TraceLike) -> str:
    """The whole trace as canonical JSONL (trailing newline included).

    The first line is a schema header (``{"trace_header": ...}``);
    :func:`trace_hash` is computed over the events only, so adding or
    bumping the header never changes a trace's identity.
    """
    header = json.dumps(
        {"trace_header": {"schema_version": TRACE_SCHEMA_VERSION}},
        sort_keys=True, separators=(",", ":"),
    )
    lines = [header] + [event_to_json(e) for e in _events_of(trace)]
    return "\n".join(lines) + "\n"


def write_jsonl(trace: TraceLike, path: str) -> str:
    """Write the trace to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(events_to_jsonl(trace))
    return path


def parse_jsonl(text: str) -> List[TraceEvent]:
    """Parse JSONL text back into events (blank lines ignored).

    A leading schema header is validated and stripped: an unknown
    ``schema_version`` raises :class:`ValueError` rather than letting
    analysis tools silently misread the file.  Headerless files (from
    before the header existed) still parse.
    """
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"bad trace line {lineno}: {exc}") from exc
        if isinstance(payload, dict) and "trace_header" in payload:
            version = payload["trace_header"].get("schema_version")
            if version != TRACE_SCHEMA_VERSION:
                raise ValueError(
                    f"trace schema_version {version!r} is not supported "
                    f"(this build reads version {TRACE_SCHEMA_VERSION})"
                )
            continue
        try:
            events.append(TraceEvent.from_dict(payload))
        except (ValueError, KeyError) as exc:
            raise ValueError(f"bad trace line {lineno}: {exc}") from exc
    return events


def read_jsonl(path: str) -> List[TraceEvent]:
    with open(path, "r", encoding="utf-8") as fh:
        return parse_jsonl(fh.read())


def trace_hash(trace: TraceLike) -> str:
    """SHA-256 over the canonical JSONL — the trace's stable identity."""
    digest = hashlib.sha256()
    for event in _events_of(trace):
        digest.update(event_to_json(event).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def diff_traces(a: TraceLike, b: TraceLike, limit: int = 10) -> List[str]:
    """Human-readable first differences between two traces.

    Returns an empty list when the traces are identical.  The intended
    workflow for debugging a scheduling change: capture a trace before
    and after, then read where the event streams first diverge.
    """
    events_a, events_b = _events_of(a), _events_of(b)
    differences: List[str] = []
    for index, (ea, eb) in enumerate(zip(events_a, events_b)):
        if len(differences) >= limit:
            break
        if event_to_json(ea) != event_to_json(eb):
            differences.append(
                f"event {index}: "
                f"a=(t={ea.time:.6g} {ea.kind} {ea.source} {ea.data}) "
                f"b=(t={eb.time:.6g} {eb.kind} {eb.source} {eb.data})"
            )
    if len(events_a) != len(events_b) and len(differences) < limit:
        differences.append(
            f"length: a has {len(events_a)} events, b has {len(events_b)}"
        )
    return differences

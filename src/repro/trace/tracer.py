"""The Tracer: structured event recording with span support.

Two implementations share one interface:

* :class:`Tracer` — records :class:`~repro.trace.events.TraceEvent`
  objects in memory, stamps them with a caller-supplied clock (the
  simulator binds its virtual clock via :meth:`bind_clock`), and
  supports *spans* for timed operations (scheduling, channel setup,
  execution phases).
* :class:`NullTracer` — the default everywhere; every method is a
  no-op so the instrumented hot paths cost one attribute check when
  tracing is disabled.  Emit sites that build non-trivial payloads
  guard with ``if tracer.enabled:`` to avoid even the argument
  packing.

The module-level :data:`NULL_TRACER` singleton is the canonical
disabled tracer; identity comparison against it is allowed but the
``enabled`` flag is the supported switch.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.trace.events import EventKind, TraceEvent

__all__ = ["NULL_TRACER", "NullTracer", "Tracer"]


def _jsonify(value: Any) -> Any:
    """Coerce a payload value to something ``json.dumps`` accepts.

    numpy scalars become Python scalars, tuples/sets become lists, and
    mappings are converted recursively — so emit sites can pass
    whatever they have on hand without thinking about the wire format.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonify(v) for v in value)
    return str(value)


class Tracer:
    """In-memory structured event recorder.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time.  Simulated
        deployments bind the virtual clock (``lambda: sim.now``) via
        :meth:`bind_clock`; the real-socket Data Manager passes
        ``time.monotonic``.  Defaults to a constant 0.0 until bound.
    """

    enabled: bool = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        self._seq = itertools.count()
        self._span_ids = itertools.count()
        self._events: List[TraceEvent] = []
        #: open spans: span_id -> (name, start time)
        self._open_spans: Dict[int, Tuple[str, float]] = {}

    # -- clock -------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a (new) time source."""
        self._clock = clock

    @property
    def now(self) -> float:
        return float(self._clock())

    # -- recording ---------------------------------------------------------

    def emit(self, kind: str, source: str = "", **data: Any) -> TraceEvent:
        """Record one event at the current clock reading."""
        event = TraceEvent(
            time=self.now,
            seq=next(self._seq),
            kind=kind,
            source=source,
            data={k: _jsonify(v) for k, v in data.items()},
        )
        self._events.append(event)
        return event

    # -- spans -------------------------------------------------------------

    def begin_span(self, name: str, source: str = "", **data: Any) -> int:
        """Open a timed operation; returns the span id to close it with."""
        span_id = next(self._span_ids)
        self._open_spans[span_id] = (name, self.now)
        self.emit(EventKind.SPAN_BEGIN, source=source, span=name,
                  span_id=span_id, **data)
        return span_id

    def end_span(self, span_id: int, source: str = "", **data: Any) -> None:
        """Close an open span, emitting its measured duration."""
        name, started = self._open_spans.pop(span_id)
        self.emit(EventKind.SPAN_END, source=source, span=name,
                  span_id=span_id, duration=self.now - started, **data)

    @contextmanager
    def span(self, name: str, source: str = "", **data: Any) -> Iterator[int]:
        """Context manager sugar around begin/end_span."""
        span_id = self.begin_span(name, source=source, **data)
        try:
            yield span_id
        finally:
            self.end_span(span_id)

    # -- access ------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        """Snapshot of everything recorded so far."""
        return list(self._events)

    @property
    def open_spans(self) -> Dict[int, Tuple[str, float]]:
        return dict(self._open_spans)

    def clear(self) -> None:
        """Drop recorded events (sequence numbers keep counting up)."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer({len(self._events)} events, t={self.now:.6g})"


class NullTracer(Tracer):
    """The disabled tracer: records nothing, costs (almost) nothing."""

    enabled = False

    def __init__(self):
        super().__init__()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def emit(self, kind: str, source: str = "", **data: Any) -> None:  # type: ignore[override]
        return None

    def begin_span(self, name: str, source: str = "", **data: Any) -> int:
        return -1

    def end_span(self, span_id: int, source: str = "", **data: Any) -> None:
        pass

    @contextmanager
    def span(self, name: str, source: str = "", **data: Any) -> Iterator[int]:
        yield -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullTracer()"


#: shared disabled tracer — safe because it holds no state
NULL_TRACER = NullTracer()

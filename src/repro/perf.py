"""Hot-path optimization flags (the perf flag matrix).

Every optimization that replaces a *reference* implementation with an
indexed/cached/batched one is gated by a flag here, all on by default.
The contract for a flag is strict: with the flag on or off, a run must
produce **byte-identical** ``trace_hash`` and metrics ``snapshot_hash``
— the determinism oracles from PRs 1-2 make "same behaviour, faster" a
testable property, and ``tests/perf/test_optimization_equivalence.py``
tests exactly that, per flag, across seeds.

Flags
-----

``host_index``
    :class:`~repro.repository.host_index.HostIndex` — per-site host
    tables keyed by task type, name-sorted once per repository change,
    replacing the linear scan + re-sort in
    :func:`~repro.scheduler.host_selection.candidate_hosts`.
``predict_cache``
    :class:`~repro.repository.predict_cache.PredictCache` — memoized
    ``Predict(task, R)`` keyed by the full prediction input (task type,
    scale, node count, host, reported load, available memory, in-round
    extra load), invalidated when the task-performance database changes
    (calibration updates).  Exact keys, not quantized buckets: loads
    are already piecewise-constant between monitor reports, so hit
    rates stay high *and* results stay bit-identical.
``commit_ledger``
    :class:`~repro.scheduler.host_selection.CommitmentLedger` — O(|related|)
    in-round extra-load queries plus a heap-backed ready queue,
    replacing the O(total commitments) rescan per (task, host) pair and
    the O(n) ``max`` over the ready set.
``batched_bookkeeping``
    Monitor/echo bookkeeping batched into per-tick aggregates: echo
    rounds increment stats/counters once per group tick instead of once
    per host, and monitor daemons write through pre-resolved instrument
    handles (:meth:`~repro.metrics.registry.Counter.child`) instead of
    re-resolving metric families and label sets every period.

Use :func:`use_flags` to flip flags for a scope (the equivalence tests
and the bench harness reference pass), or :func:`set_flags` for a
process-wide change.  ``REPRO_PERF=off`` in the environment starts the
process with everything disabled (the reference configuration).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import Dict, Iterator

__all__ = ["PerfFlags", "FLAGS", "flag_names", "set_flags", "use_flags"]


@dataclass(frozen=True)
class PerfFlags:
    """The perf flag matrix; all optimizations on by default."""

    host_index: bool = True
    predict_cache: bool = True
    commit_ledger: bool = True
    batched_bookkeeping: bool = True

    @classmethod
    def all_off(cls) -> "PerfFlags":
        """The reference configuration (pre-optimization code paths)."""
        return cls(**{f.name: False for f in fields(cls)})

    def as_dict(self) -> Dict[str, bool]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def flag_names() -> list:
    """The flag matrix, in declaration order."""
    return [f.name for f in fields(PerfFlags)]


def _initial() -> PerfFlags:
    if os.environ.get("REPRO_PERF", "").lower() in ("off", "0", "reference"):
        return PerfFlags.all_off()
    return PerfFlags()


#: the live flag set, read by the hot paths at call time
FLAGS: PerfFlags = _initial()


def set_flags(new_flags: PerfFlags) -> PerfFlags:
    """Replace the process-wide flag set; returns the previous one."""
    global FLAGS
    previous = FLAGS
    FLAGS = new_flags
    return previous


@contextmanager
def use_flags(**overrides: bool) -> Iterator[PerfFlags]:
    """Temporarily override flags; restores the previous set on exit.

    ``use_flags(predict_cache=False)`` flips one flag;
    ``use_flags(**PerfFlags.all_off().as_dict())`` selects the full
    reference configuration.
    """
    previous = set_flags(replace(FLAGS, **overrides))
    try:
        yield FLAGS
    finally:
        set_flags(previous)

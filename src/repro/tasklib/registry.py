"""The task registry: the editor's menu of libraries and entries."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.tasklib.base import TaskSignature

__all__ = ["TaskRegistry", "default_registry"]


class TaskRegistry:
    """Qualified-name lookup plus library grouping for the editor menus."""

    def __init__(self) -> None:
        self._by_name: Dict[str, TaskSignature] = {}

    def register(self, sig: TaskSignature) -> TaskSignature:
        key = sig.qualified_name
        if key in self._by_name:
            raise ValueError(f"task {key!r} registered twice")
        self._by_name[key] = sig
        return sig

    def register_all(self, sigs: Iterable[TaskSignature]) -> None:
        for sig in sigs:
            self.register(sig)

    def has(self, qualified_name: str) -> bool:
        return qualified_name in self._by_name

    def get(self, qualified_name: str) -> TaskSignature:
        try:
            return self._by_name[qualified_name]
        except KeyError:
            raise KeyError(f"unknown task type {qualified_name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def libraries(self) -> List[str]:
        return sorted({sig.library for sig in self._by_name.values()})

    def library_entries(self, library: str) -> List[TaskSignature]:
        """The menu for one library group (sorted by entry name)."""
        entries = [s for s in self._by_name.values() if s.library == library]
        if not entries:
            raise KeyError(f"unknown library {library!r}")
        return sorted(entries, key=lambda s: s.name)

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, qualified_name: str) -> bool:
        return self.has(qualified_name)


_default: TaskRegistry | None = None


def default_registry() -> TaskRegistry:
    """The standard VDCE palette: matrix algebra + C3I + generic libraries.

    Built lazily (and cached) so importing :mod:`repro.tasklib` stays
    cheap and library modules can import :mod:`base` freely.
    """
    global _default
    if _default is None:
        from repro.tasklib import c3i, generic, matrix, signal

        registry = TaskRegistry()
        registry.register_all(matrix.SIGNATURES)
        registry.register_all(c3i.SIGNATURES)
        registry.register_all(generic.SIGNATURES)
        registry.register_all(signal.SIGNATURES)
        _default = registry
    return _default

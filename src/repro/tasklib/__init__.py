"""Task libraries — the Application Editor's menu-driven palettes.

Paper §2: "The Application Editor provides menu-driven task libraries
that are grouped in terms of their functionality, such as the matrix
algebra library, C3I (command and control applications) library, etc."

Each library task is a :class:`~repro.tasklib.base.TaskSignature`: port
counts, a base-processor computation cost (what the task-performance
database stores), memory and communication sizes, an optional parallel
implementation model, and an actual Python callable so applications
really execute and produce verifiable results.
"""

from repro.tasklib.base import ParallelModel, TaskSignature
from repro.tasklib.registry import TaskRegistry, default_registry
from repro.tasklib import c3i, generic, matrix, signal

__all__ = [
    "ParallelModel",
    "TaskRegistry",
    "TaskSignature",
    "c3i",
    "default_registry",
    "generic",
    "matrix",
    "signal",
]

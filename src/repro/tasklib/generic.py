"""The generic library: shape-only tasks for synthetic workloads.

Random-DAG experiments (E2, E9, E10, E11) need tasks whose costs are
set per node rather than per library entry; these entries provide that
via ``workload_scale`` (cost = base_comp_size x scale) with trivial
pass-through implementations.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.tasklib.base import ParallelModel, TaskSignature

__all__ = ["SIGNATURES"]


def _source(inputs: Sequence[Any], scale: float) -> List[Any]:
    return [{"payload": "source", "scale": scale}]


def _compute(inputs: Sequence[Any], scale: float) -> List[Any]:
    return [inputs[0]]


def _split(inputs: Sequence[Any], scale: float) -> List[Any]:
    return [inputs[0], inputs[0]]


def _join(inputs: Sequence[Any], scale: float) -> List[Any]:
    return [list(inputs)]


def _merge(inputs: Sequence[Any], scale: float) -> List[Any]:
    return [list(inputs)]


def _sink(inputs: Sequence[Any], scale: float) -> List[Any]:
    return []


SIGNATURES = [
    TaskSignature(
        name="source",
        library="generic",
        n_in_ports=0,
        n_out_ports=1,
        base_comp_size=1.0,
        base_memory_mb=4,
        comm_size_mb=1.0,
        fn=_source,
        description="Entry task producing a token",
    ),
    TaskSignature(
        name="compute",
        library="generic",
        n_in_ports=1,
        n_out_ports=1,
        base_comp_size=1.0,
        base_memory_mb=8,
        comm_size_mb=1.0,
        parallel=ParallelModel(overhead=0.05),
        fn=_compute,
        description="Unit-cost compute stage (scale to size)",
    ),
    TaskSignature(
        name="split",
        library="generic",
        n_in_ports=1,
        n_out_ports=2,
        base_comp_size=0.5,
        base_memory_mb=4,
        comm_size_mb=1.0,
        fn=_split,
        description="Fan-out stage",
    ),
    TaskSignature(
        name="join",
        library="generic",
        n_in_ports=2,
        n_out_ports=1,
        base_comp_size=0.5,
        base_memory_mb=4,
        comm_size_mb=1.0,
        fn=_join,
        description="Fan-in stage",
    ),
    TaskSignature(
        name="merge",
        library="generic",
        n_in_ports=1,
        n_out_ports=1,
        base_comp_size=1.0,
        base_memory_mb=8,
        comm_size_mb=1.0,
        parallel=ParallelModel(overhead=0.05),
        fn=_merge,
        description="Variadic compute/merge stage (any fan-in)",
        variadic_inputs=True,
    ),
    TaskSignature(
        name="sink",
        library="generic",
        n_in_ports=1,
        n_out_ports=0,
        base_comp_size=0.5,
        base_memory_mb=4,
        comm_size_mb=0.0,
        fn=_sink,
        description="Exit task consuming a token",
    ),
]

"""The C3I library — command, control, communication and intelligence.

The paper's project was funded by Rome Laboratory and lists a "C3I
(command and control applications) library" as an editor palette.  The
actual Rome Lab applications are not public, so this library implements
the canonical C3I processing pipeline stages with synthetic but real
computations: sensor sweeps produce contact reports, tracking filters
smooth them, correlation fuses multi-sensor tracks, threat assessment
scores them, and a display formatter renders the picture.  DAG shapes
built from these stages (see :mod:`repro.workloads.c3i_apps`) have the
fan-in/fan-out structure that makes distributed scheduling interesting.
"""

from __future__ import annotations

from typing import Any, List, Sequence

import numpy as np

from repro.tasklib.base import ParallelModel, TaskSignature

__all__ = ["SIGNATURES", "BASE_CONTACTS"]

#: contacts per sensor sweep at workload_scale == 1.0
BASE_CONTACTS = 64


def _n_contacts(scale: float) -> int:
    return max(4, int(round(BASE_CONTACTS * scale)))


def sensor_sweep(inputs: Sequence[Any], scale: float) -> List[Any]:
    """Produce one radar sweep: rows of (x, y, vx, vy, snr)."""
    n = _n_contacts(scale)
    rng = np.random.default_rng(n)
    positions = rng.uniform(-100.0, 100.0, size=(n, 2))
    velocities = rng.uniform(-5.0, 5.0, size=(n, 2))
    snr = rng.uniform(1.0, 30.0, size=(n, 1))
    return [np.hstack([positions, velocities, snr])]


def track_filter(inputs: Sequence[Any], scale: float) -> List[Any]:
    """Alpha-beta filter pass over a sweep (smooths kinematics)."""
    sweep = np.asarray(inputs[0], dtype=float)
    alpha, beta = 0.85, 0.005
    smoothed = sweep.copy()
    predicted = sweep[:, 0:2] + sweep[:, 2:4]
    smoothed[:, 0:2] = predicted + alpha * (sweep[:, 0:2] - predicted)
    smoothed[:, 2:4] = sweep[:, 2:4] + beta * (sweep[:, 0:2] - predicted)
    return [smoothed]


def track_correlation(inputs: Sequence[Any], scale: float) -> List[Any]:
    """Fuse two sensors' track sets by nearest-neighbour gating."""
    a = np.asarray(inputs[0], dtype=float)
    b = np.asarray(inputs[1], dtype=float)
    # pairwise position distances; greedy gate at radius 25
    d = np.linalg.norm(a[:, None, 0:2] - b[None, :, 0:2], axis=2)
    fused_rows = []
    used_b: set[int] = set()
    for i in range(a.shape[0]):
        j = int(np.argmin(d[i]))
        if d[i, j] < 25.0 and j not in used_b:
            used_b.add(j)
            fused_rows.append((a[i] + b[j]) / 2.0)
        else:
            fused_rows.append(a[i])
    unmatched = [b[j] for j in range(b.shape[0]) if j not in used_b]
    fused = np.vstack(fused_rows + unmatched) if unmatched else np.vstack(fused_rows)
    return [fused]


def threat_assessment(inputs: Sequence[Any], scale: float) -> List[Any]:
    """Score tracks: closing speed toward the origin weighted by SNR."""
    tracks = np.asarray(inputs[0], dtype=float)
    positions, velocities, snr = tracks[:, 0:2], tracks[:, 2:4], tracks[:, 4]
    dist = np.linalg.norm(positions, axis=1) + 1e-9
    closing = -np.sum(positions * velocities, axis=1) / dist
    score = np.clip(closing, 0.0, None) * np.log1p(snr) / (1.0 + dist / 50.0)
    order = np.argsort(-score)
    return [np.hstack([tracks[order], score[order, None]])]


def display_format(inputs: Sequence[Any], scale: float) -> List[Any]:
    """Render the top of the threat picture as display lines."""
    assessed = np.asarray(inputs[0], dtype=float)
    lines = [
        f"track {i:03d}: pos=({row[0]:+8.2f},{row[1]:+8.2f}) threat={row[5]:6.3f}"
        for i, row in enumerate(assessed[:10])
    ]
    return ["\n".join(lines)]


def intel_archive(inputs: Sequence[Any], scale: float) -> List[Any]:
    """Summarise a threat picture into archive statistics."""
    assessed = np.asarray(inputs[0], dtype=float)
    return [
        {
            "tracks": int(assessed.shape[0]),
            "max_threat": float(assessed[:, 5].max()) if assessed.size else 0.0,
            "mean_threat": float(assessed[:, 5].mean()) if assessed.size else 0.0,
        }
    ]


SIGNATURES = [
    TaskSignature(
        name="sensor_sweep",
        library="c3i",
        n_in_ports=0,
        n_out_ports=1,
        base_comp_size=3.0,
        base_memory_mb=16,
        comm_size_mb=2.0,
        fn=sensor_sweep,
        description="Radar sweep producing contact reports",
    ),
    TaskSignature(
        name="track_filter",
        library="c3i",
        n_in_ports=1,
        n_out_ports=1,
        base_comp_size=5.0,
        base_memory_mb=24,
        comm_size_mb=2.0,
        parallel=ParallelModel(overhead=0.03),
        fn=track_filter,
        description="Alpha-beta kinematic smoothing",
    ),
    TaskSignature(
        name="track_correlation",
        library="c3i",
        n_in_ports=2,
        n_out_ports=1,
        base_comp_size=9.0,
        base_memory_mb=32,
        comm_size_mb=2.5,
        parallel=ParallelModel(overhead=0.07),
        fn=track_correlation,
        description="Multi-sensor track fusion by gating",
    ),
    TaskSignature(
        name="threat_assessment",
        library="c3i",
        n_in_ports=1,
        n_out_ports=1,
        base_comp_size=4.0,
        base_memory_mb=16,
        comm_size_mb=2.5,
        fn=threat_assessment,
        description="Threat scoring and ranking",
    ),
    TaskSignature(
        name="display_format",
        library="c3i",
        n_in_ports=1,
        n_out_ports=1,
        base_comp_size=0.5,
        base_memory_mb=8,
        comm_size_mb=0.05,
        fn=display_format,
        description="Operator display rendering",
    ),
    TaskSignature(
        name="intel_archive",
        library="c3i",
        n_in_ports=1,
        n_out_ports=1,
        base_comp_size=0.8,
        base_memory_mb=8,
        comm_size_mb=0.01,
        fn=intel_archive,
        description="Archive summary statistics",
    ),
]

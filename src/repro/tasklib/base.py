"""Task signatures: what a library entry declares about itself.

A signature carries two independent faces:

* the *cost model* — base computation size (execution time on the
  paper's base processor), memory requirement, typical output volume —
  which is what gets loaded into the task-performance database and what
  the scheduler's performance prediction consumes (paper §3);
* the *implementation* — a pure Python callable — which is what the
  runtime actually invokes, so examples compute real answers.

Keeping them separate mirrors the paper: the scheduler never inspects
the executable, only the database parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["ParallelModel", "TaskSignature"]

#: implementation callable: (inputs, workload_scale) -> list of outputs
TaskFn = Callable[[Sequence[Any], float], List[Any]]


@dataclass(frozen=True)
class ParallelModel:
    """Speedup model for a parallel task implementation on ``m`` nodes.

    Amdahl-style: ``speedup(m) = m / (1 + overhead * (m - 1))``.  With
    ``overhead = 0`` the task is embarrassingly parallel; realistic
    library entries use small positive overheads.  The host-selection
    algorithm's parallel extension (paper §3: "For parallel tasks, the
    host selection algorithm is updated to select the number of
    machines required within the site") divides predicted time by this
    speedup.
    """

    overhead: float = 0.05

    def __post_init__(self) -> None:
        if self.overhead < 0:
            raise ValueError("parallel overhead must be non-negative")

    def speedup(self, m: int) -> float:
        if m < 1:
            raise ValueError(f"node count must be >= 1, got {m}")
        return m / (1.0 + self.overhead * (m - 1))

    def per_node_work(self, total_work: float, m: int) -> float:
        """Work each of ``m`` concurrent nodes executes.

        Every node runs for ``total_work / speedup(m)`` base-processor
        seconds, so the parallel span matches the speedup model.
        """
        return total_work / self.speedup(m)


@dataclass(frozen=True)
class TaskSignature:
    """One entry of a task library."""

    name: str
    library: str
    n_in_ports: int
    n_out_ports: int
    #: execution time on the base (speed=1.0, unloaded) processor at scale 1
    base_comp_size: float
    #: resident memory requirement in MB at scale 1
    base_memory_mb: int = 16
    #: typical output volume per out port in MB at scale 1
    comm_size_mb: float = 1.0
    #: None = sequential-only implementation
    parallel: Optional[ParallelModel] = None
    fn: Optional[TaskFn] = None
    description: str = ""
    #: variadic entries accept any number of inputs >= n_in_ports
    #: (e.g. a merge node); the AFG node's declared ports are the truth
    variadic_inputs: bool = False

    def __post_init__(self) -> None:
        if not self.name or "." in self.name:
            raise ValueError(f"bad task name {self.name!r} (no dots, non-empty)")
        if not self.library:
            raise ValueError(f"task {self.name!r}: library must be non-empty")
        if self.n_in_ports < 0 or self.n_out_ports < 0:
            raise ValueError(f"task {self.name!r}: negative port count")
        if self.base_comp_size < 0:
            raise ValueError(f"task {self.name!r}: negative computation size")
        if self.base_memory_mb < 0:
            raise ValueError(f"task {self.name!r}: negative memory size")
        if self.comm_size_mb < 0:
            raise ValueError(f"task {self.name!r}: negative communication size")

    @property
    def qualified_name(self) -> str:
        """Registry key, e.g. ``matrix.lu_decomposition``."""
        return f"{self.library}.{self.name}"

    @property
    def parallelizable(self) -> bool:
        return self.parallel is not None

    # -- cost model -----------------------------------------------------------

    def comp_size(self, scale: float = 1.0) -> float:
        """Total computation size (base-processor seconds) at ``scale``."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return self.base_comp_size * scale

    def memory_mb(self, scale: float = 1.0) -> int:
        return max(1, int(math.ceil(self.base_memory_mb * scale)))

    def output_size_mb(self, scale: float = 1.0) -> float:
        return self.comm_size_mb * scale

    def span_work(self, scale: float, n_nodes: int) -> float:
        """Critical-path work of one execution slice on each of ``n_nodes``.

        For sequential runs this is the full computation size; for
        parallel runs it is the per-node share implied by the speedup
        model (every node executes this much, concurrently).
        """
        total = self.comp_size(scale)
        if n_nodes == 1:
            return total
        if self.parallel is None:
            raise ValueError(f"task {self.name!r} has no parallel implementation")
        return total / self.parallel.speedup(n_nodes)

    # -- execution -------------------------------------------------------------

    def run(self, inputs: Sequence[Any], scale: float = 1.0) -> List[Any]:
        """Invoke the implementation; validates arity both ways."""
        if self.fn is None:
            raise RuntimeError(f"task {self.qualified_name} has no implementation")
        if self.variadic_inputs:
            if len(inputs) < self.n_in_ports:
                raise ValueError(
                    f"task {self.qualified_name} expects at least "
                    f"{self.n_in_ports} inputs, got {len(inputs)}"
                )
        elif len(inputs) != self.n_in_ports:
            raise ValueError(
                f"task {self.qualified_name} expects {self.n_in_ports} inputs, "
                f"got {len(inputs)}"
            )
        outputs = self.fn(inputs, scale)
        if len(outputs) != self.n_out_ports:
            raise RuntimeError(
                f"task {self.qualified_name} produced {len(outputs)} outputs, "
                f"declared {self.n_out_ports}"
            )
        return list(outputs)

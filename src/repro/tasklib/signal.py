"""The signal-processing library — the "etc." of paper §2's library list.

The Application Editor's palettes are extensible ("task libraries that
are grouped in terms of their functionality, such as the matrix algebra
library, C3I ... library, etc.").  This library supplies the classic
radar/communications DSP chain — synthesis, filtering, spectral
analysis, detection — with real numpy/scipy implementations, sized by
``workload_scale`` (scale 1.0 = 16384 samples).
"""

from __future__ import annotations

from typing import Any, List, Sequence

import numpy as np
import scipy.signal

from repro.tasklib.base import ParallelModel, TaskSignature

__all__ = ["SIGNATURES", "BASE_SAMPLES"]

#: samples per frame at workload_scale == 1.0
BASE_SAMPLES = 16384

#: normalised frequencies of the synthetic tones (cycles/sample)
_TONES = (0.05, 0.12, 0.31)


def _n_samples(scale: float) -> int:
    return max(64, int(round(BASE_SAMPLES * scale)))


def synthesize(inputs: Sequence[Any], scale: float) -> List[Any]:
    """Generate a noisy multi-tone test signal (deterministic per size)."""
    n = _n_samples(scale)
    rng = np.random.default_rng(n)
    t = np.arange(n, dtype=float)
    clean = sum(np.sin(2.0 * np.pi * f * t) for f in _TONES)
    noisy = clean + 0.8 * rng.standard_normal(n)
    return [noisy]


def lowpass_filter(inputs: Sequence[Any], scale: float) -> List[Any]:
    """4th-order Butterworth low-pass at 0.2 cycles/sample."""
    signal = np.asarray(inputs[0], dtype=float)
    b, a = scipy.signal.butter(4, 0.4)  # 0.2 cycles/sample = 0.4 Nyquist
    return [scipy.signal.filtfilt(b, a, signal)]


def spectrum(inputs: Sequence[Any], scale: float) -> List[Any]:
    """Welch power spectral density estimate."""
    signal = np.asarray(inputs[0], dtype=float)
    nperseg = min(1024, len(signal))
    freqs, psd = scipy.signal.welch(signal, nperseg=nperseg)
    return [np.vstack([freqs, psd])]


def detect_peaks(inputs: Sequence[Any], scale: float) -> List[Any]:
    """Peak frequencies from a PSD, strongest first."""
    spec = np.asarray(inputs[0], dtype=float)
    freqs, psd = spec[0], spec[1]
    indices, _ = scipy.signal.find_peaks(psd, prominence=psd.max() * 0.05)
    order = np.argsort(-psd[indices])
    return [freqs[indices][order]]


def correlate_frames(inputs: Sequence[Any], scale: float) -> List[Any]:
    """Normalised cross-correlation peak between two frames (lag, value)."""
    a = np.asarray(inputs[0], dtype=float)
    b = np.asarray(inputs[1], dtype=float)
    a = (a - a.mean()) / (a.std() + 1e-12)
    b = (b - b.mean()) / (b.std() + 1e-12)
    corr = scipy.signal.correlate(a, b, mode="full") / min(len(a), len(b))
    lag = int(np.argmax(corr)) - (len(b) - 1)
    return [(lag, float(corr.max()))]


def decimate(inputs: Sequence[Any], scale: float) -> List[Any]:
    """8x decimation with anti-aliasing."""
    signal = np.asarray(inputs[0], dtype=float)
    return [scipy.signal.decimate(signal, 8)]


SIGNATURES = [
    TaskSignature(
        name="synthesize",
        library="signal",
        n_in_ports=0,
        n_out_ports=1,
        base_comp_size=1.5,
        base_memory_mb=8,
        comm_size_mb=0.5,
        fn=synthesize,
        description="Noisy multi-tone test signal",
    ),
    TaskSignature(
        name="lowpass_filter",
        library="signal",
        n_in_ports=1,
        n_out_ports=1,
        base_comp_size=4.0,
        base_memory_mb=16,
        comm_size_mb=0.5,
        parallel=ParallelModel(overhead=0.02),
        fn=lowpass_filter,
        description="Zero-phase Butterworth low-pass",
    ),
    TaskSignature(
        name="spectrum",
        library="signal",
        n_in_ports=1,
        n_out_ports=1,
        base_comp_size=6.0,
        base_memory_mb=24,
        comm_size_mb=0.1,
        parallel=ParallelModel(overhead=0.05),
        fn=spectrum,
        description="Welch PSD estimate",
    ),
    TaskSignature(
        name="detect_peaks",
        library="signal",
        n_in_ports=1,
        n_out_ports=1,
        base_comp_size=1.0,
        base_memory_mb=8,
        comm_size_mb=0.01,
        fn=detect_peaks,
        description="Spectral peak detection",
    ),
    TaskSignature(
        name="correlate_frames",
        library="signal",
        n_in_ports=2,
        n_out_ports=1,
        base_comp_size=8.0,
        base_memory_mb=24,
        comm_size_mb=0.01,
        parallel=ParallelModel(overhead=0.06),
        fn=correlate_frames,
        description="Cross-correlation lag estimate",
    ),
    TaskSignature(
        name="decimate",
        library="signal",
        n_in_ports=1,
        n_out_ports=1,
        base_comp_size=2.0,
        base_memory_mb=12,
        comm_size_mb=0.0625,
        fn=decimate,
        description="8x anti-aliased decimation",
    ),
]

"""The matrix algebra library — the palette behind Figure 1.

Entries are real numpy/scipy computations sized by ``workload_scale``:
scale 1.0 corresponds to a 128x128 dense system.  Base computation
sizes follow the asymptotic cost ratios of the operations (an LU
decomposition is ~n^3/3 flops, a matmul ~2 n^3, a triangular solve
~n^2) so the level-based priorities the scheduler derives from the
task-performance database are physically sensible.
"""

from __future__ import annotations

from typing import Any, List, Sequence

import numpy as np
import scipy.linalg

from repro.tasklib.base import ParallelModel, TaskSignature

__all__ = ["SIGNATURES", "BASE_N"]

#: matrix dimension at workload_scale == 1.0
BASE_N = 128


def _dim(scale: float) -> int:
    return max(2, int(round(BASE_N * scale ** (1.0 / 3.0))))


def _as_matrix(value: Any) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"expected a matrix, got ndim={arr.ndim}")
    return arr


def generate_spd(inputs: Sequence[Any], scale: float) -> List[Any]:
    """Generate a well-conditioned system (A, b); the AFG's data source."""
    n = _dim(scale)
    rng = np.random.default_rng(n)  # deterministic per problem size
    a = rng.standard_normal((n, n))
    a = a @ a.T + n * np.eye(n)  # symmetric positive definite
    b = rng.standard_normal(n)
    return [a, b]


def lu_decomposition(inputs: Sequence[Any], scale: float) -> List[Any]:
    a = _as_matrix(inputs[0])
    lu, piv = scipy.linalg.lu_factor(a)
    return [(lu, piv)]


def triangular_solve(inputs: Sequence[Any], scale: float) -> List[Any]:
    (lu, piv), b = inputs
    x = scipy.linalg.lu_solve((lu, piv), np.asarray(b, dtype=float))
    return [x]


def matrix_multiply(inputs: Sequence[Any], scale: float) -> List[Any]:
    a = _as_matrix(inputs[0])
    b = np.asarray(inputs[1], dtype=float)
    return [a @ b]


def matrix_add(inputs: Sequence[Any], scale: float) -> List[Any]:
    a = np.asarray(inputs[0], dtype=float)
    b = np.asarray(inputs[1], dtype=float)
    return [a + b]


def transpose(inputs: Sequence[Any], scale: float) -> List[Any]:
    return [_as_matrix(inputs[0]).T.copy()]


def residual_norm(inputs: Sequence[Any], scale: float) -> List[Any]:
    """||Ax - b||: the Linear Equation Solver's verification step."""
    a = _as_matrix(inputs[0])
    x = np.asarray(inputs[1], dtype=float)
    b = np.asarray(inputs[2], dtype=float)
    return [float(np.linalg.norm(a @ x - b))]


def cholesky(inputs: Sequence[Any], scale: float) -> List[Any]:
    return [np.linalg.cholesky(_as_matrix(inputs[0]))]


def qr_decomposition(inputs: Sequence[Any], scale: float) -> List[Any]:
    q, r = np.linalg.qr(_as_matrix(inputs[0]))
    return [q, r]


SIGNATURES = [
    TaskSignature(
        name="generate_system",
        library="matrix",
        n_in_ports=0,
        n_out_ports=2,
        base_comp_size=2.0,
        base_memory_mb=24,
        comm_size_mb=4.0,
        fn=generate_spd,
        description="Generate a dense SPD system (A, b)",
    ),
    TaskSignature(
        name="lu_decomposition",
        library="matrix",
        n_in_ports=1,
        n_out_ports=1,
        base_comp_size=12.0,
        base_memory_mb=32,
        comm_size_mb=4.0,
        parallel=ParallelModel(overhead=0.08),
        fn=lu_decomposition,
        description="LU factorisation with partial pivoting",
    ),
    TaskSignature(
        name="triangular_solve",
        library="matrix",
        n_in_ports=2,
        n_out_ports=1,
        base_comp_size=1.5,
        base_memory_mb=16,
        comm_size_mb=0.5,
        fn=triangular_solve,
        description="Solve LUx = b from a factorisation",
    ),
    TaskSignature(
        name="matrix_multiply",
        library="matrix",
        n_in_ports=2,
        n_out_ports=1,
        base_comp_size=20.0,
        base_memory_mb=48,
        comm_size_mb=4.0,
        parallel=ParallelModel(overhead=0.04),
        fn=matrix_multiply,
        description="Dense matrix-matrix / matrix-vector product",
    ),
    TaskSignature(
        name="matrix_add",
        library="matrix",
        n_in_ports=2,
        n_out_ports=1,
        base_comp_size=0.5,
        base_memory_mb=24,
        comm_size_mb=4.0,
        parallel=ParallelModel(overhead=0.01),
        fn=matrix_add,
        description="Elementwise matrix addition",
    ),
    TaskSignature(
        name="transpose",
        library="matrix",
        n_in_ports=1,
        n_out_ports=1,
        base_comp_size=0.3,
        base_memory_mb=24,
        comm_size_mb=4.0,
        fn=transpose,
        description="Matrix transpose",
    ),
    TaskSignature(
        name="residual_norm",
        library="matrix",
        n_in_ports=3,
        n_out_ports=1,
        base_comp_size=1.0,
        base_memory_mb=16,
        comm_size_mb=0.01,
        fn=residual_norm,
        description="Residual norm ||Ax - b|| (verification)",
    ),
    TaskSignature(
        name="cholesky",
        library="matrix",
        n_in_ports=1,
        n_out_ports=1,
        base_comp_size=6.0,
        base_memory_mb=32,
        comm_size_mb=4.0,
        parallel=ParallelModel(overhead=0.08),
        fn=cholesky,
        description="Cholesky factorisation of an SPD matrix",
    ),
    TaskSignature(
        name="qr_decomposition",
        library="matrix",
        n_in_ports=1,
        n_out_ports=2,
        base_comp_size=16.0,
        base_memory_mb=48,
        comm_size_mb=4.0,
        parallel=ParallelModel(overhead=0.10),
        fn=qr_decomposition,
        description="QR factorisation",
    ),
]

"""AFG validation: every check the Application Editor runs before submit.

The editor refuses to hand a malformed graph to the scheduler; this
module centralises those rules so the programmatic builder, the JSON
deserialiser and the web editor all enforce the same contract.
"""

from __future__ import annotations

from typing import List, Optional

from repro.afg.graph import ApplicationFlowGraph

__all__ = ["AFGValidationError", "validate_afg"]


class AFGValidationError(ValueError):
    """Raised when an AFG violates structural rules; carries all problems."""

    def __init__(self, problems: List[str]):
        super().__init__("; ".join(problems))
        self.problems = list(problems)


def validate_afg(
    afg: ApplicationFlowGraph,
    registry=None,
    collect: bool = False,
) -> List[str]:
    """Check structural validity; optionally check against a task registry.

    Returns the list of problems when ``collect=True``; otherwise raises
    :class:`AFGValidationError` if any problem exists (and returns ``[]``
    on success).

    Rules enforced:

    * non-empty graph, acyclic;
    * every *dataflow* input port has an incoming edge, every input
      port with an incoming edge is either unbound or bound as dataflow
      (an edge into a port bound to an explicit file is a conflict);
    * input ports without an edge must have an explicit file binding;
    * (with ``registry``) every ``task_type`` exists and port counts
      match the library signature.
    """
    problems: List[str] = []

    if len(afg) == 0:
        problems.append(f"AFG {afg.name!r} has no tasks")

    if len(afg) > 0 and not afg.is_acyclic():
        problems.append(f"AFG {afg.name!r} contains a cycle")

    for task in afg:
        connected_ports = {e.dst_port for e in afg.in_edges(task.id)} if task.id in afg else set()
        bound = {b.port: b for b in task.properties.inputs}
        for port in range(task.n_in_ports):
            binding = bound.get(port)
            has_edge = port in connected_ports
            if has_edge and binding is not None and not binding.is_dataflow:
                problems.append(
                    f"task {task.id!r}: input port {port} has both an incoming "
                    f"edge and an explicit file binding"
                )
            if not has_edge:
                if binding is None:
                    problems.append(
                        f"task {task.id!r}: input port {port} is unconnected "
                        f"and has no file binding"
                    )
                elif binding.is_dataflow:
                    problems.append(
                        f"task {task.id!r}: input port {port} is marked "
                        f"dataflow but no parent supplies it"
                    )

    if registry is not None:
        for task in afg:
            if not registry.has(task.task_type):
                problems.append(
                    f"task {task.id!r}: unknown task type {task.task_type!r}"
                )
                continue
            sig = registry.get(task.task_type)
            if getattr(sig, "variadic_inputs", False):
                if task.n_in_ports < sig.n_in_ports:
                    problems.append(
                        f"task {task.id!r}: {task.task_type!r} takes at "
                        f"least {sig.n_in_ports} inputs, node declares "
                        f"{task.n_in_ports}"
                    )
            elif task.n_in_ports != sig.n_in_ports:
                problems.append(
                    f"task {task.id!r}: {task.task_type!r} takes "
                    f"{sig.n_in_ports} inputs, node declares {task.n_in_ports}"
                )
            if task.n_out_ports != sig.n_out_ports:
                problems.append(
                    f"task {task.id!r}: {task.task_type!r} produces "
                    f"{sig.n_out_ports} outputs, node declares {task.n_out_ports}"
                )
            if task.properties.is_parallel and not sig.parallelizable:
                problems.append(
                    f"task {task.id!r}: {task.task_type!r} has no parallel "
                    f"implementation"
                )

    if problems and not collect:
        raise AFGValidationError(problems)
    return problems

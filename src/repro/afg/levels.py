"""Level computation — the priority metric of VDCE's list scheduling.

Paper §3: "The VDCE scheduling heuristic uses the level [4] of each
node to determine its priority.  The node (task) with a higher level
value will have a higher priority for scheduling.  The level of a node
in the graph is computed as the largest sum of computation costs along
the path from the node to an exit node.  For the computation cost, the
task (node) execution time on the base processor ... is used.  In VDCE
the level of each node of an application flow graph is determined
before the execution of the scheduling algorithm."

The cost function is supplied by the caller (normally a lookup in the
task-performance database), keeping this module a pure graph algorithm.
Note the level *includes the node's own cost* (the path from the node),
which makes it the classic "bottom level" / upward rank without
communication costs.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.afg.graph import ApplicationFlowGraph

__all__ = ["compute_levels", "priority_order"]

CostFn = Callable[[str], float]


def compute_levels(afg: ApplicationFlowGraph, cost: CostFn) -> Dict[str, float]:
    """Level of every task: its cost plus the max level of its children.

    ``cost(task_id)`` must return the task's execution time on the base
    processor.  Raises ``ValueError`` on cyclic graphs and on negative
    costs (a negative base time is always a database bug).
    """
    levels: Dict[str, float] = {}
    for task_id in reversed(afg.topological_order()):
        c = float(cost(task_id))
        if c < 0:
            raise ValueError(f"task {task_id!r}: negative computation cost {c}")
        child_best = max((levels[ch] for ch in afg.children(task_id)), default=0.0)
        levels[task_id] = c + child_best
    return levels


def priority_order(afg: ApplicationFlowGraph, cost: CostFn) -> List[str]:
    """All tasks sorted by descending level (ties: task id, for determinism).

    This is the order in which the site scheduler considers ready
    tasks; it is computed once, "before the execution of the scheduling
    algorithm".
    """
    levels = compute_levels(afg, cost)
    return sorted(levels, key=lambda t: (-levels[t], t))

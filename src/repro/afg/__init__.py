"""Application Flow Graphs (AFGs) — VDCE's application model (paper §2).

An AFG is a DAG of task nodes.  Each node names a task implementation
from a task library (:mod:`repro.tasklib`) and carries the user-set
*task properties* of Figure 1's properties window: computation mode
(sequential/parallel), number of nodes, preferred machine (type),
input/output files with sizes, with inputs supplied by parent tasks
marked as *dataflow*.  Edges connect logical output ports to input
ports and carry the data volume the runtime must move.
"""

from repro.afg.properties import (
    ComputationMode,
    FileSpec,
    InputBinding,
    TaskProperties,
)
from repro.afg.task import TaskNode
from repro.afg.graph import ApplicationFlowGraph, Edge
from repro.afg.levels import compute_levels, priority_order
from repro.afg.validate import AFGValidationError, validate_afg
from repro.afg.serialize import afg_from_dict, afg_to_dict, afg_from_json, afg_to_json

__all__ = [
    "AFGValidationError",
    "ApplicationFlowGraph",
    "ComputationMode",
    "Edge",
    "FileSpec",
    "InputBinding",
    "TaskNode",
    "TaskProperties",
    "afg_from_dict",
    "afg_from_json",
    "afg_to_dict",
    "afg_to_json",
    "compute_levels",
    "priority_order",
    "validate_afg",
]

"""The Application Flow Graph: a DAG of tasks joined port-to-port.

Building an application "can be divided into two steps: building the
application flow graph (AFG), and specifying the task properties"
(paper §2).  This module is the AFG itself; the Application Editor
(:mod:`repro.editor`) is one way to build it, and the serialisation in
:mod:`repro.afg.serialize` is what the site scheduler multicasts to
remote sites (Fig. 2, step 3).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from repro.afg.task import TaskNode

__all__ = ["ApplicationFlowGraph", "Edge"]


@dataclass(frozen=True)
class Edge:
    """A dataflow edge from ``src``'s output port to ``dst``'s input port.

    ``size_mb`` is the volume the Data Manager must move when the two
    endpoints land on different hosts — the "size of the transfer" in
    the site scheduler's transfer-time term (paper §3).
    """

    src: str
    dst: str
    src_port: int = 0
    dst_port: int = 0
    size_mb: float = 0.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-loop on task {self.src!r}")
        if self.src_port < 0 or self.dst_port < 0:
            raise ValueError(f"edge {self.src}->{self.dst}: negative port")
        if self.size_mb < 0:
            raise ValueError(f"edge {self.src}->{self.dst}: negative size")


class ApplicationFlowGraph:
    """A named DAG of :class:`TaskNode` with port-to-port edges."""

    def __init__(self, name: str = "application"):
        if not name:
            raise ValueError("application name must be non-empty")
        self.name = name
        self._tasks: Dict[str, TaskNode] = {}
        self._edges: List[Edge] = []
        self._succ: Dict[str, List[Edge]] = {}
        self._pred: Dict[str, List[Edge]] = {}
        #: bumped on any node/edge change; derived-structure caches
        #: (e.g. the scheduler's reachability sets) key on it
        self.structure_version = 0

    # -- construction ----------------------------------------------------

    def add_task(self, task: TaskNode) -> TaskNode:
        if task.id in self._tasks:
            raise ValueError(f"duplicate task id {task.id!r}")
        self._tasks[task.id] = task
        self._succ[task.id] = []
        self._pred[task.id] = []
        self.structure_version += 1
        return task

    def replace_task(self, task: TaskNode) -> TaskNode:
        """Swap in an updated node (editor property edits) keeping edges."""
        if task.id not in self._tasks:
            raise KeyError(f"unknown task {task.id!r}")
        self._tasks[task.id] = task
        return task

    def remove_task(self, task_id: str) -> TaskNode:
        """Delete a task and every edge touching it (editor delete-key)."""
        node = self.task(task_id)
        doomed = [
            e for e in self._edges if e.src == task_id or e.dst == task_id
        ]
        for edge in doomed:
            self._edges.remove(edge)
            self._succ[edge.src].remove(edge)
            self._pred[edge.dst].remove(edge)
        del self._tasks[task_id]
        del self._succ[task_id]
        del self._pred[task_id]
        self.structure_version += 1
        return node

    def disconnect(
        self, src: str, dst: str, src_port: int = 0, dst_port: int = 0
    ) -> Edge:
        """Remove one edge (both endpoints must exist)."""
        self.task(src)
        self.task(dst)
        for edge in self._succ[src]:
            if (edge.dst == dst and edge.src_port == src_port
                    and edge.dst_port == dst_port):
                self._edges.remove(edge)
                self._succ[src].remove(edge)
                self._pred[dst].remove(edge)
                self.structure_version += 1
                return edge
        raise KeyError(
            f"no edge {src!r}:{src_port} -> {dst!r}:{dst_port}"
        )

    def connect(
        self,
        src: str,
        dst: str,
        src_port: int = 0,
        dst_port: int = 0,
        size_mb: float = 0.0,
    ) -> Edge:
        """Wire an output port of ``src`` to an input port of ``dst``."""
        if src not in self._tasks:
            raise KeyError(f"unknown source task {src!r}")
        if dst not in self._tasks:
            raise KeyError(f"unknown destination task {dst!r}")
        src_node, dst_node = self._tasks[src], self._tasks[dst]
        if src_port >= src_node.n_out_ports:
            raise ValueError(
                f"task {src!r} has {src_node.n_out_ports} output ports, "
                f"no port {src_port}"
            )
        if dst_port >= dst_node.n_in_ports:
            raise ValueError(
                f"task {dst!r} has {dst_node.n_in_ports} input ports, "
                f"no port {dst_port}"
            )
        for e in self._pred[dst]:
            if e.dst_port == dst_port:
                raise ValueError(
                    f"input port {dst_port} of task {dst!r} already connected "
                    f"(from {e.src!r})"
                )
        edge = Edge(src=src, dst=dst, src_port=src_port, dst_port=dst_port,
                    size_mb=size_mb)
        self._edges.append(edge)
        self._succ[src].append(edge)
        self._pred[dst].append(edge)
        self.structure_version += 1
        return edge

    # -- queries -------------------------------------------------------------

    @property
    def tasks(self) -> Dict[str, TaskNode]:
        return dict(self._tasks)

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges)

    def task(self, task_id: str) -> TaskNode:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise KeyError(f"unknown task {task_id!r}") from None

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[TaskNode]:
        return iter(self._tasks.values())

    def out_edges(self, task_id: str) -> List[Edge]:
        return list(self._succ[self.task(task_id).id])

    def in_edges(self, task_id: str) -> List[Edge]:
        return list(self._pred[self.task(task_id).id])

    def children(self, task_id: str) -> List[str]:
        seen: List[str] = []
        for e in self._succ[self.task(task_id).id]:
            if e.dst not in seen:
                seen.append(e.dst)
        return seen

    def parents(self, task_id: str) -> List[str]:
        seen: List[str] = []
        for e in self._pred[self.task(task_id).id]:
            if e.src not in seen:
                seen.append(e.src)
        return seen

    def entry_tasks(self) -> List[str]:
        """Tasks with no parents ("entry nodes" in Fig. 2 step 6)."""
        return [t for t in self._tasks if not self._pred[t]]

    def exit_tasks(self) -> List[str]:
        return [t for t in self._tasks if not self._succ[t]]

    def requires_input_transfer(self, task_id: str) -> bool:
        """Fig. 2 step 7's test: does the task need input staged in?

        An entry task, or a task whose bound inputs are all local files
        with zero dataflow edges, "does not require input" — the site
        scheduler then places it purely on predicted execution time.
        """
        node = self.task(task_id)
        if self._pred[task_id]:
            return True
        return node.properties.total_input_size_mb() > 0

    # -- graph algorithms --------------------------------------------------

    def topological_order(self) -> List[str]:
        """Kahn's algorithm; raises on cycles; deterministic order.

        The ready set is a min-heap, so each step still removes the
        lexicographically smallest ready task (the same order the old
        sorted-list implementation produced) without re-sorting the
        whole list per step — that re-sort made wide graphs quadratic.
        """
        indeg = {t: len(self._pred[t]) for t in self._tasks}
        ready = [t for t, d in indeg.items() if d == 0]
        heapq.heapify(ready)
        order: List[str] = []
        pop, push = heapq.heappop, heapq.heappush
        while ready:
            t = pop(ready)
            order.append(t)
            for e in self._succ[t]:
                indeg[e.dst] -= 1
                if indeg[e.dst] == 0:
                    push(ready, e.dst)
        if len(order) != len(self._tasks):
            raise ValueError(f"AFG {self.name!r} contains a cycle")
        return order

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
            return True
        except ValueError:
            return False

    def edge_size_between(self, src: str, dst: str) -> float:
        """Total data volume moved from ``src`` to ``dst`` (all port pairs)."""
        return sum(e.size_mb for e in self._succ[src] if e.dst == dst)

    def to_networkx(self) -> nx.DiGraph:
        """Export for analysis/visualisation (node attrs carry the TaskNode)."""
        g = nx.DiGraph(name=self.name)
        for task in self._tasks.values():
            g.add_node(task.id, task=task)
        for e in self._edges:
            weight = g.edges[e.src, e.dst]["size_mb"] if g.has_edge(e.src, e.dst) else 0.0
            g.add_edge(e.src, e.dst, size_mb=weight + e.size_mb)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ApplicationFlowGraph({self.name!r}, tasks={len(self._tasks)}, "
            f"edges={len(self._edges)})"
        )

"""AFG (de)serialisation — the wire format of the scheduler multicast.

Fig. 2 step 3 multicasts the AFG to remote sites, and the web editor
submits graphs over HTTP; both use this JSON-dict representation.  The
round-trip is exact: ``afg_from_dict(afg_to_dict(g))`` reproduces every
node, property and edge.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.afg.graph import ApplicationFlowGraph, Edge
from repro.afg.properties import (
    ComputationMode,
    FileSpec,
    InputBinding,
    TaskProperties,
)
from repro.afg.task import TaskNode

__all__ = ["afg_from_dict", "afg_from_json", "afg_to_dict", "afg_to_json"]

_FORMAT_VERSION = 1


def _properties_to_dict(p: TaskProperties) -> Dict[str, Any]:
    return {
        "mode": p.mode.value,
        "n_nodes": p.n_nodes,
        "preferred_machine_type": p.preferred_machine_type,
        "preferred_machine": p.preferred_machine,
        "inputs": [
            {
                "port": b.port,
                "file": None
                if b.file is None
                else {"path": b.file.path, "size_mb": b.file.size_mb},
            }
            for b in p.inputs
        ],
        "outputs": [{"path": f.path, "size_mb": f.size_mb} for f in p.outputs],
        "workload_scale": p.workload_scale,
        "memory_mb": p.memory_mb,
    }


def _properties_from_dict(d: Dict[str, Any]) -> TaskProperties:
    def file_spec(fd):
        return None if fd is None else FileSpec(path=fd["path"], size_mb=fd["size_mb"])

    return TaskProperties(
        mode=ComputationMode(d.get("mode", "sequential")),
        n_nodes=d.get("n_nodes", 1),
        preferred_machine_type=d.get("preferred_machine_type"),
        preferred_machine=d.get("preferred_machine"),
        inputs=tuple(
            InputBinding(port=b["port"], file=file_spec(b.get("file")))
            for b in d.get("inputs", [])
        ),
        outputs=tuple(
            FileSpec(path=f["path"], size_mb=f["size_mb"])
            for f in d.get("outputs", [])
        ),
        workload_scale=d.get("workload_scale", 1.0),
        memory_mb=d.get("memory_mb", 0),
    )


def afg_to_dict(afg: ApplicationFlowGraph) -> Dict[str, Any]:
    return {
        "format": _FORMAT_VERSION,
        "name": afg.name,
        "tasks": [
            {
                "id": t.id,
                "task_type": t.task_type,
                "n_in_ports": t.n_in_ports,
                "n_out_ports": t.n_out_ports,
                "properties": _properties_to_dict(t.properties),
            }
            for t in afg
        ],
        "edges": [
            {
                "src": e.src,
                "dst": e.dst,
                "src_port": e.src_port,
                "dst_port": e.dst_port,
                "size_mb": e.size_mb,
            }
            for e in afg.edges
        ],
    }


def afg_from_dict(data: Dict[str, Any]) -> ApplicationFlowGraph:
    version = data.get("format", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported AFG format version {version!r}")
    afg = ApplicationFlowGraph(name=data.get("name", "application"))
    for td in data.get("tasks", []):
        afg.add_task(
            TaskNode(
                id=td["id"],
                task_type=td["task_type"],
                n_in_ports=td.get("n_in_ports", 0),
                n_out_ports=td.get("n_out_ports", 0),
                properties=_properties_from_dict(td.get("properties", {})),
            )
        )
    for ed in data.get("edges", []):
        afg.connect(
            ed["src"],
            ed["dst"],
            src_port=ed.get("src_port", 0),
            dst_port=ed.get("dst_port", 0),
            size_mb=ed.get("size_mb", 0.0),
        )
    return afg


def afg_to_json(afg: ApplicationFlowGraph, indent: int | None = None) -> str:
    return json.dumps(afg_to_dict(afg), indent=indent, sort_keys=True)


def afg_from_json(text: str) -> ApplicationFlowGraph:
    return afg_from_dict(json.loads(text))

"""Task nodes of an Application Flow Graph."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.afg.properties import TaskProperties

__all__ = ["TaskNode"]

_VALID_ID_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.")


@dataclass(frozen=True)
class TaskNode:
    """One clickable/draggable task icon of the Application Editor.

    ``task_type`` names an implementation in a task library (e.g.
    ``"matrix.lu_decomposition"``); the scheduler resolves its
    performance characteristics through the task-performance database,
    and the runtime resolves its executable through the task-constraints
    database — the node itself only identifies *what* to run and the
    user's *preferences* for running it.

    ``n_in_ports`` / ``n_out_ports`` are the "markers for logical
    ports" on the icon.
    """

    id: str
    task_type: str
    n_in_ports: int = 0
    n_out_ports: int = 0
    properties: TaskProperties = field(default_factory=TaskProperties)

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("task id must be non-empty")
        if not set(self.id) <= _VALID_ID_CHARS:
            raise ValueError(f"task id {self.id!r} contains invalid characters")
        if not self.task_type:
            raise ValueError(f"task {self.id!r}: task_type must be non-empty")
        if self.n_in_ports < 0 or self.n_out_ports < 0:
            raise ValueError(f"task {self.id!r}: negative port count")
        for binding in self.properties.inputs:
            if binding.port >= self.n_in_ports:
                raise ValueError(
                    f"task {self.id!r}: input binding for port {binding.port} "
                    f"but only {self.n_in_ports} input ports"
                )

    def with_properties(self, **changes) -> "TaskNode":
        """A copy with updated properties (editor panel edits)."""
        return replace(self, properties=replace(self.properties, **changes))

    def __str__(self) -> str:
        return f"{self.id}<{self.task_type}>"

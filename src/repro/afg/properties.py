"""Task properties: the contents of the Application Editor's popup panel.

Paper §2: "A double click on any task icon generates a popup panel that
allows the user to specify (optional) preferences such as computational
mode (sequential or parallel), input/output files, machine type, and
the number of processors to be used in a parallel implementation of a
given task.  If an input of a task is supplied by its parent tasks, the
file entry is marked as dataflow."

Figure 1 shows two concrete instances (LU-Decomposition: parallel,
2 nodes, file input with SIZE=...; Matrix-Multiplication: sequential,
1 node, preferred machine type "SUN solaris", two dataflow inputs, one
file output).  :class:`TaskProperties` captures exactly those fields.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["ComputationMode", "FileSpec", "InputBinding", "TaskProperties"]


class ComputationMode(enum.Enum):
    SEQUENTIAL = "sequential"
    PARALLEL = "parallel"


@dataclass(frozen=True)
class FileSpec:
    """A file input/output with its size (the SIZE= field of Fig. 1)."""

    path: str
    size_mb: float = 0.0

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("file path must be non-empty")
        if self.size_mb < 0:
            raise ValueError(f"file {self.path!r}: negative size")


@dataclass(frozen=True)
class InputBinding:
    """One input port's source: an explicit file or upstream dataflow.

    ``file`` is None for dataflow inputs ("the file entry is marked as
    dataflow" when a parent task supplies it).
    """

    port: int
    file: Optional[FileSpec] = None

    def __post_init__(self) -> None:
        if self.port < 0:
            raise ValueError(f"negative port index: {self.port}")

    @property
    def is_dataflow(self) -> bool:
        return self.file is None


@dataclass(frozen=True)
class TaskProperties:
    """User preferences attached to one AFG task node.

    All fields are optional preferences, as in the paper ("optional"
    is the paper's own parenthesis); ``<any>`` in Figure 1 corresponds
    to ``None`` here.
    """

    mode: ComputationMode = ComputationMode.SEQUENTIAL
    #: processors used by a parallel implementation ("Number of Nodes")
    n_nodes: int = 1
    #: e.g. "SUN solaris"; matched against HostSpec.arch/os
    preferred_machine_type: Optional[str] = None
    #: specific host name, e.g. "hunding.top.cis.syr.edu"
    preferred_machine: Optional[str] = None
    inputs: Tuple[InputBinding, ...] = ()
    outputs: Tuple[FileSpec, ...] = ()
    #: scales the library task's base computation size (problem size knob)
    workload_scale: float = 1.0
    #: resident memory the task needs (consulted by prediction)
    memory_mb: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.mode is ComputationMode.SEQUENTIAL and self.n_nodes != 1:
            raise ValueError("sequential tasks must have n_nodes == 1")
        if self.workload_scale <= 0:
            raise ValueError("workload_scale must be positive")
        if self.memory_mb < 0:
            raise ValueError("memory_mb must be non-negative")
        ports = [b.port for b in self.inputs]
        if len(set(ports)) != len(ports):
            raise ValueError(f"duplicate input port bindings: {ports}")

    @property
    def is_parallel(self) -> bool:
        return self.mode is ComputationMode.PARALLEL

    def file_inputs(self) -> Tuple[InputBinding, ...]:
        return tuple(b for b in self.inputs if not b.is_dataflow)

    def dataflow_inputs(self) -> Tuple[InputBinding, ...]:
        return tuple(b for b in self.inputs if b.is_dataflow)

    def total_input_size_mb(self) -> float:
        """Size of explicit file inputs (the scheduler's transfer-size
        parameter for tasks that stage files in)."""
        return sum(b.file.size_mb for b in self.inputs if b.file is not None)

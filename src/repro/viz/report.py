"""Composed execution reports — the visualisation service's full view.

One call renders everything an operator wants after a run: the
placement table, the Gantt chart, the phase breakdown and the
efficiency figures.  Used by ``python -m repro run --report`` and the
web editor's report endpoint.
"""

from __future__ import annotations

from repro.metrics.tables import format_table
from repro.metrics.timeline import parallel_efficiency
from repro.runtime.execution import ApplicationResult
from repro.viz.gantt import gantt

__all__ = ["execution_report"]


def execution_report(result: ApplicationResult, width: int = 72) -> str:
    """A complete plain-text report for one application run."""
    rows = []
    for task_id in sorted(result.records):
        record = result.records[task_id]
        rows.append(
            {
                "task": task_id,
                "type": record.task_type.split(".", 1)[-1],
                "site": record.site,
                "hosts": ",".join(record.hosts),
                "start_s": round(record.started_at - result.startup_at, 3),
                "run_s": round(record.measured_time, 3),
                "tries": record.attempts,
            }
        )
    sections = [
        f"=== execution report: {result.application} "
        f"(scheduler={result.scheduler}) ===",
        format_table(rows, title="placement & timing"),
        "",
        gantt(result, width=width),
        "",
        "phases:",
        f"  setup    {result.setup_time:10.4f} s  "
        f"(allocation distribution + channel setup)",
        f"  execute  {result.makespan:10.4f} s  (startup signal -> last finish)",
        f"  total    {result.total_time:10.4f} s",
        "",
        "data plane:",
        f"  transfers        {result.data_transfers}",
        f"  volume           {result.data_transferred_mb:.2f} MB",
        f"  transfer retries {result.transfer_retries}",
        f"  chan. reestabl.  {result.channel_reestablishes}",
        f"  reschedules      {result.reschedules}",
        f"  hosts used       {len(result.hosts_used())}",
        f"  parallel eff.    {parallel_efficiency(result):.2%}",
    ]
    return "\n".join(sections)

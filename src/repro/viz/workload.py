"""Workload visualisations (paper §4.2): sparklines + live recording.

:func:`workload_sparkline` renders a sampled load series;
:class:`LoadRecorder` produces those samples by periodically reading
host load averages while a simulation runs — attach it before
submitting applications, then render per-host charts afterwards.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["LoadRecorder", "workload_sparkline"]

_BLOCKS = " .:-=+*#%@"


class LoadRecorder:
    """Samples host load averages on a period while the simulation runs.

    Usage::

        recorder = LoadRecorder(env.sim, env.topology.all_hosts, period_s=1.0)
        recorder.start()
        env.submit(...)           # or env.advance(...)
        print(recorder.render())
    """

    def __init__(self, sim, hosts: Iterable, period_s: float = 1.0):
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.sim = sim
        self.hosts = list(hosts)
        if not self.hosts:
            raise ValueError("need at least one host to record")
        self.period_s = float(period_s)
        self.samples: Dict[str, List[float]] = {h.name: [] for h in self.hosts}
        self.times: List[float] = []
        self._started = False

    def start(self):
        """Spawn the sampling process (runs for the simulation's life)."""
        if self._started:
            raise RuntimeError("recorder already started")
        self._started = True

        def loop():
            from repro.sim.kernel import Timeout

            while True:
                self.times.append(self.sim.now)
                for host in self.hosts:
                    self.samples[host.name].append(host.load_average())
                yield Timeout(self.period_s)

        return self.sim.process(loop(), name="load-recorder")

    def render(self, width: int = 60) -> str:
        """One sparkline per host on a shared scale, downsampled to width."""
        peak = max(
            (max(s) for s in self.samples.values() if s), default=1.0
        )
        peak = max(peak, 1e-9)
        lines = []
        label_width = max(len(n) for n in self.samples) + 1
        for name in sorted(self.samples):
            series = self.samples[name]
            if len(series) > width:
                stride = len(series) / width
                series = [
                    max(series[int(i * stride):max(int(i * stride) + 1,
                                                   int((i + 1) * stride))])
                    for i in range(width)
                ]
            lines.append(
                workload_sparkline(series, label=f"{name:<{label_width}}",
                                   max_value=peak)
            )
        if self.times:
            lines.append(
                f"{'':<{label_width}}  t={self.times[0]:.1f}s .. "
                f"t={self.times[-1]:.1f}s ({len(self.times)} samples)"
            )
        return "\n".join(lines)


def workload_sparkline(samples: Sequence[float], label: str = "",
                       max_value: float | None = None) -> str:
    """One-line load chart: each sample becomes a density character.

    ``max_value`` fixes the scale (default: max of the samples), so
    multiple hosts can be rendered comparably.
    """
    if not samples:
        return f"{label}|" if label else "|"
    if any(s < 0 for s in samples):
        raise ValueError("samples must be non-negative")
    top = max_value if max_value is not None else max(samples)
    if top <= 0:
        body = _BLOCKS[0] * len(samples)
    else:
        body = "".join(
            _BLOCKS[min(len(_BLOCKS) - 1, int(s / top * (len(_BLOCKS) - 1)))]
            for s in samples
        )
    prefix = f"{label} " if label else ""
    return f"{prefix}|{body}| max={top:.2f}"

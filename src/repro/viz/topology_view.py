"""ASCII rendering of a deployment's topology (sites, hosts, links)."""

from __future__ import annotations

from repro.sim.topology import Topology

__all__ = ["topology_diagram"]


def topology_diagram(topology: Topology) -> str:
    """Render sites with their hosts and the WAN latency matrix."""
    lines = []
    for site_name in topology.site_names:
        site = topology.site(site_name)
        lan = topology.network.lan_link(site_name).spec
        lines.append(
            f"site {site_name}  (LAN {lan.latency_s * 1000:.2f} ms, "
            f"{lan.bandwidth_mbps:g} MB/s)"
        )
        for group in site.groups.values():
            lines.append(f"  group {group.name} (leader {group.leader.name})")
            for host in group:
                marker = "*" if host.name == site.spec.server_name else " "
                status = "up" if host.is_up() else "DOWN"
                lines.append(
                    f"   {marker}{host.name:<16} speed={host.spec.speed:<4g} "
                    f"mem={host.spec.memory_mb}MB {host.spec.arch}/"
                    f"{host.spec.os} [{status}] load={host.load_average():.2f}"
                )
    names = topology.site_names
    if len(names) > 1:
        lines.append("")
        lines.append("WAN latency (ms) / bandwidth (MB/s):")
        header = "            " + "".join(f"{n[:10]:>12}" for n in names)
        lines.append(header)
        for a in names:
            row = [f"{a[:10]:<12}"]
            for b in names:
                if a == b:
                    row.append(f"{'-':>12}")
                else:
                    spec = topology.network.wan_link(a, b).spec
                    row.append(
                        f"{spec.latency_s * 1000:.1f}/{spec.bandwidth_mbps:g}"
                        .rjust(12)
                    )
            lines.append("".join(row))
    lines.append("")
    lines.append("(* = site VDCE server)")
    return "\n".join(lines)

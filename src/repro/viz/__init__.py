"""The visualisation service (paper §4.2).

"The VDCE visualization service provides application performance and
workload visualizations."  Rendered as plain text so it works in any
terminal and in test assertions: a per-host Gantt chart of task
executions (:func:`gantt`) and a workload timeline sparkline
(:func:`workload_sparkline`).
"""

from repro.viz.gantt import gantt
from repro.viz.report import execution_report
from repro.viz.topology_view import topology_diagram
from repro.viz.workload import LoadRecorder, workload_sparkline

__all__ = [
    "LoadRecorder",
    "execution_report",
    "gantt",
    "topology_diagram",
    "workload_sparkline",
]

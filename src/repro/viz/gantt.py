"""Text Gantt charts of application executions."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.runtime.execution import ApplicationResult

__all__ = ["gantt"]


def gantt(result: ApplicationResult, width: int = 72) -> str:
    """Render one lane per host, one bar per task execution.

    Bars are labelled with the task id's first letters; overlapping
    tasks on one host (processor sharing) stack onto extra lanes.
    """
    if width < 20:
        raise ValueError("width must be >= 20")
    records = list(result.records.values())
    if not records:
        return f"{result.application}: (no tasks)"
    t0 = result.startup_at
    t1 = max(r.finished_at for r in records)
    span = max(t1 - t0, 1e-9)
    scale = (width - 1) / span

    def col(t: float) -> int:
        return max(0, min(width - 1, int((t - t0) * scale)))

    # host -> list of (start_col, end_col, label)
    by_host: Dict[str, List[Tuple[int, int, str]]] = {}
    for record in sorted(records, key=lambda r: (r.started_at, r.task_id)):
        for host in record.hosts:
            by_host.setdefault(host, []).append(
                (col(record.started_at), col(record.finished_at), record.task_id)
            )

    label_width = max(len(h) for h in by_host) + 2
    lines = [
        f"{result.application} (scheduler={result.scheduler}, "
        f"makespan={result.makespan:.3f}s)"
    ]
    for host in sorted(by_host):
        lanes: List[List[Tuple[int, int, str]]] = []
        for bar in by_host[host]:
            placed = False
            for lane in lanes:
                if all(bar[0] > b[1] or bar[1] < b[0] for b in lane):
                    lane.append(bar)
                    placed = True
                    break
            if not placed:
                lanes.append([bar])
        for lane_index, lane in enumerate(lanes):
            row = [" "] * width
            for start, end, task_id in lane:
                end = max(end, start)
                for c in range(start, end + 1):
                    row[c] = "="
                label = task_id[: max(1, end - start + 1)]
                for offset, ch in enumerate(label):
                    if start + offset <= end:
                        row[start + offset] = ch
            prefix = host if lane_index == 0 else ""
            lines.append(f"{prefix:<{label_width}}|{''.join(row)}|")
    lines.append(
        f"{'':<{label_width}} t={t0:.2f}s {'':{max(0, width - 24)}} t={t1:.2f}s"
    )
    return "\n".join(lines)

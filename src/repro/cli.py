"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``libraries`` — print the task-library menus (the editor's palettes);
* ``run <app>`` — deploy a federation, submit one of the built-in
  applications (``linear-solver``, ``figure1``, ``c3i``, ``dsp``,
  ``random-dag``) and print the placement, Gantt chart and metrics;
* ``monitor`` — run the control plane alone for a while and print the
  monitoring statistics and a load sparkline per host;
* ``metrics`` — print a metrics snapshot (from a saved ``--metrics``
  file, or a quick instrumented run) as Prometheus text or JSON;
* ``analyze <trace> [<trace2>]`` — the trace-analysis toolkit: critical
  path, per-host utilization, schedule lag; with two traces, the
  structural diff (first divergent event + per-kind count deltas);
* ``explain <trace>`` — the attribution engine: rebuild the causal span
  tree from a ``--spans`` trace (or re-run a bench scenario with spans
  on), print the per-application wait-state breakdown, critical path
  and top-k slow tasks/hosts, and hash the canonical report;
* ``experiments`` — print the experiment index (DESIGN.md §4) and the
  bench command that regenerates each one;
* ``bench`` — run the benchmark trajectory (wall time + determinism
  oracles), optionally comparing against a committed ``BENCH_*.json``;
* ``resume <dir>`` — resume an interrupted application from a
  checkpoint directory written by ``run --journal`` (optionally
  checking resume equivalence against expected output hashes);
* ``selftest`` / ``verify`` — quick end-to-end health check across all
  subsystems (failure rescheduling, checkpoint/resume, DSM, sockets);
* ``serve`` — start the Flask web editor (requires flask).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

__all__ = ["main"]

EXPERIMENTS = [
    ("E1", "Figure 1 linear equation solver", "bench_fig1_linear_solver.py"),
    ("E2", "Site scheduler vs baselines", "bench_fig2_site_scheduler.py"),
    ("E3", "Host selection within a site", "bench_fig3_host_selection.py"),
    ("E4", "k-nearest-site locality", "bench_locality_k_sites.py"),
    ("E5", "Monitoring significant-change filter", "bench_fig4_monitoring.py"),
    ("E6", "Echo-packet failure detection", "bench_failure_detection.py"),
    ("E7", "Load-threshold rescheduling", "bench_rescheduling.py"),
    ("E8", "Real-socket Data Manager", "bench_data_manager.py"),
    ("E9", "Level-priority ablation", "bench_level_priority.py"),
    ("E10", "Prediction sensitivity + calibration", "bench_prediction_sensitivity.py"),
    ("E11", "Federation scalability", "bench_scalability.py"),
    ("E12", "End-to-end phase breakdown", "bench_end_to_end.py"),
    ("E13", "Load-accounting ablation", "bench_accounting_ablation.py"),
    ("E14", "Distributed shared memory (§5)", "bench_dsm.py"),
    ("E15", "Straggler defense & speculation", "bench_speculation.py"),
]


def _build_app(name: str, scale: float, seed: int):
    from repro.workloads import (
        RandomDAGConfig,
        figure1_afg,
        linear_solver_afg,
        random_dag,
        surveillance_afg,
    )

    if name == "linear-solver":
        return linear_solver_afg(scale=scale, parallel_lu_nodes=2), True
    if name == "figure1":
        return figure1_afg(), False
    if name == "c3i":
        return surveillance_afg(n_sensors=3, scale=scale), True
    if name == "dsp":
        from repro.afg import ApplicationFlowGraph, TaskNode, TaskProperties

        afg = ApplicationFlowGraph("dsp-chain")
        chain = [
            ("synth", "signal.synthesize", 0),
            ("filt", "signal.lowpass_filter", 1),
            ("spec", "signal.spectrum", 1),
            ("peaks", "signal.detect_peaks", 1),
        ]
        prev = None
        for tid, ttype, n_in in chain:
            afg.add_task(TaskNode(id=tid, task_type=ttype, n_in_ports=n_in,
                                  n_out_ports=1,
                                  properties=TaskProperties(workload_scale=scale)))
            if prev:
                afg.connect(prev, tid, size_mb=0.25)
            prev = tid
        return afg, True
    if name == "random-dag":
        return (
            random_dag(RandomDAGConfig(n_tasks=30, width=5, mean_cost=2.0,
                                       ccr=0.4, seed=seed)),
            False,
        )
    raise SystemExit(f"unknown application {name!r} "
                     f"(try: linear-solver, figure1, c3i, dsp, random-dag)")


def cmd_libraries(args) -> int:
    from repro.tasklib import default_registry

    registry = default_registry()
    for library in registry.libraries():
        print(f"{library}:")
        for sig in registry.library_entries(library):
            par = " [parallel]" if sig.parallelizable else ""
            print(f"  {sig.qualified_name:<28} "
                  f"{sig.n_in_ports}->{sig.n_out_ports}  "
                  f"cost={sig.base_comp_size:g}{par}  {sig.description}")
    return 0


def cmd_run(args) -> int:
    from repro import VDCE
    from repro.metrics import summarize_result
    from repro.metrics.registry import NULL_METRICS, MetricsRegistry
    from repro.trace import NULL_TRACER, Tracer

    tracer = Tracer() if args.trace else NULL_TRACER
    metrics = MetricsRegistry() if args.metrics else NULL_METRICS
    kwargs = {}
    if args.spans:
        if not args.trace:
            print("error: --spans needs --trace (spans live in the trace)")
            return 1
        from repro.runtime.vdce_runtime import RuntimeConfig

        kwargs["runtime_config"] = RuntimeConfig(causal_spans=True)
    env = VDCE.standard(n_sites=args.sites, hosts_per_site=args.hosts,
                        seed=args.seed, tracer=tracer, metrics=metrics,
                        **kwargs)
    if args.monitoring:
        env.start_monitoring()
    afg, payloads = _build_app(args.application, args.scale, args.seed)
    admission_knobs = (
        args.max_queued is not None or args.deadline is not None
        or args.ttl is not None
    )
    if args.max_concurrent is None and admission_knobs:
        print("error: --max-queued/--deadline/--ttl need --max-concurrent")
        return 1
    if args.max_concurrent is not None:
        if args.journal:
            print("error: --max-concurrent cannot be combined with --journal")
            return 1
        from repro.runtime.admission import (
            AdmissionExpired,
            AdmissionPolicy,
            AdmissionQueue,
            AdmissionRejected,
        )
        from repro.scheduler import SiteScheduler

        policy = None
        if args.max_queued is not None or args.ttl is not None:
            policy = AdmissionPolicy(max_queued=args.max_queued,
                                     default_ttl_s=args.ttl)
        queue = AdmissionQueue(env.runtime,
                               max_concurrent=args.max_concurrent,
                               policy=policy)
        copies = [afg]
        for i in range(1, max(1, args.repeat)):
            copy, _ = _build_app(args.application, args.scale, args.seed)
            copy.name = f"{copy.name}#{i}"
            copies.append(copy)
        signals = [
            queue.submit(copy, "admin",
                         scheduler=SiteScheduler(k=args.k,
                                                 model=env.runtime.model),
                         execute_payloads=payloads,
                         deadline_s=args.deadline)
            for copy in copies
        ]

        def drain():
            results = []
            for copy, signal in zip(copies, signals):
                try:
                    results.append((copy.name, (yield signal)))
                except (AdmissionRejected, AdmissionExpired) as exc:
                    results.append((copy.name, exc))
            return results

        outcomes = env.sim.run_until_complete(
            env.sim.process(drain(), name="admission:batch"))
        results = [r for _, r in outcomes
                   if not isinstance(r, Exception)]
        stats = env.runtime.stats
        print(f"admission: max_concurrent={args.max_concurrent}, "
              f"{len(results)}/{len(outcomes)} application(s) admitted, "
              f"total queue wait {stats.queue_wait_s:.3f}s")
        for name in queue.admitted_order:
            print(f"  {name}: waited {stats.queue_waits[name]:.3f}s")
        for name, outcome in outcomes:
            if isinstance(outcome, Exception):
                print(f"  {name}: SHED ({outcome})")
        if not results:
            print("error: every submission was shed")
            return 1
        result = results[0]
    elif args.journal:
        from repro.runtime.checkpoint import create_checkpoint_dir, journal_path
        from repro.scheduler import SiteScheduler

        journal = create_checkpoint_dir(env, args.journal)

        def pipeline():
            table, _sched = yield from env.runtime.schedule_process(
                afg, SiteScheduler(k=args.k, model=env.runtime.model)
            )
            value = yield env.runtime.execute_process(
                afg, table, journal=journal, execute_payloads=payloads
            )
            return value

        proc = env.sim.process(pipeline(), name=f"submit:{afg.name}")
        result = env.sim.run_until_complete(proc)
        print(f"checkpoint journal: {journal_path(args.journal)} "
              f"({journal.bytes_written} bytes)")
    else:
        result = env.submit(afg, k=args.k, execute_payloads=payloads)

    print(f"application {result.application!r}: "
          f"{len(result.records)} tasks on {len(env.sites)} sites")
    for task_id in sorted(result.records):
        record = result.records[task_id]
        print(f"  {task_id:<24} {record.site:<10} {','.join(record.hosts):<24} "
              f"measured={record.measured_time:8.3f}s attempts={record.attempts}")
    summary = summarize_result(result, afg, env.repository().task_perf)
    print(f"\nmakespan={summary.makespan:.3f}s  slr={summary.slr:.3f}  "
          f"speedup={summary.speedup:.3f}  "
          f"moved={summary.data_transferred_mb:.1f}MB")
    if args.report:
        from repro.viz import execution_report

        print()
        print(execution_report(result))
    elif args.gantt:
        print()
        print(env.gantt(result))
    if result.outputs and payloads:
        print("\noutputs:")
        for task_id, values in sorted(result.outputs.items()):
            rendered = ", ".join(str(v)[:60] for v in values)
            print(f"  {task_id}: {rendered}")
    if args.trace:
        from repro.metrics import format_trace_summary

        try:
            env.save_trace(args.trace)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace}: {exc}")
            return 1
        print()
        print(format_trace_summary(tracer))
        print(f"\ntrace written to {args.trace}  "
              f"(hash {env.trace_hash()[:16]}...)")
    if args.metrics:
        try:
            env.save_metrics(args.metrics)
        except OSError as exc:
            print(f"error: cannot write metrics to {args.metrics}: {exc}")
            return 1
        print(f"metrics snapshot written to {args.metrics}  "
              f"(hash {env.metrics_hash()[:16]}...)")
    return 0


def cmd_monitor(args) -> int:
    from repro import VDCE
    from repro.metrics.registry import NULL_METRICS, MetricsRegistry
    from repro.sim.workload import OrnsteinUhlenbeckLoad, attach_generators
    from repro.viz import workload_sparkline

    metrics = MetricsRegistry() if args.metrics else NULL_METRICS
    env = VDCE.standard(n_sites=args.sites, hosts_per_site=args.hosts,
                        seed=args.seed, metrics=metrics)
    samples = {h.name: [] for h in env.topology.all_hosts}
    attach_generators(
        env.sim, env.topology.all_hosts,
        lambda: OrnsteinUhlenbeckLoad(mean=0.8, sigma=0.3, period_s=1.0),
    )
    env.start_monitoring()

    def sample():
        for host in env.topology.all_hosts:
            samples[host.name].append(host.load_average())

    step = max(1.0, args.duration / 60.0)
    t = step
    while t <= args.duration:
        env.sim.call_at(t, sample)
        t += step
    env.advance(args.duration)

    peak = max((max(s) for s in samples.values() if s), default=1.0)
    for name in sorted(samples):
        print(workload_sparkline(samples[name], label=f"{name:<12}",
                                 max_value=peak))
    print("\nmonitoring statistics:")
    for key, value in env.stats().items():
        if value:
            print(f"  {key:<26} {value}")
    if args.metrics:
        try:
            env.save_metrics(args.metrics)
        except OSError as exc:
            print(f"error: cannot write metrics to {args.metrics}: {exc}")
            return 1
        print(f"\nmetrics snapshot written to {args.metrics}  "
              f"(hash {env.metrics_hash()[:16]}...)")
    return 0


def cmd_metrics(args) -> int:
    """Print a metrics snapshot as Prometheus text or canonical JSON."""
    from repro.metrics.export import (
        load_snapshot,
        prometheus_from_snapshot,
        snapshot_to_json,
    )

    if args.snapshot:
        try:
            snapshot = load_snapshot(args.snapshot)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load snapshot {args.snapshot}: {exc}")
            return 1
    else:
        # no file: run a small instrumented deployment and export that
        from repro import VDCE
        from repro.metrics.registry import MetricsRegistry
        from repro.workloads import linear_solver_afg

        env = VDCE.standard(n_sites=args.sites, hosts_per_site=args.hosts,
                            seed=args.seed, metrics=MetricsRegistry())
        env.start_monitoring()
        env.submit(linear_solver_afg(scale=0.15), k=1)
        env.advance(5.0)
        snapshot = env.metrics_snapshot()

    if args.format == "json":
        print(snapshot_to_json(snapshot), end="")
    else:
        print(prometheus_from_snapshot(snapshot), end="")
    return 0


def cmd_analyze(args) -> int:
    """Analyze one saved trace, or structurally diff two."""
    from repro.metrics.analysis import (
        format_analysis,
        format_structural_diff,
        structural_diff,
    )
    from repro.trace.serialize import read_jsonl

    try:
        events = read_jsonl(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.trace}: {exc}")
        return 1
    if args.trace2 is None:
        print(format_analysis(events, title=f"trace analysis — {args.trace}"))
        return 0
    try:
        events2 = read_jsonl(args.trace2)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.trace2}: {exc}")
        return 1
    print(f"a: {args.trace}\nb: {args.trace2}")
    print(format_structural_diff(events, events2))
    return 0 if structural_diff(events, events2)["identical"] else 2


def _import_harness():
    import os

    try:
        from benchmarks import harness
    except ImportError:
        sys.path.insert(0, os.getcwd())
        from benchmarks import harness
    return harness


def cmd_explain(args) -> int:
    """Attribute an application's wall time from its causal span trace."""
    import json as _json

    from repro.obs.attribution import (
        CATEGORIES, explain, report_hash, report_to_json,
    )
    from repro.obs.profile import folded_stacks, format_folded
    from repro.trace.serialize import read_jsonl

    if (args.trace is None) == (args.scenario is None):
        print("error: give a trace file OR --scenario, not both/neither")
        return 1
    if args.scenario is not None:
        try:
            harness = _import_harness()
        except ImportError:
            print("error: cannot import benchmarks.harness — run 'repro "
                  "explain --scenario' from the repository root")
            return 1
        if args.scenario not in harness.SCENARIOS:
            print(f"error: unknown scenario {args.scenario!r} "
                  f"(try: {', '.join(harness.SCENARIO_ORDER)})")
            return 1
        events = harness.run_traced(args.scenario, causal_spans=True)
        source = f"scenario {args.scenario}"
    else:
        try:
            events = read_jsonl(args.trace)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read trace {args.trace}: {exc}")
            return 1
        source = args.trace

    report = explain(events, top=args.top)
    if not report["apps"]:
        print(f"no causal spans in {source} — record the trace with "
              "spans enabled (run/chaos/resume --spans, bench --profile)")
        return 1

    print(f"causal-span attribution — {source}")
    failed = False
    for app in sorted(report["apps"]):
        info = report["apps"][app]
        wall = info["wall_s"]
        print(f"\napplication {app!r}: wall {wall:.3f}s "
              f"over {info['windows']} window(s)")
        for category in CATEGORIES:
            value = info["breakdown"][category]
            if value <= 0:
                continue
            share = value / wall if wall > 0 else 0.0
            print(f"  {category:<12} {value:10.3f}s  {share:6.1%}")
        if abs(info["breakdown_residual_s"]) > 1e-6:
            failed = True
            print(f"  BREAKDOWN MISMATCH: categories sum to "
                  f"{wall - info['breakdown_residual_s']:.9f}s, "
                  f"wall is {wall:.9f}s")
        steps = [
            step["span"] + (f"[{step['task']}]" if step.get("task") else "")
            for step in info["critical_path"]
        ]
        print(f"  critical path: {' -> '.join(steps)}")
        if info["top_tasks"]:
            rendered = ", ".join(
                f"{t['task']} {t['wall_s']:.3f}s" for t in info["top_tasks"]
            )
            print(f"  slowest tasks: {rendered}")
    if report["top_hosts"]:
        rendered = ", ".join(
            f"{h['host']} {h['execute_s']:.3f}s" for h in report["top_hosts"]
        )
        print(f"\nbusiest hosts (execute time): {rendered}")

    violations = report["integrity"]["violations"]
    if violations:
        failed = True
        print(f"\n{len(violations)} span-integrity violation(s):")
        for violation in violations:
            print(f"  {violation}")
    if report["integrity"]["orphaned_spans"]:
        print(f"\n{report['integrity']['orphaned_spans']} span(s) "
              "orphan-marked (crash/abandon) — expected under faults")

    digest = report_hash(report)
    print(f"\nreport hash: {digest}")
    if args.json:
        try:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(report_to_json(report))
        except OSError as exc:
            print(f"error: cannot write report to {args.json}: {exc}")
            return 1
        print(f"report written to {args.json}")
    if args.hashes:
        try:
            with open(args.hashes, "w", encoding="utf-8") as fh:
                _json.dump({"report": digest}, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(f"error: cannot write hash to {args.hashes}: {exc}")
            return 1
        print(f"report hash written to {args.hashes}")
    if args.profile:
        stacks = folded_stacks(events)
        try:
            with open(args.profile, "w", encoding="utf-8") as fh:
                fh.write(format_folded(stacks))
        except OSError as exc:
            print(f"error: cannot write profile to {args.profile}: {exc}")
            return 1
        print(f"folded-stack profile ({len(stacks)} stacks) written to "
              f"{args.profile} — load it in speedscope.app")
    return 2 if failed else 0


def cmd_topology(args) -> int:
    from repro import VDCE
    from repro.viz import topology_diagram

    env = VDCE.standard(n_sites=args.sites, hosts_per_site=args.hosts,
                        seed=args.seed)
    print(topology_diagram(env.topology))
    return 0


def cmd_experiments(args) -> int:
    print("experiment index (DESIGN.md section 4):")
    for exp_id, title, bench in EXPERIMENTS:
        print(f"  {exp_id:<4} {title:<40} "
              f"pytest benchmarks/{bench} --benchmark-only")
    return 0


def cmd_selftest(args) -> int:
    """Quick end-to-end health check across all subsystems."""
    import numpy as np

    from repro import VDCE
    from repro.runtime import DSM, LocalDataManager
    from repro.scheduler import AllocationTable, SiteScheduler, TaskAssignment
    from repro.workloads import linear_solver_afg, surveillance_afg

    failures = []

    def check(label, fn):
        try:
            fn()
            print(f"  ok    {label}")
        except Exception as exc:  # noqa: BLE001 - reported to the user
            failures.append(label)
            print(f"  FAIL  {label}: {exc}")

    print("VDCE self-test:")

    def solver_through_everything():
        env = VDCE.standard(n_sites=2, hosts_per_site=3, seed=0)
        env.start_monitoring()
        result = env.submit(linear_solver_afg(scale=0.15), k=1)
        (residual,) = result.outputs["verify"]
        assert residual < 1e-8

    check("simulated pipeline (editor->scheduler->runtime), correct maths",
          solver_through_everything)

    def c3i_pipeline():
        env = VDCE.standard(n_sites=2, hosts_per_site=3, seed=1)
        result = env.submit(surveillance_afg(n_sensors=2, scale=0.3), k=1)
        (summary,) = result.outputs["archive"]
        assert summary["tracks"] > 0

    check("C3I surveillance pipeline", c3i_pipeline)

    def real_sockets():
        afg = linear_solver_afg(scale=0.1, parallel_lu_nodes=1, verify=False)
        table = AllocationTable(afg.name, scheduler="manual")
        for i, task in enumerate(afg.topological_order()):
            table.assign(TaskAssignment(task, "local", (f"n{i % 2}",), 0.1))
        report = LocalDataManager(timeout_s=20.0).execute(afg, table)
        (x,) = report.outputs["solve"]
        assert np.isfinite(x).all()

    check("Data Manager over real TCP sockets", real_sockets)

    def dsm_consistency():
        env = VDCE.standard(n_sites=2, hosts_per_site=2, seed=2)
        dsm = DSM(env.sim, env.topology.network)
        hosts = [h.name for h in env.topology.all_hosts]
        dsm.allocate("c", hosts[0], initial=0)

        def incr(host):
            yield from dsm.fetch_add("c", 1, host)

        procs = [env.sim.process(incr(h)) for h in hosts for _ in range(3)]

        def wait():
            for p in procs:
                yield p
            value = yield from dsm.read("c", hosts[0])
            return value

        assert env.sim.run_until_complete(env.sim.process(wait())) == 12

    check("DSM sequential consistency", dsm_consistency)

    def failure_recovery():
        env = VDCE.standard(n_sites=1, hosts_per_site=3, seed=3)
        from repro.workloads import linear_pipeline

        afg = linear_pipeline(n_stages=3, cost=5.0)
        table = SiteScheduler(k=0).schedule(afg, env.runtime.federation_view())
        victim = table.get("s000").hosts[0]
        proc = env.runtime.execute_process(afg, table,
                                           execute_payloads=False)
        env.sim.call_after(1.0, lambda: env.topology.host(victim).fail())
        result = env.sim.run_until_complete(proc)
        assert result.reschedules >= 1

    check("failure detection + task rescheduling", failure_recovery)

    def checkpoint_resume():
        import os
        import tempfile

        from repro.runtime.checkpoint import (
            create_checkpoint_dir,
            expected_output_hashes,
            final_output_hashes,
            resume_run,
        )
        from repro.workloads import linear_pipeline

        with tempfile.TemporaryDirectory() as tmp:
            env = VDCE.standard(n_sites=2, hosts_per_site=2, seed=4)
            afg = linear_pipeline(n_stages=4, cost=4.0, edge_mb=1.0)
            expected = expected_output_hashes(afg, env.runtime.registry)
            table = SiteScheduler(k=1).schedule(
                afg, env.runtime.federation_view()
            )
            journal = create_checkpoint_dir(env, tmp)
            env.runtime.execute_process(afg, table, journal=journal)
            env.sim.run(until=8.0)  # "crash" mid-application
            env.save_repositories(os.path.join(tmp, "repos"))
            _env2, result = resume_run(tmp)
            assert final_output_hashes(result) == expected

    check("checkpoint journal + resume equivalence", checkpoint_resume)

    if failures:
        print(f"\n{len(failures)} check(s) FAILED: {failures}")
        return 1
    print("\nall checks passed")
    return 0


def cmd_resume(args) -> int:
    """Resume an interrupted application from a checkpoint directory."""
    import json as _json

    from repro.runtime.checkpoint import final_output_hashes, resume_run

    tracer = None
    runtime_config = None
    if args.trace:
        from repro.trace.tracer import Tracer

        tracer = Tracer()
    if args.spans:
        from repro.runtime.vdce_runtime import RuntimeConfig

        if tracer is None:
            print("error: --spans needs --trace (spans live in the trace)")
            return 1
        runtime_config = RuntimeConfig(causal_spans=True)
    try:
        _env, result = resume_run(
            args.directory, submit_site=args.site, limit=args.limit,
            tracer=tracer, runtime_config=runtime_config,
        )
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot resume from {args.directory}: {exc}")
        return 1
    if args.trace:
        from repro.trace.serialize import write_jsonl

        try:
            write_jsonl(tracer, args.trace)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace}: {exc}")
            return 1
        print(f"resume trace written to {args.trace}")
    hashes = final_output_hashes(result)
    print(f"application {result.application!r} resumed and completed: "
          f"{len(result.records)} tasks, "
          f"{result.reschedules} reschedules, "
          f"finished at t={result.finished_at:.3f}s")
    for task_id in sorted(hashes):
        print(f"  {task_id}: {hashes[task_id]}")
    if args.hashes:
        with open(args.hashes, "w", encoding="utf-8") as fh:
            _json.dump(hashes, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"output hashes written to {args.hashes}")
    if args.expect:
        try:
            with open(args.expect, encoding="utf-8") as fh:
                expected = _json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load expected hashes {args.expect}: {exc}")
            return 1
        if hashes != expected:
            print("resume equivalence FAILED — output hashes differ:")
            for task in sorted(set(expected) | set(hashes)):
                want, got = expected.get(task), hashes.get(task)
                if want != got:
                    print(f"  {task}: expected {want}, got {got}")
            return 1
        print("resume equivalence verified: output hashes match expected")
    return 0


def cmd_serve(args) -> int:  # pragma: no cover - starts a real server
    from repro import VDCE
    from repro.editor.webapp import create_webapp
    from repro.metrics.registry import MetricsRegistry

    env = VDCE.standard(n_sites=args.sites, hosts_per_site=args.hosts,
                        seed=args.seed, metrics=MetricsRegistry())
    env.start_monitoring()
    app = create_webapp(env.runtime)
    print(f"VDCE web editor on http://127.0.0.1:{args.port} "
          f"(user: admin / vdce-admin, metrics at /metrics)")
    app.run(port=args.port)
    return 0


def cmd_chaos(args) -> int:
    """Run a chaos campaign; exit 1 on any invariant violation."""
    import json as _json

    from repro.sim.chaos import (
        ChaosConfig, churn_smoke_config, corruption_smoke_config,
        run_campaign, slowdown_smoke_config, smoke_config, storm_config,
    )

    presets = [args.smoke, args.slowdown_smoke, args.storm, args.corruption,
               args.churn]
    if sum(bool(p) for p in presets) > 1:
        print("error: --smoke, --slowdown-smoke, --storm, --corruption "
              "and --churn are mutually exclusive")
        return 1
    if args.smoke:
        config = smoke_config(seed=args.seed)
    elif args.slowdown_smoke:
        config = slowdown_smoke_config(seed=args.seed)
    elif args.storm:
        config = storm_config(seed=args.seed)
    elif args.corruption:
        config = corruption_smoke_config(seed=args.seed)
    elif args.churn:
        config = churn_smoke_config(seed=args.seed)
    else:
        config = ChaosConfig(
            seed=args.seed,
            n_sites=args.sites,
            hosts_per_site=args.hosts,
            n_apps=args.apps,
            duration_s=args.duration,
            n_slow_hosts=args.slow_hosts,
            slowdown_factor=args.slowdown_factor,
            n_flapping_hosts=args.flap_hosts,
            detector=args.detector,
            speculation=args.speculation,
            health=args.health,
        )
    if args.spans:
        from dataclasses import replace

        config = replace(config, causal_spans=True)

    report = run_campaign(config, trace_path=args.trace)
    if args.trace:
        print(f"campaign trace written to {args.trace}")
    print(f"chaos campaign (seed={config.seed}): "
          f"{len(report.outcomes)} applications, "
          f"{report.injection_events} fault events, "
          f"{report.detections} detections "
          f"({report.false_positives} false positives)")
    if config.speculation:
        print(f"  speculation: {report.speculative_launches} backups "
              f"launched, {report.speculative_wins} won, "
              f"{report.speculative_wasted_s:.2f}s wasted; "
              f"quarantined: {report.quarantined_hosts or 'none'}")
    if config.storm_apps:
        print(f"  overload: {report.sheds} sheds, "
              f"peak queue {report.peak_queued}/"
              f"{config.storm_max_queued}, "
              f"{report.brownout_shifts} brownout shifts, "
              f"{report.breaker_transitions} breaker transitions "
              f"({report.breaker_fast_fails} fast-fails)")
    if config.data_integrity and report.integrity is not None:
        integ = report.integrity
        print(f"  integrity: {integ['corruptions_detected']} corruptions "
              f"detected, {integ['refetches']} refetches, "
              f"{integ['regenerations']} regenerations, "
              f"{integ['poisoned']} poisoned, "
              f"{integ['artifacts_lost']} artifacts lost "
              f"({integ['dirty_consumptions']} dirty consumptions)")
    if config.n_churn_hosts and report.membership is not None:
        member = report.membership
        counts = {}
        for transition in member["transitions"]:
            kind = transition["transition"]
            counts[kind] = counts.get(kind, 0) + 1
        print(f"  membership: {len(member['targets'])} churn targets, "
              f"{counts.get('drain', 0)} drains, "
              f"{counts.get('depart', 0)} departures, "
              f"{counts.get('rejoin', 0)} rejoins; "
              f"{member['drain_affected_tasks']} tasks evicted/re-placed")
    for name in sorted(report.outcomes):
        outcome = report.outcomes[name]
        line = f"  {name}: {outcome['status']}"
        if outcome["status"] == "completed":
            if "reschedules" in outcome:
                line += (f" (makespan {outcome['makespan_s']:.2f}s, "
                         f"{outcome['reschedules']} reschedules, "
                         f"{outcome['transfer_retries']} transfer retries)")
            else:
                line += f" (makespan {outcome['makespan_s']:.2f}s)"
        else:
            line += f" ({outcome.get('error', '?')})"
        print(line)

    hashes = {
        "trace": report.trace_hash,
        "metrics": report.metrics_hash,
        "campaign": report.campaign_hash(),
    }
    if args.check_determinism:
        second = run_campaign(config)
        same = (second.trace_hash == report.trace_hash
                and second.metrics_hash == report.metrics_hash
                and second.campaign_hash() == hashes["campaign"])
        print(f"determinism: {'byte-identical' if same else 'MISMATCH'}")
        if not same:
            report.violations.append(
                "I3: second run of the same config produced different hashes"
            )

    if args.log:
        with open(args.log, "w", encoding="utf-8") as fh:
            _json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"campaign log written to {args.log}")
    if args.hashes:
        with open(args.hashes, "w", encoding="utf-8") as fh:
            _json.dump(hashes, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"hashes written to {args.hashes}")

    print(f"trace hash:    {report.trace_hash}")
    print(f"campaign hash: {hashes['campaign']}")
    if report.violations:
        print(f"\n{len(report.violations)} invariant violation(s):")
        for violation in report.violations:
            print(f"  {violation}")
        return 1
    print("all invariants held")
    return 0


def cmd_bench(args) -> int:
    """Run the benchmark trajectory harness (benchmarks/harness.py)."""
    import json as _json

    try:
        # benchmarks/ is a repo-root package, not an installed one;
        # running from anywhere inside a checkout still works
        harness = _import_harness()
    except ImportError:
        print("error: cannot import benchmarks.harness — run 'repro "
              "bench' from the repository root")
        return 1

    document = harness.run_all(
        quick=args.quick,
        with_reference=args.with_reference,
        label=args.label,
    )
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                harness.embed_baseline(document, _json.load(fh))
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline {args.baseline}: {exc}")
            return 1
    print(harness.format_document(document))
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(harness.to_json(document))
        except OSError as exc:
            print(f"error: cannot write bench document to {args.out}: {exc}")
            return 1
        print(f"\nbench document written to {args.out}")
    if args.profile:
        # a separate spans-on pass per scenario: the timed/hashed passes
        # above never see spans, so the document's hashes are untouched
        from repro.obs.profile import folded_stacks, format_folded

        stacks = {}
        for name in harness.SCENARIO_ORDER:
            events = harness.run_traced(name, causal_spans=True)
            stacks.update(folded_stacks(events, prefix=name))
        try:
            with open(args.profile, "w", encoding="utf-8") as fh:
                fh.write(format_folded(stacks))
        except OSError as exc:
            print(f"error: cannot write profile to {args.profile}: {exc}")
            return 1
        print(f"folded-stack profile ({len(stacks)} stacks) written to "
              f"{args.profile} — load it in speedscope.app")
    if args.compare:
        try:
            with open(args.compare, encoding="utf-8") as fh:
                previous = _json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load previous bench document "
                  f"{args.compare}: {exc}")
            return 1
        problems = harness.compare(
            previous, document,
            tolerance=args.tolerance, hash_only=args.hash_only,
        )
        if problems:
            print(f"\ncomparison vs {args.compare}: "
                  f"{len(problems)} problem(s)")
            for problem in problems:
                print(f"  {problem}")
            return 1
        detail = ("behaviour hashes identical" if args.hash_only else
                  f"hashes identical, throughput within "
                  f"{args.tolerance:.0%} of reference")
        print(f"\ncomparison vs {args.compare}: clean ({detail})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VDCE — A Global Computing Environment for Networked "
                    "Resources (Topcuoglu & Hariri, ICPP 1997), reproduced.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("libraries", help="list the task-library menus")

    run = sub.add_parser("run", help="submit a built-in application")
    run.add_argument("application",
                     help="linear-solver | figure1 | c3i | dsp | random-dag")
    run.add_argument("--sites", type=int, default=2)
    run.add_argument("--hosts", type=int, default=4)
    run.add_argument("--k", type=int, default=1,
                     help="nearest remote sites joining the schedule")
    run.add_argument("--scale", type=float, default=0.3)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--gantt", action="store_true")
    run.add_argument("--report", action="store_true",
                     help="print the full execution report")
    run.add_argument("--monitoring", action="store_true",
                     help="start monitor daemons + echo loops first")
    run.add_argument("--trace", metavar="PATH",
                     help="record a structured event trace to PATH (JSONL) "
                          "and print its summary + content hash")
    run.add_argument("--spans", action="store_true",
                     help="with --trace: record causal spans too, for "
                          "'repro explain'")
    run.add_argument("--metrics", metavar="PATH",
                     help="record a metrics snapshot to PATH (canonical "
                          "JSON) and print its content hash")
    run.add_argument("--max-concurrent", type=int, default=None,
                     help="submit through the priority admission queue, "
                          "at most N applications executing at once")
    run.add_argument("--repeat", type=int, default=1,
                     help="with --max-concurrent: submit N copies of the "
                          "application to exercise queueing")
    run.add_argument("--max-queued", type=int, default=None,
                     help="with --max-concurrent: bound the admission "
                          "queue; overflow is shed deterministically")
    run.add_argument("--deadline", type=float, default=None,
                     help="with --max-concurrent: per-application deadline "
                          "(seconds); expired-in-queue submissions fail")
    run.add_argument("--ttl", type=float, default=None,
                     help="with --max-concurrent: in-queue time-to-live "
                          "(seconds) applied to every submission")
    run.add_argument("--journal", metavar="DIR",
                     help="checkpoint the application to DIR (meta.json + "
                          "repos/ + journal.jsonl); resume later with "
                          "'repro resume DIR'")

    mon = sub.add_parser("monitor", help="run the control plane alone")
    mon.add_argument("--sites", type=int, default=2)
    mon.add_argument("--hosts", type=int, default=3)
    mon.add_argument("--duration", type=float, default=60.0)
    mon.add_argument("--seed", type=int, default=0)
    mon.add_argument("--metrics", metavar="PATH",
                     help="record a metrics snapshot to PATH (canonical "
                          "JSON) and print its content hash")

    met = sub.add_parser("metrics",
                         help="print a metrics snapshot (Prometheus or JSON)")
    met.add_argument("snapshot", nargs="?",
                     help="a snapshot file written by --metrics "
                          "(default: run a quick instrumented deployment)")
    met.add_argument("--format", choices=("prom", "json"), default="prom")
    met.add_argument("--sites", type=int, default=2)
    met.add_argument("--hosts", type=int, default=3)
    met.add_argument("--seed", type=int, default=0)

    explain = sub.add_parser(
        "explain",
        help="attribute an application's time from its causal span trace")
    explain.add_argument("trace", nargs="?",
                         help="JSONL trace recorded with --spans")
    explain.add_argument("--scenario",
                         help="instead of a trace file: re-run this bench "
                              "scenario with spans on and explain it")
    explain.add_argument("--top", type=int, default=5,
                         help="how many slow tasks / busy hosts to list")
    explain.add_argument("--json", metavar="PATH",
                         help="write the canonical attribution report "
                              "(JSON) to PATH")
    explain.add_argument("--hashes", metavar="PATH",
                         help="write the report hash (JSON) to PATH")
    explain.add_argument("--profile", metavar="PATH",
                         help="write the span self-time profile to PATH "
                              "as speedscope-compatible folded stacks")

    ana = sub.add_parser("analyze",
                         help="analyze a saved trace, or diff two")
    ana.add_argument("trace", help="JSONL trace written by run --trace")
    ana.add_argument("trace2", nargs="?",
                     help="second trace: print the structural diff instead "
                          "(exit 2 when the traces differ)")

    topo = sub.add_parser("topology", help="print the deployment diagram")
    topo.add_argument("--sites", type=int, default=2)
    topo.add_argument("--hosts", type=int, default=4)
    topo.add_argument("--seed", type=int, default=0)

    chaos = sub.add_parser(
        "chaos",
        help="run a randomized fault campaign and check its invariants")
    chaos.add_argument("--smoke", action="store_true",
                       help="the small, fast campaign CI runs")
    chaos.add_argument("--slowdown-smoke", action="store_true",
                       help="the straggler-defense campaign CI runs "
                            "(slowdowns + flapping, speculation on)")
    chaos.add_argument("--storm", action="store_true",
                       help="the overload campaign: an arrival storm "
                            "against a bounded admission queue, with "
                            "brownout and circuit breakers armed")
    chaos.add_argument("--corruption", action="store_true",
                       help="the data-integrity campaign: payload "
                            "corruption, artifact loss and journal rot "
                            "against end-to-end checksums and the "
                            "repair ladder (invariants I12/I13)")
    chaos.add_argument("--churn", action="store_true",
                       help="the elastic-membership campaign: graceful "
                            "drains, hard decommissions and rejoins "
                            "under load (invariants I14/I15/I16)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--sites", type=int, default=3)
    chaos.add_argument("--hosts", type=int, default=4)
    chaos.add_argument("--apps", type=int, default=4)
    chaos.add_argument("--duration", type=float, default=300.0)
    chaos.add_argument("--slow-hosts", type=int, default=0,
                       help="hosts hit by a scripted slowdown")
    chaos.add_argument("--slowdown-factor", type=float, default=8.0)
    chaos.add_argument("--flap-hosts", type=int, default=0,
                       help="hosts flapping between normal and slow")
    chaos.add_argument("--detector", choices=("count", "phi"),
                       default="count",
                       help="failure detector the Group Managers use")
    chaos.add_argument("--speculation", action="store_true",
                       help="enable speculative re-execution of stragglers")
    chaos.add_argument("--health", action="store_true",
                       help="enable host-health scoring and quarantine")
    chaos.add_argument("--check-determinism", action="store_true",
                       help="run the campaign twice and require "
                            "byte-identical trace/metrics/campaign hashes")
    chaos.add_argument("--log", metavar="PATH",
                       help="write the full campaign report (JSON) to PATH")
    chaos.add_argument("--hashes", metavar="PATH",
                       help="write the trace/metrics/campaign hashes to PATH")
    chaos.add_argument("--spans", action="store_true",
                       help="record causal spans and audit the I9 span "
                            "integrity invariant")
    chaos.add_argument("--trace", metavar="PATH",
                       help="write the campaign's event trace (JSONL) to "
                            "PATH — with --spans, feed it to 'repro explain'")

    bench = sub.add_parser(
        "bench",
        help="run the benchmark trajectory (wall time + behaviour hashes)")
    bench.add_argument("--quick", action="store_true",
                       help="one timed repetition per scenario instead of "
                            "three (hashes are identical either way)")
    bench.add_argument("--out", metavar="PATH",
                       help="write the canonical bench JSON to PATH")
    bench.add_argument("--compare", metavar="PATH",
                       help="previous BENCH_*.json: exit 1 on any "
                            "trace-hash change or throughput regression")
    bench.add_argument("--hash-only", action="store_true",
                       help="with --compare: check only the behaviour "
                            "hashes (wall clocks differ across machines)")
    bench.add_argument("--tolerance", type=float,
                       default=0.20,
                       help="with --compare: allowed fractional throughput "
                            "drop (default 0.20)")
    bench.add_argument("--with-reference", action="store_true",
                       help="re-run every scenario with all perf flags off "
                            "and embed the reference + speedup")
    bench.add_argument("--baseline", metavar="PATH",
                       help="an older bench document (pre-optimization "
                            "code) to embed verbatim as this document's "
                            "fixed baseline, with speedup_vs_baseline")
    bench.add_argument("--label", default="BENCH_6",
                       help="document label (the committed file's stem)")
    bench.add_argument("--profile", metavar="PATH",
                       help="also run every scenario with causal spans on "
                            "and write the span self-time profile to PATH "
                            "(speedscope-compatible folded stacks); the "
                            "document's hashes are unaffected")

    sub.add_parser("experiments", help="print the experiment index")

    resume = sub.add_parser(
        "resume",
        help="resume an interrupted application from a checkpoint dir")
    resume.add_argument("directory",
                        help="checkpoint directory written by run --journal "
                             "(meta.json + journal.jsonl + repos/)")
    resume.add_argument("--site",
                        help="submitting site override (default: the "
                             "journalled submit site)")
    resume.add_argument("--limit", type=float, default=None,
                        help="virtual-time limit for the resumed run")
    resume.add_argument("--expect", metavar="PATH",
                        help="JSON file of expected terminal output hashes; "
                             "exit 1 unless the resumed run reproduces them")
    resume.add_argument("--hashes", metavar="PATH",
                        help="write the resumed run's terminal output "
                             "hashes (JSON) to PATH")
    resume.add_argument("--trace", metavar="PATH",
                        help="record the resumed run's event trace (JSONL) "
                             "to PATH")
    resume.add_argument("--spans", action="store_true",
                        help="with --trace: record causal spans too, for "
                             "'repro explain'")

    sub.add_parser("selftest", help="quick end-to-end health check")
    sub.add_parser("verify", help="alias for selftest")

    serve = sub.add_parser("serve", help="start the Flask web editor")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--sites", type=int, default=2)
    serve.add_argument("--hosts", type=int, default=4)
    serve.add_argument("--seed", type=int, default=0)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "libraries": cmd_libraries,
        "run": cmd_run,
        "monitor": cmd_monitor,
        "metrics": cmd_metrics,
        "analyze": cmd_analyze,
        "explain": cmd_explain,
        "bench": cmd_bench,
        "chaos": cmd_chaos,
        "topology": cmd_topology,
        "experiments": cmd_experiments,
        "resume": cmd_resume,
        "selftest": cmd_selftest,
        "verify": cmd_selftest,
        "serve": cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

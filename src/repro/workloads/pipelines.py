"""Structured AFG shapes: pipelines, fork-join, reductions, task bags.

These shapes isolate specific scheduler behaviours: a linear pipeline
stresses placement locality, fork-join stresses the level priority,
reduction trees stress fan-in transfer aggregation, and a bag of tasks
stresses pure load balancing.  All use the ``generic`` library and are
meant for shape-only execution.
"""

from __future__ import annotations

from repro.afg.graph import ApplicationFlowGraph
from repro.afg.properties import TaskProperties
from repro.afg.task import TaskNode

__all__ = [
    "bag_of_tasks",
    "fork_join",
    "linear_pipeline",
    "reduction_tree",
    "wavefront",
]


def _source(id: str, cost: float) -> TaskNode:
    return TaskNode(id=id, task_type="generic.source", n_out_ports=1,
                    properties=TaskProperties(workload_scale=cost))


def _compute(id: str, cost: float, n_in: int = 1) -> TaskNode:
    # single-input stages use the fixed-arity compute entry; fan-in
    # stages use the variadic merge entry so graphs registry-validate
    task_type = "generic.compute" if n_in == 1 else "generic.merge"
    return TaskNode(id=id, task_type=task_type, n_in_ports=n_in,
                    n_out_ports=1,
                    properties=TaskProperties(workload_scale=cost))


def linear_pipeline(n_stages: int = 6, cost: float = 2.0,
                    edge_mb: float = 1.0) -> ApplicationFlowGraph:
    """A straight chain of ``n_stages`` equal-cost stages."""
    if n_stages < 1:
        raise ValueError("n_stages must be >= 1")
    afg = ApplicationFlowGraph(f"pipeline-{n_stages}")
    afg.add_task(_source("s000", cost))
    for i in range(1, n_stages):
        afg.add_task(_compute(f"s{i:03d}", cost))
        afg.connect(f"s{i-1:03d}", f"s{i:03d}", size_mb=edge_mb)
    return afg


def fork_join(width: int = 4, branch_cost: float = 2.0,
              head_cost: float = 1.0, edge_mb: float = 1.0) -> ApplicationFlowGraph:
    """head -> width parallel branches -> join."""
    if width < 1:
        raise ValueError("width must be >= 1")
    afg = ApplicationFlowGraph(f"fork-join-{width}")
    afg.add_task(_source("head", head_cost))
    afg.add_task(_compute("join", head_cost, n_in=width))
    for i in range(width):
        branch = f"b{i:03d}"
        afg.add_task(_compute(branch, branch_cost))
        afg.connect("head", branch, src_port=0, size_mb=edge_mb)
        afg.connect(branch, "join", dst_port=i, size_mb=edge_mb)
    return afg


def reduction_tree(leaves: int = 8, leaf_cost: float = 2.0,
                   inner_cost: float = 1.0, edge_mb: float = 1.0) -> ApplicationFlowGraph:
    """Binary in-tree: ``leaves`` sources reduced pairwise to one root."""
    if leaves < 2 or leaves & (leaves - 1):
        raise ValueError("leaves must be a power of two >= 2")
    afg = ApplicationFlowGraph(f"reduction-{leaves}")
    level = []
    for i in range(leaves):
        node = _source(f"leaf{i:03d}", leaf_cost)
        afg.add_task(node)
        level.append(node.id)
    depth = 0
    while len(level) > 1:
        next_level = []
        for i in range(0, len(level), 2):
            node = _compute(f"red{depth}_{i // 2:03d}", inner_cost, n_in=2)
            afg.add_task(node)
            afg.connect(level[i], node.id, dst_port=0, size_mb=edge_mb)
            afg.connect(level[i + 1], node.id, dst_port=1, size_mb=edge_mb)
            next_level.append(node.id)
        level = next_level
        depth += 1
    return afg


def wavefront(n: int = 4, cost: float = 2.0,
              edge_mb: float = 1.0) -> ApplicationFlowGraph:
    """An n x n wavefront (Smith-Waterman/stencil) dependency grid.

    Cell (i, j) depends on (i-1, j) and (i, j-1); the anti-diagonal
    frontier widens then narrows, which exercises schedulers on
    *changing* available parallelism — neither a chain nor a bag.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    afg = ApplicationFlowGraph(f"wavefront-{n}x{n}")

    def cell(i: int, j: int) -> str:
        return f"c{i:02d}_{j:02d}"

    for i in range(n):
        for j in range(n):
            parents = int(i > 0) + int(j > 0)
            if parents == 0:
                afg.add_task(_source(cell(i, j), cost))
            else:
                afg.add_task(_compute(cell(i, j), cost, n_in=parents))
    for i in range(n):
        for j in range(n):
            port = 0
            if i > 0:
                afg.connect(cell(i - 1, j), cell(i, j), dst_port=port,
                            size_mb=edge_mb)
                port += 1
            if j > 0:
                afg.connect(cell(i, j - 1), cell(i, j), dst_port=port,
                            size_mb=edge_mb)
    return afg


def bag_of_tasks(n: int = 12, cost: float = 2.0,
                 heterogeneity: float = 0.0, seed: int = 0) -> ApplicationFlowGraph:
    """``n`` independent tasks (no edges) — pure load balancing."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if not (0.0 <= heterogeneity < 1.0):
        raise ValueError("heterogeneity must be in [0, 1)")
    import numpy as np

    rng = np.random.default_rng(seed)
    afg = ApplicationFlowGraph(f"bag-{n}")
    for i in range(n):
        c = cost * (1.0 + heterogeneity * float(rng.uniform(-1.0, 1.0)))
        afg.add_task(_source(f"job{i:03d}", c))
    return afg

"""Layered random DAGs for the scheduling experiments.

The classic random-graph methodology of the list-scheduling literature
(the paper's refs [2, 4]): tasks arranged in layers, random fan-in from
earlier layers, per-task costs drawn around a mean with controllable
heterogeneity, and edge volumes set from a target communication-to-
computation ratio (CCR).

Graphs use the ``generic`` library with per-node ``workload_scale``
carrying the cost, and are meant to be executed with
``execute_payloads=False`` (shape-only): entry nodes are
``generic.source`` lookalikes and interior nodes ``generic.compute``
with as many input ports as sampled parents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.afg.graph import ApplicationFlowGraph
from repro.afg.properties import TaskProperties
from repro.afg.task import TaskNode

__all__ = ["RandomDAGConfig", "random_dag"]


@dataclass(frozen=True)
class RandomDAGConfig:
    """Knobs of the generator.

    ``ccr`` is the target ratio between the mean edge transfer time on a
    reference 1 MB/s link and the mean task execution time on the base
    processor: ``mean_edge_mb = ccr * mean_cost * 1 MB/s``.
    """

    n_tasks: int = 20
    width: int = 4
    max_fan_in: int = 3
    #: mean task cost in base-processor seconds
    mean_cost: float = 2.0
    #: multiplicative half-range of per-task cost (0 = homogeneous)
    cost_heterogeneity: float = 0.5
    ccr: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        if self.width < 1:
            raise ValueError("width must be >= 1")
        if self.max_fan_in < 1:
            raise ValueError("max_fan_in must be >= 1")
        if self.mean_cost <= 0:
            raise ValueError("mean_cost must be positive")
        if not (0.0 <= self.cost_heterogeneity < 1.0):
            raise ValueError("cost_heterogeneity must be in [0, 1)")
        if self.ccr < 0:
            raise ValueError("ccr must be non-negative")


def random_dag(config: RandomDAGConfig) -> ApplicationFlowGraph:
    """Generate a layered random AFG; deterministic for a given config."""
    rng = np.random.default_rng(config.seed)
    afg = ApplicationFlowGraph(
        f"random-dag-n{config.n_tasks}-w{config.width}-s{config.seed}"
    )

    # partition tasks into layers of at most `width`
    layers: List[List[str]] = []
    remaining = config.n_tasks
    index = 0
    while remaining > 0:
        layer_size = int(rng.integers(1, config.width + 1))
        layer_size = min(layer_size, remaining)
        layer = [f"n{index + i:03d}" for i in range(layer_size)]
        layers.append(layer)
        index += layer_size
        remaining -= layer_size

    def draw_cost() -> float:
        h = config.cost_heterogeneity
        factor = 1.0 + h * float(rng.uniform(-1.0, 1.0))
        return config.mean_cost * factor

    mean_edge_mb = config.ccr * config.mean_cost  # 1 MB/s reference link

    def draw_edge_mb() -> float:
        if mean_edge_mb <= 0:
            return 0.0
        return float(rng.uniform(0.5, 1.5)) * mean_edge_mb

    # first layer: entry tasks
    for task_id in layers[0]:
        afg.add_task(
            TaskNode(
                id=task_id,
                task_type="generic.source",
                n_in_ports=0,
                n_out_ports=1,
                properties=TaskProperties(workload_scale=draw_cost()),
            )
        )

    # later layers: sample parents from any earlier layer
    earlier: List[str] = list(layers[0])
    for layer in layers[1:]:
        for task_id in layer:
            fan_in = int(rng.integers(1, config.max_fan_in + 1))
            fan_in = min(fan_in, len(earlier))
            parent_idx = rng.choice(len(earlier), size=fan_in, replace=False)
            parents = sorted(earlier[i] for i in parent_idx)
            afg.add_task(
                TaskNode(
                    id=task_id,
                    task_type=(
                        "generic.compute" if fan_in == 1 else "generic.merge"
                    ),
                    n_in_ports=fan_in,
                    n_out_ports=1,
                    properties=TaskProperties(workload_scale=draw_cost()),
                )
            )
            for port, parent in enumerate(parents):
                afg.connect(parent, task_id, src_port=0, dst_port=port,
                            size_mb=draw_edge_mb())
        earlier.extend(layer)

    return afg

"""Application/workload generators for examples and experiments.

* :mod:`linear_solver` — the paper's Figure 1 application (both the
  figure-faithful AFG and a fully computational variant);
* :mod:`c3i_apps` — C3I surveillance pipelines over the C3I library;
* :mod:`random_dag` — parameterised layered random DAGs (task count,
  width, fan-in, cost heterogeneity, communication volume) for the
  scheduling experiments;
* :mod:`pipelines` — structured shapes: linear pipelines, fork-join,
  reduction trees, embarrassingly parallel bags.
"""

from repro.workloads.linear_solver import figure1_afg, linear_solver_afg
from repro.workloads.c3i_apps import surveillance_afg
from repro.workloads.random_dag import RandomDAGConfig, random_dag
from repro.workloads.pipelines import (
    bag_of_tasks,
    fork_join,
    linear_pipeline,
    reduction_tree,
    wavefront,
)

__all__ = [
    "RandomDAGConfig",
    "bag_of_tasks",
    "figure1_afg",
    "fork_join",
    "linear_pipeline",
    "linear_solver_afg",
    "random_dag",
    "reduction_tree",
    "surveillance_afg",
    "wavefront",
]

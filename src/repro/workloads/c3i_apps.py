"""C3I applications built from the C3I task library (paper §2).

The VDCE project was funded by Rome Laboratory and motivated by C3I
(command, control, communication & intelligence) workloads; its editor
ships a "C3I (command and control applications) library".  This module
assembles that library into the canonical multi-sensor surveillance
pipeline: N sensor sweeps, per-sensor track filtering, pairwise track
correlation (fusion), threat assessment, and two consumers (operator
display + intelligence archive).  Every stage executes real numpy code.
"""

from __future__ import annotations

from repro.afg.graph import ApplicationFlowGraph
from repro.afg.properties import TaskProperties
from repro.afg.task import TaskNode

__all__ = ["surveillance_afg"]


def surveillance_afg(n_sensors: int = 2, scale: float = 0.5) -> ApplicationFlowGraph:
    """Multi-sensor surveillance: fuse ``n_sensors`` tracks into a picture.

    Fusion is a left-leaning correlation tree: sensors 0 and 1 fuse
    first, each further sensor correlates into the running picture.
    ``n_sensors`` must be >= 2 (correlation is pairwise).
    """
    if n_sensors < 2:
        raise ValueError("surveillance needs at least two sensors")
    track_mb = 2.0 * scale
    afg = ApplicationFlowGraph(f"c3i-surveillance-{n_sensors}")

    filtered = []
    for i in range(n_sensors):
        sweep = f"sensor{i:02d}"
        filt = f"filter{i:02d}"
        afg.add_task(TaskNode(id=sweep, task_type="c3i.sensor_sweep",
                              n_out_ports=1,
                              properties=TaskProperties(workload_scale=scale)))
        afg.add_task(TaskNode(id=filt, task_type="c3i.track_filter",
                              n_in_ports=1, n_out_ports=1,
                              properties=TaskProperties(workload_scale=scale)))
        afg.connect(sweep, filt, size_mb=track_mb)
        filtered.append(filt)

    fused = filtered[0]
    for i in range(1, n_sensors):
        corr = f"correlate{i:02d}"
        afg.add_task(TaskNode(id=corr, task_type="c3i.track_correlation",
                              n_in_ports=2, n_out_ports=1,
                              properties=TaskProperties(workload_scale=scale)))
        afg.connect(fused, corr, dst_port=0, size_mb=track_mb)
        afg.connect(filtered[i], corr, dst_port=1, size_mb=track_mb)
        fused = corr

    afg.add_task(TaskNode(id="assess", task_type="c3i.threat_assessment",
                          n_in_ports=1, n_out_ports=1,
                          properties=TaskProperties(workload_scale=scale)))
    afg.connect(fused, "assess", size_mb=track_mb)

    afg.add_task(TaskNode(id="display", task_type="c3i.display_format",
                          n_in_ports=1, n_out_ports=1,
                          properties=TaskProperties(workload_scale=scale)))
    afg.add_task(TaskNode(id="archive", task_type="c3i.intel_archive",
                          n_in_ports=1, n_out_ports=1,
                          properties=TaskProperties(workload_scale=scale)))
    # threat_assessment has one out port feeding both consumers
    afg.connect("assess", "display", src_port=0, size_mb=track_mb)
    afg.connect("assess", "archive", src_port=0, size_mb=0.01)
    return afg

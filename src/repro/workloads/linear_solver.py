"""The Linear Equation Solver — the application of paper Figure 1.

Two variants:

* :func:`figure1_afg` reproduces the figure verbatim: an
  LU-Decomposition task (parallel, 2 nodes, file input
  ``matrix_A.dat`` with SIZE=124.88) feeding a Matrix-Multiplication
  task (sequential, 1 node, preferred machine type "SUN solaris",
  preferred machine ``hunding.top.cis.syr.edu``, dataflow inputs,
  file output ``vector_X.dat``).  It is schedule-able as-is; executing
  it stages the (synthetic) input file.
* :func:`linear_solver_afg` is the computational variant used by the
  examples and tests: generate an SPD system, factorise, solve, verify
  the residual — every stage runs real numpy/scipy code, so the
  end-to-end pipeline can be checked for numerical correctness.
"""

from __future__ import annotations

from repro.afg.graph import ApplicationFlowGraph
from repro.afg.properties import (
    ComputationMode,
    FileSpec,
    InputBinding,
    TaskProperties,
)
from repro.afg.task import TaskNode

__all__ = ["figure1_afg", "linear_solver_afg"]

#: the exact file path and size shown in Figure 1's properties window
FIGURE1_MATRIX_PATH = "/u/users/VDCE/user_k/matrix_A.dat"
FIGURE1_MATRIX_SIZE_MB = 124.88
FIGURE1_OUTPUT_PATH = "/u/users/VDCE/user_k/vector_X.dat"


def figure1_afg() -> ApplicationFlowGraph:
    """The Figure 1 AFG with its two annotated task-properties windows."""
    afg = ApplicationFlowGraph("linear-equation-solver")
    afg.add_task(
        TaskNode(
            id="LU_Decomposition",
            task_type="matrix.lu_decomposition",
            n_in_ports=1,
            n_out_ports=1,
            properties=TaskProperties(
                mode=ComputationMode.PARALLEL,
                n_nodes=2,  # "Number of Nodes: 2"
                # "Preferred Machine Type: <any>", "Preferred Machine: <any>"
                inputs=(
                    InputBinding(
                        0, FileSpec(FIGURE1_MATRIX_PATH, FIGURE1_MATRIX_SIZE_MB)
                    ),
                ),
            ),
        )
    )
    afg.add_task(
        TaskNode(
            id="Matrix_Multiplication",
            task_type="matrix.matrix_multiply",
            n_in_ports=2,
            n_out_ports=1,
            properties=TaskProperties(
                mode=ComputationMode.SEQUENTIAL,
                n_nodes=1,  # "Number of Nodes: 1"
                preferred_machine_type="SUN solaris",
                # figure lists a specific preferred machine; we keep the
                # type preference only so the AFG is schedulable on any
                # deployment (the exact hostname belongs to the 1997 lab)
                inputs=(InputBinding(0), InputBinding(1)),  # "<dataflow, dataflow>"
                outputs=(FileSpec(FIGURE1_OUTPUT_PATH, 0.5),),
            ),
        )
    )
    # both dataflow inputs of the multiplication come from the LU stage
    afg.connect("LU_Decomposition", "Matrix_Multiplication",
                src_port=0, dst_port=0, size_mb=60.0)
    # second input: the original matrix file forwarded alongside
    afg.add_task(
        TaskNode(
            id="Matrix_Source",
            task_type="matrix.transpose",
            n_in_ports=1,
            n_out_ports=1,
            properties=TaskProperties(
                inputs=(
                    InputBinding(
                        0, FileSpec(FIGURE1_MATRIX_PATH, FIGURE1_MATRIX_SIZE_MB)
                    ),
                ),
            ),
        )
    )
    afg.connect("Matrix_Source", "Matrix_Multiplication",
                src_port=0, dst_port=1, size_mb=FIGURE1_MATRIX_SIZE_MB)
    return afg


def linear_solver_afg(scale: float = 0.2, parallel_lu_nodes: int = 2,
                      verify: bool = True) -> ApplicationFlowGraph:
    """Computational linear solver: generate -> LU -> solve [-> residual]."""
    afg = ApplicationFlowGraph("linear-solver")
    afg.add_task(
        TaskNode(
            id="generate",
            task_type="matrix.generate_system",
            n_out_ports=2,
            properties=TaskProperties(workload_scale=scale),
        )
    )
    lu_props = (
        TaskProperties(
            workload_scale=scale,
            mode=ComputationMode.PARALLEL,
            n_nodes=parallel_lu_nodes,
        )
        if parallel_lu_nodes > 1
        else TaskProperties(workload_scale=scale)
    )
    afg.add_task(
        TaskNode(
            id="lu",
            task_type="matrix.lu_decomposition",
            n_in_ports=1,
            n_out_ports=1,
            properties=lu_props,
        )
    )
    afg.add_task(
        TaskNode(
            id="solve",
            task_type="matrix.triangular_solve",
            n_in_ports=2,
            n_out_ports=1,
            properties=TaskProperties(workload_scale=scale),
        )
    )
    size = 4.0 * scale
    afg.connect("generate", "lu", src_port=0, dst_port=0, size_mb=size)
    afg.connect("generate", "solve", src_port=1, dst_port=1, size_mb=size / 8)
    afg.connect("lu", "solve", src_port=0, dst_port=0, size_mb=size)
    if verify:
        afg.add_task(
            TaskNode(
                id="verify",
                task_type="matrix.residual_norm",
                n_in_ports=3,
                n_out_ports=1,
                properties=TaskProperties(workload_scale=scale),
            )
        )
        afg.add_task(
            TaskNode(
                id="generate2",
                task_type="matrix.generate_system",
                n_out_ports=2,
                properties=TaskProperties(workload_scale=scale),
            )
        )
        afg.connect("generate2", "verify", src_port=0, dst_port=0, size_mb=size)
        afg.connect("solve", "verify", src_port=0, dst_port=1, size_mb=size / 8)
        afg.connect("generate2", "verify", src_port=1, dst_port=2, size_mb=size / 8)
    return afg

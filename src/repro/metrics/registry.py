"""The metrics registry: labeled counters, gauges, histograms, series.

The paper's Resource Controller is built around continuous measurement
(Monitor daemons sampling load, Group Managers filtering significant
changes, ``Predict(task, R)`` consuming the telemetry).  PR 1 gave the
stack a structured event *trace*; this module gives it queryable
*aggregates* — the currency every performance experiment reads.

Design rules, shared with :mod:`repro.trace.tracer`:

* **Sim-clock timestamped.**  The registry is bound to a caller-supplied
  clock (the simulator binds its virtual clock via :meth:`bind_clock`),
  never the wall clock, so two same-seed runs produce byte-identical
  snapshots — the metrics counterpart of the trace-hash oracle.
* **Deterministic.**  Snapshots sort every metric family and label set;
  no iteration-order or wall-time dependence anywhere.
* **Near-zero cost when disabled.**  :data:`NULL_METRICS` is the default
  everywhere; instrumented hot paths guard with
  ``if metrics.enabled:`` so the disabled path pays one attribute check.

Metric kinds:

=============  =========================================================
``counter``    monotonically increasing total (messages, events, bytes)
``gauge``      last-written value + the time it was written
``histogram``  fixed-bucket distribution (Prometheus ``le`` semantics:
               a value lands in the first bucket whose upper bound is
               **>= value**; values above the last edge land in +Inf)
``series``     append-only ``(time, value)`` pairs — the load /
               queue-depth time series the Monitor daemons produce
=============  =========================================================
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "CounterChild",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
    "Series",
    "SeriesChild",
]

#: latency-flavoured default bucket edges (seconds); +Inf is implicit
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label set (sorted, stringified)."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Common shape of one metric family (name + help + labeled children)."""

    kind: str = ""

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = ""):
        self.registry = registry
        self.name = name
        self.help = help

    def label_sets(self) -> List[LabelKey]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class Counter(_Metric):
    """Monotonically increasing total, optionally per label set."""

    kind = "counter"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = ""):
        super().__init__(registry, name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + float(amount)

    def set_total(self, value: float, **labels: Any) -> None:
        """Overwrite the running total (export-time sync from an external
        monotonic source, e.g. :class:`~repro.runtime.stats.RuntimeStats`)."""
        self._values[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._values.values())

    def child(self, **labels: Any) -> "CounterChild":
        """A write handle with the label key resolved once.

        Periodic writers (monitor daemons, echo loops) label every
        increment identically; resolving the family and canonicalising
        the label set per period was measurable bookkeeping.  The child
        writes into the same cell ``inc(**labels)`` would — totals and
        snapshots are indistinguishable.
        """
        return CounterChild(self, _label_key(labels))

    def label_sets(self) -> List[LabelKey]:
        return sorted(self._values)


class CounterChild:
    """Pre-labeled :class:`Counter` writer (see :meth:`Counter.child`)."""

    __slots__ = ("_values", "_key")

    def __init__(self, counter: Counter, key: LabelKey):
        self._values = counter._values
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counter cannot decrease")
        self._values[self._key] = self._values.get(self._key, 0.0) + float(amount)


class Gauge(_Metric):
    """Last-written value per label set, with the sim time it was set."""

    kind = "gauge"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = ""):
        super().__init__(registry, name, help)
        self._values: Dict[LabelKey, Tuple[float, float]] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = (self.registry.now, float(value))

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        _, current = self._values.get(key, (0.0, 0.0))
        self._values[key] = (self.registry.now, current + float(amount))

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), (0.0, 0.0))[1]

    def set_at(self, **labels: Any) -> float:
        """Sim time of the last write for this label set."""
        return self._values.get(_label_key(labels), (0.0, 0.0))[0]

    def label_sets(self) -> List[LabelKey]:
        return sorted(self._values)


class Histogram(_Metric):
    """Fixed-bucket distribution with Prometheus ``le`` semantics.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit +Inf bucket catches everything above the last edge.  A
    value exactly equal to an edge counts in that edge's bucket
    (``le`` = less-than-or-**equal**).
    """

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(registry, name, help)
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(f"histogram {name!r} buckets must strictly increase")
        self.buckets = edges
        #: per label set: [per-finite-bucket counts..., +Inf count]
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * (len(self.buckets) + 1)
            self._sums[key] = 0.0
        # bisect_left: first edge >= value, i.e. the smallest bucket
        # whose inclusive upper bound admits the value
        counts[bisect.bisect_left(self.buckets, float(value))] += 1
        self._sums[key] += float(value)

    def bucket_counts(self, **labels: Any) -> List[int]:
        """Non-cumulative per-bucket counts (finite edges then +Inf)."""
        key = _label_key(labels)
        return list(self._counts.get(key, [0] * (len(self.buckets) + 1)))

    def cumulative_counts(self, **labels: Any) -> List[int]:
        """Cumulative counts as the Prometheus exposition reports them."""
        total = 0
        out = []
        for n in self.bucket_counts(**labels):
            total += n
            out.append(total)
        return out

    def sum(self, **labels: Any) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def count(self, **labels: Any) -> int:
        return sum(self.bucket_counts(**labels))

    def label_sets(self) -> List[LabelKey]:
        return sorted(self._counts)


class Series(_Metric):
    """Append-only ``(time, value)`` pairs per label set.

    The substrate for per-host load and queue-depth timelines; the JSON
    snapshot carries the full series, the Prometheus exposition exports
    the latest value as a gauge.
    """

    kind = "series"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = ""):
        super().__init__(registry, name, help)
        self._points: Dict[LabelKey, List[Tuple[float, float]]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        self._points.setdefault(_label_key(labels), []).append(
            (self.registry.now, float(value))
        )

    def points(self, **labels: Any) -> List[Tuple[float, float]]:
        return list(self._points.get(_label_key(labels), ()))

    def last(self, **labels: Any) -> Optional[Tuple[float, float]]:
        pts = self._points.get(_label_key(labels))
        return pts[-1] if pts else None

    def child(self, **labels: Any) -> "SeriesChild":
        """A pre-labeled append handle (see :meth:`Counter.child`).

        The label entry is created lazily on the first observation, so
        an unused child never adds an empty series to the snapshot.
        """
        return SeriesChild(self, _label_key(labels))

    def label_sets(self) -> List[LabelKey]:
        return sorted(self._points)


class SeriesChild:
    """Pre-labeled :class:`Series` writer (see :meth:`Series.child`)."""

    __slots__ = ("_series", "_key", "_pts")

    def __init__(self, series: Series, key: LabelKey):
        self._series = series
        self._key = key
        self._pts: Optional[List[Tuple[float, float]]] = None

    def observe(self, value: float) -> None:
        pts = self._pts
        if pts is None:
            pts = self._pts = self._series._points.setdefault(self._key, [])
        pts.append((self._series.registry.now, float(value)))


class MetricsRegistry:
    """One deployment's metric families, keyed by name.

    Families are get-or-create: ``registry.counter("x")`` returns the
    same :class:`Counter` every time; asking for an existing name with a
    different kind is an error (one name, one kind — the Prometheus
    rule).
    """

    enabled: bool = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        self._metrics: Dict[str, _Metric] = {}

    # -- clock -------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the registry at a (new) time source."""
        self._clock = clock

    @property
    def now(self) -> float:
        return float(self._clock())

    # -- family accessors --------------------------------------------------

    def _family(self, cls, name: str, help: str, **kwargs) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(self, name, help=help, **kwargs)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._family(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._family(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._family(Histogram, name, help, buckets=buckets)

    def series(self, name: str, help: str = "") -> Series:
        return self._family(Series, name, help)

    # -- access ------------------------------------------------------------

    def metrics(self) -> List[_Metric]:
        """Every registered family, sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- snapshots (implemented in repro.metrics.export) -------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic plain-dict snapshot of every family."""
        from repro.metrics.export import registry_snapshot

        return registry_snapshot(self)

    def snapshot_json(self) -> str:
        from repro.metrics.export import snapshot_to_json

        return snapshot_to_json(self.snapshot())

    def snapshot_hash(self) -> str:
        from repro.metrics.export import snapshot_hash

        return snapshot_hash(self.snapshot())

    def prometheus(self) -> str:
        """The Prometheus text exposition of the current state."""
        from repro.metrics.export import prometheus_text

        return prometheus_text(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self._metrics)} families, t={self.now:.6g})"


class _NullMetric(Counter, Gauge, Histogram, Series):  # type: ignore[misc]
    """Accepts every metric-object operation and records nothing."""

    kind = "null"

    def __init__(self):  # noqa: D401 - deliberately skips parents
        self.name = ""
        self.help = ""
        self.buckets = DEFAULT_BUCKETS

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def set_total(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return 0.0

    def child(self, **labels: Any) -> "_NullMetric":
        return self

    def label_sets(self) -> List[LabelKey]:
        return []


_NULL_METRIC = _NullMetric()


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: every family accessor returns a no-op."""

    enabled = False

    def __init__(self):
        super().__init__()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def counter(self, name: str, help: str = "") -> Counter:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> Gauge:
        return _NULL_METRIC

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return _NULL_METRIC

    def series(self, name: str, help: str = "") -> Series:
        return _NULL_METRIC

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullMetricsRegistry()"


#: shared disabled registry — safe because it holds no state
NULL_METRICS = NullMetricsRegistry()

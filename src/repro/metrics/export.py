"""Metric exporters: canonical JSON snapshots + Prometheus text format.

Two views of one :class:`~repro.metrics.registry.MetricsRegistry`:

* the **JSON snapshot** — complete (including full time series), sorted
  at every level, canonically serialised; :func:`snapshot_hash` over it
  is the metrics-side counterpart of the trace-hash oracle, and the
  determinism suite asserts byte-identity across same-seed runs;
* the **Prometheus exposition** (text format 0.0.4) — counters, gauges
  and cumulative-bucket histograms, with label values escaped per the
  spec; series export their latest value as a gauge.  The output is
  what the Flask editor's ``/metrics`` route serves.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, List, Tuple, Union

from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
)

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "prometheus_from_snapshot",
    "prometheus_text",
    "registry_snapshot",
    "snapshot_hash",
    "snapshot_to_json",
    "load_snapshot",
    "save_snapshot",
]

#: version of the snapshot-file layout.  Carried in the file and
#: checked by :func:`load_snapshot`; deliberately *excluded* from
#: :func:`snapshot_hash` so stamping it never invalidated committed
#: behaviour hashes.
METRICS_SCHEMA_VERSION = 1

LabelKey = Tuple[Tuple[str, str], ...]


def _labels_id(key: LabelKey) -> str:
    """Snapshot dict key for one label set: ``"host=a,site=b"`` (sorted)."""
    return ",".join(f"{k}={v}" for k, v in key)


def _parse_labels_id(labels_id: str) -> List[Tuple[str, str]]:
    if not labels_id:
        return []
    return [tuple(part.split("=", 1)) for part in labels_id.split(",")]


# -- JSON snapshot ----------------------------------------------------------


def registry_snapshot(registry: MetricsRegistry) -> Dict[str, Any]:
    """Plain-dict snapshot: every family, every label set, sorted."""
    snap: Dict[str, Any] = {
        "schema_version": METRICS_SCHEMA_VERSION,
        "counters": {},
        "gauges": {},
        "histograms": {},
        "series": {},
    }
    for metric in registry.metrics():
        if isinstance(metric, Counter):
            snap["counters"][metric.name] = {
                "help": metric.help,
                "values": {
                    _labels_id(key): metric._values[key]
                    for key in metric.label_sets()
                },
            }
        elif isinstance(metric, Gauge):
            snap["gauges"][metric.name] = {
                "help": metric.help,
                "values": {
                    _labels_id(key): list(metric._values[key])
                    for key in metric.label_sets()
                },
            }
        elif isinstance(metric, Histogram):
            snap["histograms"][metric.name] = {
                "help": metric.help,
                "buckets": list(metric.buckets),
                "values": {
                    _labels_id(key): {
                        "counts": metric._counts[key],
                        "sum": metric._sums[key],
                        "count": sum(metric._counts[key]),
                    }
                    for key in metric.label_sets()
                },
            }
        elif isinstance(metric, Series):
            snap["series"][metric.name] = {
                "help": metric.help,
                "values": {
                    _labels_id(key): [list(p) for p in metric._points[key]]
                    for key in metric.label_sets()
                },
            }
    return snap


def snapshot_to_json(snapshot: Dict[str, Any]) -> str:
    """Canonical serialisation (sorted keys, minimal separators)."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":")) + "\n"


def snapshot_hash(snapshot: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON — the snapshot's stable identity.

    The ``schema_version`` stamp describes the *file layout*, not the
    run's behaviour, so it is dropped before hashing.
    """
    hashed = {k: v for k, v in snapshot.items() if k != "schema_version"}
    return hashlib.sha256(snapshot_to_json(hashed).encode("utf-8")).hexdigest()


def save_snapshot(
    source: Union[MetricsRegistry, Dict[str, Any]], path: str
) -> str:
    """Write a registry's (or pre-taken snapshot's) canonical JSON."""
    snapshot = (
        source.snapshot() if isinstance(source, MetricsRegistry) else source
    )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(snapshot_to_json(snapshot))
    return path


def load_snapshot(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        snapshot = json.load(fh)
    version = snapshot.get("schema_version", METRICS_SCHEMA_VERSION)
    if version != METRICS_SCHEMA_VERSION:
        raise ValueError(
            f"metrics snapshot schema_version {version!r} is not supported "
            f"(this build reads version {METRICS_SCHEMA_VERSION})"
        )
    for section in ("counters", "gauges", "histograms", "series"):
        snapshot.setdefault(section, {})
    return snapshot


# -- Prometheus text format -------------------------------------------------


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(pairs: Iterable[Tuple[str, str]]) -> str:
    rendered = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in pairs
    )
    return f"{{{rendered}}}" if rendered else ""


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    as_int = int(value)
    return str(as_int) if as_int == value else repr(value)


def _header(lines: List[str], name: str, help: str, kind: str) -> None:
    if help:
        lines.append(f"# HELP {name} {_escape_help(help)}")
    lines.append(f"# TYPE {name} {kind}")


def prometheus_from_snapshot(snapshot: Dict[str, Any]) -> str:
    """Render a JSON snapshot in the Prometheus text exposition format."""
    lines: List[str] = []

    for name in sorted(snapshot.get("counters", {})):
        family = snapshot["counters"][name]
        _header(lines, name, family.get("help", ""), "counter")
        for labels_id in sorted(family["values"]):
            labels = _render_labels(_parse_labels_id(labels_id))
            lines.append(f"{name}{labels} {_fmt(family['values'][labels_id])}")

    for name in sorted(snapshot.get("gauges", {})):
        family = snapshot["gauges"][name]
        _header(lines, name, family.get("help", ""), "gauge")
        for labels_id in sorted(family["values"]):
            labels = _render_labels(_parse_labels_id(labels_id))
            _, value = family["values"][labels_id]
            lines.append(f"{name}{labels} {_fmt(value)}")

    for name in sorted(snapshot.get("histograms", {})):
        family = snapshot["histograms"][name]
        _header(lines, name, family.get("help", ""), "histogram")
        edges = [_fmt(b) for b in family["buckets"]] + ["+Inf"]
        for labels_id in sorted(family["values"]):
            pairs = _parse_labels_id(labels_id)
            state = family["values"][labels_id]
            cumulative = 0
            for edge, count in zip(edges, state["counts"]):
                cumulative += count
                bucket_labels = _render_labels(pairs + [("le", edge)])
                lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
            labels = _render_labels(pairs)
            lines.append(f"{name}_sum{labels} {_fmt(state['sum'])}")
            lines.append(f"{name}_count{labels} {state['count']}")

    # series: latest value as a gauge (the full series lives in the JSON)
    for name in sorted(snapshot.get("series", {})):
        family = snapshot["series"][name]
        _header(lines, name, family.get("help", ""), "gauge")
        for labels_id in sorted(family["values"]):
            points = family["values"][labels_id]
            if not points:
                continue
            labels = _render_labels(_parse_labels_id(labels_id))
            lines.append(f"{name}{labels} {_fmt(points[-1][1])}")

    return "\n".join(lines) + ("\n" if lines else "")


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry's current state in the Prometheus text format."""
    return prometheus_from_snapshot(registry_snapshot(registry))

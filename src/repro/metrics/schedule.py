"""Graph-level schedule metrics: critical path, serial cost, SLR, speedup."""

from __future__ import annotations

from typing import Callable, Optional

from repro.afg.graph import ApplicationFlowGraph
from repro.afg.levels import compute_levels
from repro.repository.taskperf import TaskPerformanceDB

__all__ = ["critical_path_cost", "serial_cost", "slr", "speedup"]

CostFn = Callable[[str], float]


def _default_cost(afg: ApplicationFlowGraph, task_perf: TaskPerformanceDB) -> CostFn:
    def cost(task_id: str) -> float:
        node = afg.task(task_id)
        return task_perf.base_cost(node.task_type, node.properties.workload_scale)

    return cost


def critical_path_cost(
    afg: ApplicationFlowGraph,
    task_perf: Optional[TaskPerformanceDB] = None,
    cost: Optional[CostFn] = None,
) -> float:
    """Computation-only critical path on the base processor.

    This is exactly the maximum *level* over entry nodes — the quantity
    the VDCE priority metric is built from.
    """
    if cost is None:
        if task_perf is None:
            raise ValueError("provide either task_perf or cost")
        cost = _default_cost(afg, task_perf)
    levels = compute_levels(afg, cost)
    return max(levels.values(), default=0.0)


def serial_cost(
    afg: ApplicationFlowGraph,
    task_perf: Optional[TaskPerformanceDB] = None,
    cost: Optional[CostFn] = None,
) -> float:
    """Total base-processor work (serial execution time, zero comm)."""
    if cost is None:
        if task_perf is None:
            raise ValueError("provide either task_perf or cost")
        cost = _default_cost(afg, task_perf)
    return sum(cost(t.id) for t in afg)


def slr(makespan: float, cp_cost: float) -> float:
    """Schedule Length Ratio: makespan / critical-path cost (>= is worse)."""
    if cp_cost <= 0:
        raise ValueError("critical-path cost must be positive")
    if makespan < 0:
        raise ValueError("makespan must be non-negative")
    return makespan / cp_cost


def speedup(makespan: float, serial: float) -> float:
    """Serial base-processor time / parallel makespan."""
    if makespan <= 0:
        raise ValueError("makespan must be positive")
    if serial < 0:
        raise ValueError("serial cost must be non-negative")
    return serial / makespan

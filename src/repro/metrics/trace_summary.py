"""Aggregation over structured traces: counts, phase timings, summary.

A trace is the raw substrate; this module turns it into the two views
benchmarks and the CLI actually read:

* **event counts** by kind — the trace-side mirror of
  :class:`~repro.runtime.stats.RuntimeStats`;
* **phase timings** from span events — how much virtual time went to
  scheduling vs. allocation vs. channel setup vs. execution, so
  benches can attribute end-to-end cost per phase.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

from repro.metrics.tables import format_table
from repro.trace.events import EventKind, TraceEvent
from repro.trace.tracer import Tracer

__all__ = [
    "event_counts",
    "events_by_source",
    "format_trace_summary",
    "phase_timings",
]

TraceLike = Union[Tracer, Sequence[TraceEvent]]


def _events_of(trace: TraceLike) -> List[TraceEvent]:
    if isinstance(trace, Tracer):
        return trace.events()
    return list(trace)


def event_counts(trace: TraceLike) -> Dict[str, int]:
    """How many events of each kind the trace holds (sorted by kind)."""
    counts: Dict[str, int] = {}
    for event in _events_of(trace):
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return dict(sorted(counts.items()))


def events_by_source(trace: TraceLike) -> Dict[str, int]:
    """Event volume per emitting component (sorted by source)."""
    counts: Dict[str, int] = {}
    for event in _events_of(trace):
        counts[event.source] = counts.get(event.source, 0) + 1
    return dict(sorted(counts.items()))


def phase_timings(trace: TraceLike) -> Dict[str, Dict[str, float]]:
    """Per-span-name aggregate timings from span events.

    Returns ``{span_name: {"count": n, "total_s": sum, "max_s": max,
    "unclosed": k}}``.  Span events need not be balanced: begin/end
    pairs are matched by ``span_id``, nested spans of the same name
    aggregate independently, a ``span_begin`` with no matching end is
    reported in ``unclosed`` (count/total cover completed spans only),
    and a stray ``span_end`` still contributes its measured duration.
    """
    result: Dict[str, Dict[str, float]] = {}

    def agg_of(name: str) -> Dict[str, float]:
        return result.setdefault(
            name, {"count": 0, "total_s": 0.0, "max_s": 0.0, "unclosed": 0}
        )

    #: open span_id -> span name (for begin/end pairing)
    open_spans: Dict[object, str] = {}
    for event in _events_of(trace):
        if event.kind == EventKind.SPAN_BEGIN:
            name = str(event.data.get("span", ""))
            agg_of(name)["unclosed"] += 1
            span_id = event.data.get("span_id")
            if span_id is not None:
                open_spans[span_id] = name
        elif event.kind == EventKind.SPAN_END:
            name = str(event.data.get("span", ""))
            duration = float(event.data.get("duration", 0.0))
            span_id = event.data.get("span_id")
            agg = agg_of(open_spans.pop(span_id, name))
            if agg["unclosed"] > 0:
                agg["unclosed"] -= 1
            agg["count"] += 1
            agg["total_s"] += duration
            agg["max_s"] = max(agg["max_s"], duration)
    return dict(sorted(result.items()))


def format_trace_summary(trace: TraceLike, title: str = "trace summary") -> str:
    """Render the counts + phase-timing tables (the CLI's ``--trace`` view)."""
    events = _events_of(trace)
    counts = event_counts(events)
    count_rows = [{"event": kind, "count": n} for kind, n in counts.items()]
    sections = [
        format_table(count_rows, title=f"{title} — {len(events)} events"),
    ]
    # empty phases (no completed span, nothing left open — e.g. monitor
    # phases of a run with monitoring off) are suppressed entirely
    timing_rows = [
        {
            "phase": name,
            "count": int(agg["count"]),
            "total_s": round(agg["total_s"], 4),
            "max_s": round(agg["max_s"], 4),
            "unclosed": int(agg["unclosed"]),
        }
        for name, agg in phase_timings(events).items()
        if agg["count"] or agg["unclosed"]
    ]
    if timing_rows:
        sections.append(format_table(timing_rows, title="phase timings"))
    return "\n\n".join(sections)

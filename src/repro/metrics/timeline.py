"""Execution timelines: utilisation and concurrency over time.

Derived purely from an :class:`~repro.runtime.execution.ApplicationResult`'s
task records, these power the visualisation service's "application
performance" views (paper §4.2) and several experiment assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.runtime.execution import ApplicationResult

__all__ = ["busy_intervals", "concurrency_profile", "parallel_efficiency"]


def busy_intervals(result: ApplicationResult) -> Dict[str, List[Tuple[float, float]]]:
    """Per-host sorted (start, finish) intervals of task residence."""
    intervals: Dict[str, List[Tuple[float, float]]] = {}
    for record in result.records.values():
        for host in record.hosts:
            intervals.setdefault(host, []).append(
                (record.started_at, record.finished_at)
            )
    for host in intervals:
        intervals[host].sort()
    return intervals


def concurrency_profile(result: ApplicationResult) -> List[Tuple[float, int]]:
    """Step function ``(time, #tasks running)`` over the execution.

    Times are the task start/finish instants; between consecutive
    entries the concurrency is constant.  The profile starts at the
    startup signal and ends at the last finish with concurrency 0.
    """
    events: List[Tuple[float, int]] = []
    for record in result.records.values():
        events.append((record.started_at, +1))
        events.append((record.finished_at, -1))
    events.sort()
    profile: List[Tuple[float, int]] = []
    running = 0
    for time, delta in events:
        running += delta
        if profile and profile[-1][0] == time:
            profile[-1] = (time, running)
        else:
            profile.append((time, running))
    return profile


def _union_length(intervals: List[Tuple[float, float]]) -> float:
    """Total length of the union of (already sorted) intervals."""
    total = 0.0
    current_start, current_end = None, None
    for start, end in intervals:
        if current_end is None or start > current_end:
            if current_end is not None:
                total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    if current_end is not None:
        total += current_end - current_start
    return total


def parallel_efficiency(result: ApplicationResult) -> float:
    """Fraction of (hosts used x makespan) during which hosts held work.

    Per host, the union of its task-residence intervals counts as busy
    (co-resident tasks share the processor, so they don't double-count).
    1.0 means every used host was occupied for the whole makespan; low
    values flag serialisation (chains) or placement imbalance.
    """
    if result.makespan <= 0:
        return 0.0
    intervals = busy_intervals(result)
    if not intervals:
        return 0.0
    busy = sum(_union_length(iv) for iv in intervals.values())
    return busy / (len(intervals) * result.makespan)

"""Metrics over schedules and execution results (experiment currency).

The paper's scheduler objective is "to minimize the schedule length
(total execution time)"; everything here quantifies that and its usual
companions from the list-scheduling literature: SLR (schedule length
ratio against the computation-only critical path), speedup against
serial execution on the base processor, host utilisation, and the
communication share of the makespan.
"""

from repro.metrics.analysis import (
    analyze_trace,
    critical_path,
    format_analysis,
    format_structural_diff,
    host_timelines,
    schedule_lag,
    structural_diff,
)
from repro.metrics.export import (
    METRICS_SCHEMA_VERSION,
    load_snapshot,
    prometheus_from_snapshot,
    prometheus_text,
    registry_snapshot,
    save_snapshot,
    snapshot_hash,
    snapshot_to_json,
)
from repro.metrics.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    Series,
)
from repro.metrics.schedule import (
    critical_path_cost,
    serial_cost,
    slr,
    speedup,
)
from repro.metrics.results import (
    ResultSummary,
    host_utilization,
    summarize_result,
)
from repro.metrics.tables import format_table
from repro.metrics.timeline import (
    busy_intervals,
    concurrency_profile,
    parallel_efficiency,
)
from repro.metrics.trace_summary import (
    event_counts,
    events_by_source,
    format_trace_summary,
    phase_timings,
)

__all__ = [
    "Counter",
    "METRICS_SCHEMA_VERSION",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
    "ResultSummary",
    "Series",
    "analyze_trace",
    "critical_path",
    "format_analysis",
    "format_structural_diff",
    "host_timelines",
    "load_snapshot",
    "prometheus_from_snapshot",
    "prometheus_text",
    "registry_snapshot",
    "save_snapshot",
    "schedule_lag",
    "snapshot_hash",
    "snapshot_to_json",
    "structural_diff",
    "busy_intervals",
    "concurrency_profile",
    "parallel_efficiency",
    "critical_path_cost",
    "event_counts",
    "events_by_source",
    "format_table",
    "format_trace_summary",
    "host_utilization",
    "phase_timings",
    "serial_cost",
    "slr",
    "speedup",
    "summarize_result",
]

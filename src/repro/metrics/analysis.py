"""Trace-analysis toolkit: derived views over PR 1's structured traces.

The trace stream records *what happened*; this module answers the
questions benchmarks and humans actually ask of a run:

* :func:`critical_path` — the longest dependency chain through the
  observed task executions (edges reconstructed from ``data_transfer``
  events), in measured time;
* :func:`host_timelines` — per-host busy/idle intervals and the
  utilization fraction over the run's execution window;
* :func:`schedule_lag` — per-task delay between the scheduler's
  ``schedule_decision`` and the eventual ``task_start`` (allocation
  distribution + channel setup + input waiting);
* :func:`analyze_trace` / :func:`format_analysis` — the one-call
  summary behind ``python -m repro analyze <trace>``;
* :func:`structural_diff` / :func:`format_structural_diff` — compare
  two runs: first divergent event and per-kind count deltas, the
  workflow for debugging a scheduling change
  (``python -m repro analyze <a> <b>``).

Everything consumes a plain event sequence (a :class:`Tracer` works
too), so saved JSONL traces round-trip through
:func:`repro.trace.serialize.read_jsonl` unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.metrics.tables import format_table
from repro.metrics.trace_summary import event_counts, phase_timings
from repro.trace.events import EventKind, TraceEvent
from repro.trace.serialize import event_to_json
from repro.trace.tracer import Tracer

__all__ = [
    "analyze_trace",
    "critical_path",
    "format_analysis",
    "format_structural_diff",
    "host_timelines",
    "schedule_lag",
    "structural_diff",
]

TraceLike = Union[Tracer, Sequence[TraceEvent]]


def _events_of(trace: TraceLike) -> List[TraceEvent]:
    if isinstance(trace, Tracer):
        return trace.events()
    return list(trace)


def _task_intervals(events: Sequence[TraceEvent]) -> Dict[str, Dict[str, Any]]:
    """task id -> {start, finish, duration, hosts} from task_start/finish.

    A rescheduled task re-enters via the same record (latest start wins);
    tasks still running at capture time have no finish and are skipped.
    """
    intervals: Dict[str, Dict[str, Any]] = {}
    for event in events:
        task = event.data.get("task")
        if task is None:
            continue
        if event.kind == EventKind.TASK_START:
            intervals[str(task)] = {
                "start": event.time,
                "finish": None,
                "hosts": [str(h) for h in event.data.get("hosts", ())],
            }
        elif event.kind == EventKind.TASK_FINISH:
            record = intervals.get(str(task))
            if record is None:
                record = intervals[str(task)] = {
                    "start": event.time,
                    "finish": None,
                    "hosts": [str(h) for h in event.data.get("hosts", ())],
                }
            record["finish"] = event.time
    return {
        task: {**rec, "duration": rec["finish"] - rec["start"]}
        for task, rec in intervals.items()
        if rec["finish"] is not None
    }


def _task_edges(events: Sequence[TraceEvent]) -> List[Tuple[str, str]]:
    """Dependency edges observed as dataflow transfers (src task, dst task)."""
    edges = []
    seen = set()
    for event in events:
        if event.kind != EventKind.DATA_TRANSFER:
            continue
        edge = event.data.get("edge")
        if not edge or len(edge) != 2:
            continue
        pair = (str(edge[0]), str(edge[1]))
        if pair not in seen:
            seen.add(pair)
            edges.append(pair)
    return edges


def critical_path(trace: TraceLike) -> Dict[str, Any]:
    """Longest measured-time dependency chain through the executed tasks.

    Returns ``{"length_s", "tasks", "path"}`` — the chain's total
    measured time, the number of tasks executed, and the task ids along
    the chain (empty when the trace has no completed tasks).
    """
    events = _events_of(trace)
    intervals = _task_intervals(events)
    if not intervals:
        return {"length_s": 0.0, "tasks": 0, "path": []}

    children: Dict[str, List[str]] = {}
    parents_count: Dict[str, int] = {t: 0 for t in intervals}
    for src, dst in _task_edges(events):
        if src in intervals and dst in intervals:
            children.setdefault(src, []).append(dst)
            parents_count[dst] += 1

    # longest path by accumulated duration, walking a topological order
    # (the AFG is acyclic; observed edges are a subgraph of it)
    order: List[str] = [t for t in sorted(intervals) if parents_count[t] == 0]
    remaining = dict(parents_count)
    queue = list(order)
    while queue:
        current = queue.pop(0)
        for child in sorted(children.get(current, ())):
            remaining[child] -= 1
            if remaining[child] == 0:
                order.append(child)
                queue.append(child)

    best_cost: Dict[str, float] = {}
    best_parent: Dict[str, Optional[str]] = {}
    for task in order:
        incoming = [
            (best_cost[p], p)
            for p, kids in children.items()
            if task in kids and p in best_cost
        ]
        cost, parent = max(incoming, default=(0.0, None))
        best_cost[task] = cost + intervals[task]["duration"]
        best_parent[task] = parent

    if not best_cost:
        return {"length_s": 0.0, "tasks": len(intervals), "path": []}
    tail = max(sorted(best_cost), key=lambda t: best_cost[t])
    path: List[str] = []
    cursor: Optional[str] = tail
    while cursor is not None:
        path.append(cursor)
        cursor = best_parent[cursor]
    path.reverse()
    return {
        "length_s": best_cost[tail],
        "tasks": len(intervals),
        "path": path,
    }


def host_timelines(trace: TraceLike) -> Dict[str, Dict[str, Any]]:
    """Per-host busy intervals + utilization over the execution window.

    The window runs from the first ``task_start`` to the last
    ``task_finish``; a host's busy time is the union of the execution
    intervals of tasks placed on it (overlaps merged), idle time is the
    window's remainder.
    """
    intervals = _task_intervals(_events_of(trace))
    if not intervals:
        return {}
    window_start = min(r["start"] for r in intervals.values())
    window_end = max(r["finish"] for r in intervals.values())
    window = max(window_end - window_start, 0.0)

    raw: Dict[str, List[Tuple[float, float]]] = {}
    for record in intervals.values():
        for host in record["hosts"]:
            raw.setdefault(host, []).append((record["start"], record["finish"]))

    timelines: Dict[str, Dict[str, Any]] = {}
    for host in sorted(raw):
        merged: List[List[float]] = []
        for start, finish in sorted(raw[host]):
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], finish)
            else:
                merged.append([start, finish])
        busy = sum(finish - start for start, finish in merged)
        timelines[host] = {
            "busy_s": busy,
            "idle_s": max(window - busy, 0.0),
            "utilization": (busy / window) if window > 0 else 0.0,
            "intervals": [tuple(iv) for iv in merged],
            "tasks": sum(
                1 for r in intervals.values() if host in r["hosts"]
            ),
        }
    return timelines


def schedule_lag(trace: TraceLike) -> Dict[str, Any]:
    """Schedule-to-execute lag: ``schedule_decision`` -> ``task_start``.

    Returns ``{"per_task": {task: lag_s}, "mean_s", "max_s", "count"}``;
    tasks that never started (or were scheduled in a different trace)
    are simply absent.
    """
    events = _events_of(trace)
    decided_at: Dict[str, float] = {}
    lags: Dict[str, float] = {}
    for event in events:
        task = event.data.get("task")
        if task is None:
            continue
        task = str(task)
        if event.kind == EventKind.SCHEDULE_DECISION:
            decided_at.setdefault(task, event.time)
        elif event.kind == EventKind.TASK_START and task in decided_at:
            lags.setdefault(task, event.time - decided_at[task])
    values = list(lags.values())
    return {
        "per_task": lags,
        "mean_s": (sum(values) / len(values)) if values else 0.0,
        "max_s": max(values, default=0.0),
        "count": len(values),
    }


def analyze_trace(trace: TraceLike) -> Dict[str, Any]:
    """The full single-trace analysis: one dict, JSON-safe."""
    events = _events_of(trace)
    times = [e.time for e in events]
    return {
        "events": len(events),
        "time_span_s": (max(times) - min(times)) if times else 0.0,
        "event_counts": event_counts(events),
        "critical_path": critical_path(events),
        "host_timelines": host_timelines(events),
        "schedule_lag": schedule_lag(events),
        "phase_timings": phase_timings(events),
    }


def format_analysis(trace: TraceLike, title: str = "trace analysis") -> str:
    """Render :func:`analyze_trace` for terminals (the CLI's view)."""
    events = _events_of(trace)
    report = analyze_trace(events)
    lines = [
        f"{title} — {report['events']} events "
        f"over {report['time_span_s']:.3f}s"
    ]

    cp = report["critical_path"]
    if cp["path"]:
        lines.append(
            f"critical path: {cp['length_s']:.3f}s through "
            f"{len(cp['path'])} of {cp['tasks']} tasks: "
            + " -> ".join(cp["path"])
        )
    else:
        lines.append("critical path: no completed tasks in trace")

    lag = report["schedule_lag"]
    if lag["count"]:
        lines.append(
            f"schedule->start lag: mean {lag['mean_s']:.4f}s  "
            f"max {lag['max_s']:.4f}s  over {lag['count']} tasks"
        )

    timelines = report["host_timelines"]
    if timelines:
        rows = [
            {
                "host": host,
                "tasks": tl["tasks"],
                "busy_s": round(tl["busy_s"], 4),
                "idle_s": round(tl["idle_s"], 4),
                "util": round(tl["utilization"], 4),
            }
            for host, tl in timelines.items()
        ]
        lines.append("")
        lines.append(format_table(rows, title="per-host utilization"))

    timing_rows = [
        {
            "phase": name,
            "count": int(agg["count"]),
            "total_s": round(agg["total_s"], 4),
            "unclosed": int(agg["unclosed"]),
        }
        for name, agg in report["phase_timings"].items()
        if agg["count"] or agg["unclosed"]
    ]
    if timing_rows:
        lines.append("")
        lines.append(format_table(timing_rows, title="phase timings"))
    return "\n".join(lines)


# -- structural diff --------------------------------------------------------


def structural_diff(a: TraceLike, b: TraceLike) -> Dict[str, Any]:
    """Structural comparison of two traces.

    Returns::

        {
          "identical": bool,
          "lengths": (len_a, len_b),
          "first_divergence": None | {"index", "a", "b"},
          "count_deltas": {kind: {"a": n, "b": m}},   # differing kinds only
        }

    ``first_divergence`` carries the two events (dict form; ``None`` on
    the shorter side when one trace is a prefix of the other).
    """
    events_a, events_b = _events_of(a), _events_of(b)
    first: Optional[Dict[str, Any]] = None
    for index, (ea, eb) in enumerate(zip(events_a, events_b)):
        if event_to_json(ea) != event_to_json(eb):
            first = {"index": index, "a": ea.to_dict(), "b": eb.to_dict()}
            break
    if first is None and len(events_a) != len(events_b):
        index = min(len(events_a), len(events_b))
        longer = events_a if len(events_a) > len(events_b) else events_b
        first = {
            "index": index,
            "a": events_a[index].to_dict() if len(events_a) > index else None,
            "b": events_b[index].to_dict() if len(events_b) > index else None,
        }

    counts_a, counts_b = event_counts(events_a), event_counts(events_b)
    deltas = {
        kind: {"a": counts_a.get(kind, 0), "b": counts_b.get(kind, 0)}
        for kind in sorted(set(counts_a) | set(counts_b))
        if counts_a.get(kind, 0) != counts_b.get(kind, 0)
    }
    return {
        "identical": first is None,
        "lengths": (len(events_a), len(events_b)),
        "first_divergence": first,
        "count_deltas": deltas,
    }


def _render_event(payload: Optional[Dict[str, Any]]) -> str:
    if payload is None:
        return "(absent — trace ended)"
    return (
        f"t={payload['time']:.6g} #{payload['seq']} {payload['kind']} "
        f"{payload['source']} {payload['data']}"
    )


def format_structural_diff(a: TraceLike, b: TraceLike) -> str:
    """Render :func:`structural_diff` for terminals."""
    report = structural_diff(a, b)
    len_a, len_b = report["lengths"]
    if report["identical"]:
        return f"traces are identical ({len_a} events)"
    lines = [f"traces differ: a has {len_a} events, b has {len_b}"]
    divergence = report["first_divergence"]
    if divergence is not None:
        lines.append(f"first divergence at event {divergence['index']}:")
        lines.append(f"  a: {_render_event(divergence['a'])}")
        lines.append(f"  b: {_render_event(divergence['b'])}")
    if report["count_deltas"]:
        rows = [
            {
                "event": kind,
                "a": entry["a"],
                "b": entry["b"],
                "delta": entry["b"] - entry["a"],
            }
            for kind, entry in report["count_deltas"].items()
        ]
        lines.append("")
        lines.append(format_table(rows, title="event-count deltas"))
    return "\n".join(lines)

"""Metrics over :class:`~repro.runtime.execution.ApplicationResult`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.afg.graph import ApplicationFlowGraph
from repro.metrics.schedule import critical_path_cost, serial_cost, slr, speedup
from repro.repository.taskperf import TaskPerformanceDB
from repro.runtime.execution import ApplicationResult
from repro.sim.topology import Topology

__all__ = ["ResultSummary", "host_utilization", "summarize_result"]


@dataclass(frozen=True)
class ResultSummary:
    """Everything an experiment row reports about one run."""

    application: str
    scheduler: str
    makespan: float
    setup_time: float
    total_time: float
    slr: float
    speedup: float
    n_tasks: int
    n_sites: int
    n_hosts: int
    reschedules: int
    data_transferred_mb: float
    prediction_error: float  # mean relative |measured - predicted| / predicted

    def row(self) -> Dict[str, object]:
        return {
            "scheduler": self.scheduler,
            "makespan_s": round(self.makespan, 3),
            "slr": round(self.slr, 3),
            "speedup": round(self.speedup, 3),
            "setup_s": round(self.setup_time, 4),
            "sites": self.n_sites,
            "hosts": self.n_hosts,
            "resched": self.reschedules,
            "moved_mb": round(self.data_transferred_mb, 2),
            "pred_err": round(self.prediction_error, 3),
        }


def summarize_result(
    result: ApplicationResult,
    afg: ApplicationFlowGraph,
    task_perf: TaskPerformanceDB,
) -> ResultSummary:
    cp = critical_path_cost(afg, task_perf)
    serial = serial_cost(afg, task_perf)
    errors = [
        abs(r.measured_time - r.predicted_time) / r.predicted_time
        for r in result.records.values()
        if r.predicted_time > 0
    ]
    sites = {r.site for r in result.records.values()}
    hosts = {h for r in result.records.values() for h in r.hosts}
    return ResultSummary(
        application=result.application,
        scheduler=result.scheduler,
        makespan=result.makespan,
        setup_time=result.setup_time,
        total_time=result.total_time,
        slr=slr(result.makespan, cp),
        speedup=speedup(result.makespan, serial),
        n_tasks=len(result.records),
        n_sites=len(sites),
        n_hosts=len(hosts),
        reschedules=result.reschedules,
        data_transferred_mb=result.data_transferred_mb,
        prediction_error=sum(errors) / len(errors) if errors else 0.0,
    )


def host_utilization(topology: Topology, horizon: Optional[float] = None) -> Dict[str, float]:
    """Busy-time fraction per host since t=0 (uses host busy counters)."""
    horizon = horizon if horizon is not None else topology.sim.now
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    return {
        host.name: min(1.0, host.busy_time / horizon)
        for host in topology.all_hosts
    }

"""Plain-text result tables — the benches' reporting format."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table"]


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render dict rows as an aligned monospace table.

    Column order follows the first row's key order; missing cells render
    empty.  Numbers are right-aligned, everything else left-aligned.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)

    def cell(row: Dict[str, object], col: str) -> str:
        value = row.get(col, "")
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    rendered = [[cell(r, c) for c in columns] for r in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in rendered))
        for i in range(len(columns))
    ]

    def is_numeric(col_index: int) -> bool:
        return all(
            isinstance(rows[j].get(columns[col_index], 0), (int, float))
            for j in range(len(rows))
        )

    def fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for i, text in enumerate(cells):
            parts.append(text.rjust(widths[i]) if is_numeric(i) else text.ljust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(columns))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(r) for r in rendered)
    return "\n".join(lines)

"""repro — a full reproduction of VDCE, the Virtual Distributed Computing
Environment of Topcuoglu & Hariri, *A Global Computing Environment for
Networked Resources* (ICPP 1997).

Quick start::

    from repro import VDCE
    from repro.workloads import linear_solver_afg

    env = VDCE.standard(n_sites=2, hosts_per_site=4)
    result = env.submit(linear_solver_afg(scale=0.2), k=1)
    print(env.gantt(result))

Package map (see DESIGN.md for the full inventory):

=============  =========================================================
``core``       the :class:`VDCE` facade and deployment configuration
``sim``        discrete-event substrate: hosts, sites, links, failures
``afg``        application flow graphs (paper §2)
``tasklib``    task libraries: matrix algebra, C3I, generic (paper §2)
``editor``     Application Editor: builder, sessions, Flask web app
``repository`` the four per-site databases (paper §3)
``scheduler``  prediction, host selection, site scheduler, baselines
``runtime``    Control Manager + Data Manager + services (paper §4)
``net``        real-TCP Data Manager (paper §4.2)
``workloads``  example applications and DAG generators
``metrics``    schedule-length / SLR / speedup / utilisation metrics
``trace``      structured event tracing + deterministic trace hashing
``viz``        text Gantt + workload visualisation service
=============  =========================================================
"""

from repro.core.config import DeploymentSpec, HostConfig, SiteConfig
from repro.core.vdce import VDCE
from repro.trace import Tracer

__version__ = "1.0.0"

__all__ = [
    "DeploymentSpec",
    "HostConfig",
    "SiteConfig",
    "Tracer",
    "VDCE",
    "__version__",
]

"""Wire format of the Data Manager: length-prefixed pickled messages.

Four message types realise paper §4.2's channel lifecycle:

* :class:`ChannelSetup` — opens a channel for one AFG edge (carries the
  "resource allocation information" relevant to the channel);
* :class:`Ack` — "the communication proxy sends an acknowledgment";
* :class:`Data` — one inter-task payload;
* :class:`Fin` — orderly channel teardown.

Framing is an 8-byte big-endian length followed by the pickle of the
message object.  Pickle keeps numpy payloads fast and exact; the trust
model is a single research machine (documented in the package docstring).
"""

from __future__ import annotations

import pickle
import socket
import struct
from dataclasses import dataclass
from typing import Any, Optional, Tuple, Union

__all__ = [
    "Ack",
    "ChannelSetup",
    "Data",
    "Fin",
    "Message",
    "read_message",
    "write_message",
]

_HEADER = struct.Struct(">Q")
#: refuse frames over 256 MiB — a corrupted header otherwise allocates wild
_MAX_FRAME = 256 * 1024 * 1024

EdgeKey = Tuple[str, str, int, int]


@dataclass(frozen=True)
class ChannelSetup:
    application: str
    edge: EdgeKey
    src_host: str
    dst_host: str


@dataclass(frozen=True)
class Ack:
    application: str
    edge: EdgeKey


@dataclass(frozen=True)
class Data:
    application: str
    edge: EdgeKey
    payload: Any
    #: canonical content hash of ``payload`` (repro.hashing.value_hash),
    #: stamped by integrity-enabled senders; None = unverified channel
    content_hash: Optional[str] = None


@dataclass(frozen=True)
class Fin:
    application: str
    edge: EdgeKey


Message = Union[ChannelSetup, Ack, Data, Fin]


class WireError(ConnectionError):
    """Malformed frame or closed connection mid-frame."""


def write_message(sock: socket.socket, message: Message) -> int:
    """Serialise and send one frame; returns bytes written."""
    body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > _MAX_FRAME:
        raise WireError(f"frame too large: {len(body)} bytes")
    frame = _HEADER.pack(len(body)) + body
    sock.sendall(frame)
    return len(frame)


def _read_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise WireError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_message(sock: socket.socket) -> Message:
    """Read one frame; raises :class:`WireError` on close/corruption."""
    header = _read_exactly(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        raise WireError(f"frame header claims {length} bytes")
    body = _read_exactly(sock, length)
    message = pickle.loads(body)
    if not isinstance(message, (ChannelSetup, Ack, Data, Fin)):
        raise WireError(f"unexpected message type {type(message).__name__}")
    return message

"""Real-socket substrate for the VDCE Data Manager (paper §4.2).

"The VDCE Data Manager is a socket-based, point-to-point communication
system for inter-task communications.  The Data Manager activates the
communication proxy and sends the resource allocation information,
including the socket number, IP address for target machine, etc., that
will be used for communication channel setup.  After the setup is
completed successfully, the communication proxy sends an
acknowledgment to the Application Controller.  The execution startup
signal is sent to start the task executions."

This package implements that protocol over genuine TCP sockets on
localhost: a wire format (:mod:`messages`), per-host communication
proxies with listener threads (:mod:`proxy`), and the channel
setup/ack/data exchange (:mod:`channel`).  The simulated runtime uses
the same protocol shape over virtual links; tests cross-check the two.

The wire format uses pickle and is therefore only suitable for the
trusted, single-machine research setting it targets (exactly like the
1997 prototype's campus network).
"""

from repro.net.messages import (
    Ack,
    ChannelSetup,
    Data,
    Fin,
    Message,
    read_message,
    write_message,
)
from repro.net.proxy import CommunicationProxy, ProxyError
from repro.net.rpc import ControlPlane, RetryPolicy, RpcError, RpcTimeout

__all__ = [
    "Ack",
    "ChannelSetup",
    "CommunicationProxy",
    "ControlPlane",
    "Data",
    "Fin",
    "Message",
    "ProxyError",
    "RetryPolicy",
    "RpcError",
    "RpcTimeout",
    "read_message",
    "write_message",
]

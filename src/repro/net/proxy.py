"""Communication proxies: one per (logical) host, real TCP underneath.

A :class:`CommunicationProxy` is the per-machine agent of paper §4.2:
it listens on a localhost TCP port, accepts channel-setup requests for
the AFG edges whose *destination* task runs on its host, acknowledges
them, and delivers arriving payloads to per-edge inboxes.  The sending
side (:meth:`open_channel` / :class:`OutChannel`) connects, performs
the setup/ack handshake, and streams data.

Threading model: one accept thread per proxy, one handler thread per
inbound connection.  All blocking operations take timeouts so protocol
bugs surface as errors, never hangs.

Integrity (DESIGN §16): a channel opened with ``verify_hashes=True``
stamps every :class:`Data` frame with the payload's canonical content
hash (:func:`repro.hashing.value_hash` — the *same* function the
simulated Data Manager path records), and the receiving side recomputes
and compares before the payload ever reaches a task; a mismatch raises
the typed :class:`~repro.errors.CorruptPayloadError` in the consumer.
There is no repair ladder on this one-directional socket path — repair
needs the coordinator's lineage, which lives above the proxies — so
detection surfaces as a typed failure (invariant I13's second arm).
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import CorruptPayloadError
from repro.hashing import value_hash
from repro.net.messages import (
    Ack,
    ChannelSetup,
    Data,
    Fin,
    EdgeKey,
    read_message,
    write_message,
)

__all__ = ["CommunicationProxy", "OutChannel", "ProxyAborted", "ProxyError"]

_DEFAULT_TIMEOUT = 10.0
#: poll slice while a receive also watches an abort event
_ABORT_POLL_S = 0.05


class ProxyError(RuntimeError):
    """Channel setup/delivery failure."""


class ProxyAborted(ProxyError):
    """A receive was interrupted by the caller's abort event.

    Raised instead of waiting out the full timeout when a sibling task
    fails: the data this receive was blocked on is never coming.
    """


class OutChannel:
    """Sender end of one edge channel (created by :meth:`open_channel`)."""

    def __init__(self, sock: socket.socket, application: str, edge: EdgeKey,
                 verify_hashes: bool = False):
        self._sock = sock
        self.application = application
        self.edge = edge
        self.bytes_sent = 0
        self._closed = False
        #: stamp Data frames with the payload's content hash
        self.verify_hashes = verify_hashes
        #: test hook: corrupt the payload *after* hashing, simulating
        #: wire damage (the stamped hash stays honest)
        self.tamper: Optional[Callable[[Any], Any]] = None

    def send(self, payload: Any) -> None:
        if self._closed:
            raise ProxyError(f"channel {self.edge} already closed")
        content_hash = value_hash(payload) if self.verify_hashes else None
        if self.tamper is not None:
            payload = self.tamper(payload)
        self.bytes_sent += write_message(
            self._sock,
            Data(self.application, self.edge, payload, content_hash),
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            write_message(self._sock, Fin(self.application, self.edge))
        except OSError:
            pass
        self._sock.close()


class CommunicationProxy:
    """Listener + per-edge inboxes for one logical host."""

    def __init__(self, host_name: str, timeout_s: float = _DEFAULT_TIMEOUT):
        self.host_name = host_name
        self.timeout_s = timeout_s
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(64)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._inboxes: Dict[EdgeKey, "queue.Queue[Any]"] = {}
        self._inbox_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self.setups_accepted = 0
        self.acks_sent = 0
        self.payloads_received = 0
        self.payloads_verified = 0
        self.hash_mismatches = 0
        #: last verified content hash per edge (real-vs-sim parity checks)
        self.edge_hashes: Dict[EdgeKey, str] = {}
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"proxy-accept:{host_name}", daemon=True
        )
        self._accept_thread.start()

    # -- receiving side -----------------------------------------------------

    def _inbox(self, edge: EdgeKey) -> "queue.Queue[Any]":
        with self._inbox_lock:
            if edge not in self._inboxes:
                self._inboxes[edge] = queue.Queue()
            return self._inboxes[edge]

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            handler = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name=f"proxy-conn:{self.host_name}",
                daemon=True,
            )
            handler.start()
            self._threads.append(handler)

    def _handle_connection(self, conn: socket.socket) -> None:
        conn.settimeout(self.timeout_s)
        try:
            setup = read_message(conn)
            if not isinstance(setup, ChannelSetup):
                raise ProxyError(
                    f"first message must be ChannelSetup, got "
                    f"{type(setup).__name__}"
                )
            self.setups_accepted += 1
            write_message(conn, Ack(setup.application, setup.edge))
            self.acks_sent += 1
            inbox = self._inbox(setup.edge)
            while True:
                message = read_message(conn)
                if isinstance(message, Fin):
                    return
                if isinstance(message, Data):
                    self.payloads_received += 1
                    inbox.put((message.payload, message.content_hash))
                else:
                    raise ProxyError(
                        f"unexpected {type(message).__name__} on data channel"
                    )
        except (ConnectionError, OSError, socket.timeout):
            return
        finally:
            conn.close()

    def receive(self, edge: EdgeKey, timeout_s: Optional[float] = None,
                abort: Optional[threading.Event] = None) -> Any:
        """Block until a payload for ``edge`` arrives.

        With ``abort`` given, the wait is interrupted as soon as the
        event is set (:class:`ProxyAborted`) — a dependent of a failed
        task unblocks in one poll slice instead of the full timeout.
        Verification happens here, in the consumer's thread: a stamped
        content hash that does not match the received payload raises
        the typed :class:`CorruptPayloadError` and the bytes never
        reach the task.
        """
        deadline = timeout_s if timeout_s is not None else self.timeout_s
        inbox = self._inbox(edge)
        if abort is None:
            try:
                payload, content_hash = inbox.get(timeout=deadline)
            except queue.Empty:
                raise ProxyError(
                    f"timed out waiting for data on edge {edge} at "
                    f"{self.host_name}"
                ) from None
        else:
            waited = 0.0
            while True:
                if abort.is_set():
                    raise ProxyAborted(
                        f"receive on edge {edge} at {self.host_name} "
                        "aborted: a sibling task failed"
                    )
                try:
                    payload, content_hash = inbox.get(timeout=_ABORT_POLL_S)
                    break
                except queue.Empty:
                    waited += _ABORT_POLL_S
                    if waited >= deadline:
                        raise ProxyError(
                            f"timed out waiting for data on edge {edge} at "
                            f"{self.host_name}"
                        ) from None
        if content_hash is not None:
            actual = value_hash(payload)
            if actual != content_hash:
                self.hash_mismatches += 1
                raise CorruptPayloadError(
                    f"payload for edge {edge} at {self.host_name} fails "
                    "verification: received bytes do not match the "
                    "producer's content hash",
                    expected_hash=content_hash,
                    actual_hash=actual,
                )
            self.payloads_verified += 1
            self.edge_hashes[edge] = content_hash
        return payload

    # -- sending side --------------------------------------------------------------

    def open_channel(
        self,
        application: str,
        edge: EdgeKey,
        target: Tuple[str, int],
        dst_host: str,
        verify_hashes: bool = False,
    ) -> OutChannel:
        """Connect to the destination proxy and complete setup + ack."""
        sock = socket.create_connection(target, timeout=self.timeout_s)
        try:
            write_message(
                sock,
                ChannelSetup(application, edge, self.host_name, dst_host),
            )
            ack = read_message(sock)
            if not isinstance(ack, Ack) or ack.edge != edge:
                raise ProxyError(f"bad ack for edge {edge}: {ack!r}")
        except Exception:
            sock.close()
            raise
        return OutChannel(sock, application, edge, verify_hashes=verify_hashes)

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "CommunicationProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Communication proxies: one per (logical) host, real TCP underneath.

A :class:`CommunicationProxy` is the per-machine agent of paper §4.2:
it listens on a localhost TCP port, accepts channel-setup requests for
the AFG edges whose *destination* task runs on its host, acknowledges
them, and delivers arriving payloads to per-edge inboxes.  The sending
side (:meth:`open_channel` / :class:`OutChannel`) connects, performs
the setup/ack handshake, and streams data.

Threading model: one accept thread per proxy, one handler thread per
inbound connection.  All blocking operations take timeouts so protocol
bugs surface as errors, never hangs.
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Any, Dict, Optional, Tuple

from repro.net.messages import (
    Ack,
    ChannelSetup,
    Data,
    Fin,
    EdgeKey,
    read_message,
    write_message,
)

__all__ = ["CommunicationProxy", "OutChannel", "ProxyError"]

_DEFAULT_TIMEOUT = 10.0


class ProxyError(RuntimeError):
    """Channel setup/delivery failure."""


class OutChannel:
    """Sender end of one edge channel (created by :meth:`open_channel`)."""

    def __init__(self, sock: socket.socket, application: str, edge: EdgeKey):
        self._sock = sock
        self.application = application
        self.edge = edge
        self.bytes_sent = 0
        self._closed = False

    def send(self, payload: Any) -> None:
        if self._closed:
            raise ProxyError(f"channel {self.edge} already closed")
        self.bytes_sent += write_message(
            self._sock, Data(self.application, self.edge, payload)
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            write_message(self._sock, Fin(self.application, self.edge))
        except OSError:
            pass
        self._sock.close()


class CommunicationProxy:
    """Listener + per-edge inboxes for one logical host."""

    def __init__(self, host_name: str, timeout_s: float = _DEFAULT_TIMEOUT):
        self.host_name = host_name
        self.timeout_s = timeout_s
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(64)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._inboxes: Dict[EdgeKey, "queue.Queue[Any]"] = {}
        self._inbox_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self.setups_accepted = 0
        self.acks_sent = 0
        self.payloads_received = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"proxy-accept:{host_name}", daemon=True
        )
        self._accept_thread.start()

    # -- receiving side -----------------------------------------------------

    def _inbox(self, edge: EdgeKey) -> "queue.Queue[Any]":
        with self._inbox_lock:
            if edge not in self._inboxes:
                self._inboxes[edge] = queue.Queue()
            return self._inboxes[edge]

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            handler = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name=f"proxy-conn:{self.host_name}",
                daemon=True,
            )
            handler.start()
            self._threads.append(handler)

    def _handle_connection(self, conn: socket.socket) -> None:
        conn.settimeout(self.timeout_s)
        try:
            setup = read_message(conn)
            if not isinstance(setup, ChannelSetup):
                raise ProxyError(
                    f"first message must be ChannelSetup, got "
                    f"{type(setup).__name__}"
                )
            self.setups_accepted += 1
            write_message(conn, Ack(setup.application, setup.edge))
            self.acks_sent += 1
            inbox = self._inbox(setup.edge)
            while True:
                message = read_message(conn)
                if isinstance(message, Fin):
                    return
                if isinstance(message, Data):
                    self.payloads_received += 1
                    inbox.put(message.payload)
                else:
                    raise ProxyError(
                        f"unexpected {type(message).__name__} on data channel"
                    )
        except (ConnectionError, OSError, socket.timeout):
            return
        finally:
            conn.close()

    def receive(self, edge: EdgeKey, timeout_s: Optional[float] = None) -> Any:
        """Block until a payload for ``edge`` arrives."""
        try:
            return self._inbox(edge).get(timeout=timeout_s or self.timeout_s)
        except queue.Empty:
            raise ProxyError(
                f"timed out waiting for data on edge {edge} at "
                f"{self.host_name}"
            ) from None

    # -- sending side --------------------------------------------------------------

    def open_channel(
        self,
        application: str,
        edge: EdgeKey,
        target: Tuple[str, int],
        dst_host: str,
    ) -> OutChannel:
        """Connect to the destination proxy and complete setup + ack."""
        sock = socket.create_connection(target, timeout=self.timeout_s)
        try:
            write_message(
                sock,
                ChannelSetup(application, edge, self.host_name, dst_host),
            )
            ack = read_message(sock)
            if not isinstance(ack, Ack) or ack.edge != edge:
                raise ProxyError(f"bad ack for edge {edge}: {ack!r}")
        except Exception:
            sock.close()
            raise
        return OutChannel(sock, application, edge)

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "CommunicationProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Control-plane RPC over the simulated network: timeouts and retries.

The paper's prototype assumed a friendly campus LAN: the AFG multicast
(Fig. 2 step 3), the bid replies, the allocation-table distribution and
the Group Manager's failure reports were all fire-and-forget.  The grid
middleware that followed VDCE treats unreachable sites and lossy
control messages as the common case, so this module wraps every
control-plane exchange in the standard machinery:

* a per-message **timeout** (the sender stops waiting);
* **bounded retries** with **exponential backoff** and deterministic
  jitter, drawn from per-peer RNG streams (``rpc:<src>-><dst>``) so a
  retry on one path never perturbs another path's draws;
* **fail-fast** on a link known to be down (a connect error is
  immediate, unlike a lost datagram which burns the full timeout).

Message loss and extra delay come from the per-link ``loss_prob`` /
``extra_delay_s`` knobs on :class:`repro.sim.network.Link` — they apply
only to control messages sent through this layer, never to bulk data
transfers.  With the default lossless links and all links up, a
:meth:`ControlPlane.request` costs exactly one request transfer plus
one reply transfer and draws no random numbers, so fault-free runs keep
their fault-free timing.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.obs.spans import NULL_SPANS, SpanKind, SpanRecorder
from repro.sim.kernel import AnyOf, Simulator, Timeout
from repro.sim.network import LinkDownError, Network
from repro.trace.events import EventKind
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = [
    "ControlPlane",
    "ManagerUnavailable",
    "RetryPolicy",
    "RpcError",
    "RpcTimeout",
]


class RpcError(RuntimeError):
    """Base class for control-plane RPC failures."""


class RpcTimeout(RpcError):
    """All attempts of a request timed out or were lost."""

    def __init__(self, label: str, attempts: int):
        super().__init__(f"rpc {label!r} failed after {attempts} attempt(s)")
        self.label = label
        self.attempts = attempts


class ManagerUnavailable(RpcError):
    """The target manager process is crashed.

    Raised by Site/Group Manager entry points while crashed.  Inside
    :meth:`ControlPlane.request` a handler raising this is treated the
    same as an undelivered request — nobody answered the port — so the
    attempt retries and eventually surfaces as :class:`RpcTimeout`,
    which the callers already turn into site exclusion.  Raised
    *outside* an RPC (a local call on the same site) it propagates as a
    typed failure the chaos harness and the checkpoint-restart path
    catch.
    """

    def __init__(self, manager: str, role: str = "site manager"):
        super().__init__(f"{role} {manager!r} is crashed")
        self.manager = manager
        self.role = role


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry/backoff knobs for one class of control messages.

    ``backoff(attempt, u)`` returns the pause after the given (1-based)
    failed attempt: ``base * factor**(attempt-1)`` stretched by up to
    ``jitter_frac`` using the caller-supplied uniform draw ``u`` — the
    jitter source stays in the caller's RNG stream, keeping runs
    deterministic.
    """

    timeout_s: float = 1.0
    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter_frac: float = 0.2

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_base_s >= 0 and backoff_factor >= 1 required")
        if not (0.0 <= self.jitter_frac <= 1.0):
            raise ValueError("jitter_frac must be in [0, 1]")

    def backoff(self, attempt: int, u: float) -> float:
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        return base * (1.0 + self.jitter_frac * float(u))


def _with_span_context(spans: SpanRecorder, ctx, gen):
    """Drive a handler generator with ``ctx`` as ambient span context.

    The ambient stack must only hold ``ctx`` during the handler's
    *synchronous* segments: while the handler is suspended at a yield,
    other simulated processes run and must not inherit its context.  So
    instead of ``yield from gen`` we advance ``gen`` step by step,
    pushing before and popping after every resume.
    """
    send_value = None
    thrown = None
    while True:
        spans.push(ctx)
        try:
            if thrown is not None:
                exc, thrown = thrown, None
                item = gen.throw(exc)
            else:
                item = gen.send(send_value)
        except StopIteration as stop:
            return stop.value
        finally:
            spans.pop()
        try:
            send_value = yield item
        except BaseException as exc:  # forwarded into the handler
            thrown = exc


class ControlPlane:
    """Request/reply and notification messaging for one deployment.

    All methods are pure simulation constructs: :meth:`request` is a
    generator to ``yield from`` inside a simulated process, and
    :meth:`notify_lan` is callback-based (no process spawn) so the
    high-rate Group Manager -> Site Manager path stays cheap.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        stats=None,
        policy: RetryPolicy = RetryPolicy(),
        tracer: Tracer = NULL_TRACER,
        spans: SpanRecorder = NULL_SPANS,
    ):
        self.sim = sim
        self.network = network
        self.stats = stats
        self.policy = policy
        self.tracer = tracer
        self.spans = spans

    # -- request/reply -----------------------------------------------------

    def request(
        self,
        src_host: str,
        dst_host: str,
        handler: Callable[[], Any],
        payload_mb: float = 0.0,
        reply_mb: Any = 0.0,
        label: str = "rpc",
        policy: Optional[RetryPolicy] = None,
        transport: str = "transfer",
        on_send: Optional[Callable[[int], None]] = None,
        on_reply: Optional[Callable[[int], None]] = None,
        span=None,
    ):
        """Round-trip RPC generator; returns ``handler()``'s value.

        ``handler`` runs at the destination once the request arrives; if
        it returns a generator, the generator is driven inside the RPC
        (server-side work that takes simulated time).  Retries re-run it
        — at-least-once semantics, like every retried RPC; handlers must
        be idempotent.  ``reply_mb`` may be a callable mapping the
        handler's value to a size.  ``transport`` is ``"transfer"``
        (bandwidth-shared message) or ``"latency"`` (latency-only
        signalling, e.g. channel setup).  ``on_send`` / ``on_reply`` run
        once per attempt whose request/reply message is actually put on
        the wire — the hook point for per-message counters and trace
        events.  ``span`` is an optional parent
        :class:`~repro.obs.spans.SpanContext`: when causal spans are
        enabled the whole request becomes an ``rpc`` span under it, with
        one ``rpc_attempt`` child per attempt (ambient at the
        destination while the handler runs, so server-side spans parent
        correctly) and a ``retry_backoff`` child per backoff pause.

        Raises :class:`RpcTimeout` when every attempt fails.
        """
        policy = policy or self.policy
        src_site = self.network.site_of(src_host)
        dst_site = self.network.site_of(dst_host)
        rng = self.sim.rng(f"rpc:{src_site}->{dst_site}")
        spans = self.spans
        rpc_span = None
        if spans.enabled and span is not None and span.span_id >= 0:
            rpc_span = spans.open(
                SpanKind.RPC, span.app, parent=span,
                source=f"rpc:{src_site}", label=label, dst=dst_site,
            )
        rpc_source = f"rpc:{src_site}"
        for attempt in range(1, policy.max_attempts + 1):
            started = self.sim.now
            attempt_span = None
            if rpc_span is not None:
                attempt_span = spans.open(
                    SpanKind.RPC_ATTEMPT, rpc_span.app, parent=rpc_span,
                    source=rpc_source, label=label, attempt=attempt,
                )
            if on_send is not None:
                on_send(attempt)
            delivered = yield from self._leg(
                src_host, dst_host, payload_mb, f"{label}:req",
                policy, rng, started, transport,
            )
            if delivered:
                try:
                    if attempt_span is not None:
                        spans.push(attempt_span)
                        try:
                            value = handler()
                        finally:
                            spans.pop()
                        if inspect.isgenerator(value):
                            value = yield from _with_span_context(
                                spans, attempt_span, value
                            )
                    else:
                        value = handler()
                        if inspect.isgenerator(value):
                            value = yield from value
                except ManagerUnavailable:
                    # the destination manager is crashed: no reply ever
                    # comes back, exactly like a lost datagram — burn the
                    # rest of this attempt's deadline and retry
                    remaining = policy.timeout_s - (self.sim.now - started)
                    if remaining > 0:
                        yield Timeout(remaining)
                else:
                    if on_reply is not None:
                        on_reply(attempt)
                    size = reply_mb(value) if callable(reply_mb) else reply_mb
                    acked = yield from self._leg(
                        dst_host, src_host, size, f"{label}:rep",
                        policy, rng, started, transport,
                    )
                    if acked:
                        if attempt_span is not None:
                            spans.close(attempt_span, source=rpc_source)
                            spans.close(
                                rpc_span, source=rpc_source, attempts=attempt
                            )
                        return value
            if attempt_span is not None:
                spans.close(attempt_span, source=rpc_source, status="failed")
            if self.stats is not None:
                self.stats.rpc_retries += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.RPC_RETRY, source=f"rpc:{src_site}",
                    label=label, attempt=attempt, dst=dst_site,
                )
            if attempt < policy.max_attempts:
                delay = policy.backoff(attempt, float(rng.uniform()))
                if rpc_span is not None:
                    backoff_span = spans.open(
                        SpanKind.RETRY_BACKOFF, rpc_span.app, parent=rpc_span,
                        source=rpc_source, label=label, attempt=attempt,
                    )
                    yield Timeout(delay)
                    spans.close(backoff_span, source=rpc_source)
                else:
                    yield Timeout(delay)
        if rpc_span is not None:
            spans.close(
                rpc_span, source=rpc_source, status="timeout",
                attempts=policy.max_attempts,
            )
        if self.stats is not None:
            self.stats.rpc_timeouts += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.RPC_TIMEOUT, source=f"rpc:{src_site}",
                label=label, dst=dst_site, attempts=policy.max_attempts,
            )
        raise RpcTimeout(label, policy.max_attempts)

    def _leg(self, src, dst, size_mb, label, policy, rng, started, transport):
        """One message leg; True iff delivered within the attempt deadline."""
        remaining = policy.timeout_s - (self.sim.now - started)
        if remaining <= 0:
            return False
        link = self.network.link_between(src, dst)
        if link is not None:
            if not link.up:
                return False  # connect error: fail fast, no time burned
            if link.loss_prob > 0.0 and float(rng.uniform()) < link.loss_prob:
                # the message vanishes; the sender finds out via the timer
                yield Timeout(remaining)
                return False
            if link.extra_delay_s > 0.0:
                delay = min(link.extra_delay_s, remaining)
                yield Timeout(delay)
                remaining -= delay
                if remaining <= 0:
                    return False
        if transport == "latency":
            latency = link.spec.latency_s if link is not None else 0.0
            if latency > remaining:
                yield Timeout(remaining)
                return False
            yield Timeout(latency)
            return link is None or link.up
        transfer = self.network.transfer(src, dst, size_mb, label=label)
        try:
            index, _value = yield AnyOf([transfer.done, Timeout(remaining)])
        except LinkDownError:
            return False
        return index == 0

    # -- one-way notifications --------------------------------------------

    def notify_lan(
        self,
        link,
        deliver: Callable[[], None],
        latency_s: float,
        label: str = "notify",
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        """One-way intra-site message with loss-aware bounded retries.

        Callback-based (no kernel process): on lossless links this is
        exactly ``call_after(latency_s, deliver)`` — the Group Manager's
        original notification path — with zero extra events or RNG
        draws.  Under loss or a down LAN it retries with backoff, giving
        up silently after ``max_attempts`` (one-way messages have no
        caller to raise into; the periodic echo loop re-notifies).
        """
        policy = policy or self.policy
        rng_name = f"rpc:{label}"

        def attempt(n: int) -> None:
            down = link is not None and not link.up
            loss_p = link.loss_prob if link is not None else 0.0
            lost = down or (
                loss_p > 0.0 and float(self.sim.rng(rng_name).uniform()) < loss_p
            )
            if not lost:
                extra = link.extra_delay_s if link is not None else 0.0
                self.sim.call_after(latency_s + extra, deliver)
                return
            if self.stats is not None:
                self.stats.rpc_retries += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.RPC_RETRY, source=f"rpc:{label}",
                    label=label, attempt=n, one_way=True,
                )
            if n < policy.max_attempts:
                backoff = policy.backoff(n, float(self.sim.rng(rng_name).uniform()))
                self.sim.call_after(backoff, lambda: attempt(n + 1))
            else:
                if self.stats is not None:
                    self.stats.rpc_timeouts += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.RPC_TIMEOUT, source=f"rpc:{label}",
                        label=label, attempts=policy.max_attempts, one_way=True,
                    )

        attempt(1)

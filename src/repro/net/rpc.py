"""Control-plane RPC over the simulated network: timeouts and retries.

The paper's prototype assumed a friendly campus LAN: the AFG multicast
(Fig. 2 step 3), the bid replies, the allocation-table distribution and
the Group Manager's failure reports were all fire-and-forget.  The grid
middleware that followed VDCE treats unreachable sites and lossy
control messages as the common case, so this module wraps every
control-plane exchange in the standard machinery:

* a per-message **timeout** (the sender stops waiting);
* **bounded retries** with **exponential backoff** and deterministic
  jitter, drawn from per-peer RNG streams (``rpc:<src>-><dst>``) so a
  retry on one path never perturbs another path's draws;
* **fail-fast** on a link known to be down (a connect error is
  immediate, unlike a lost datagram which burns the full timeout).

Message loss and extra delay come from the per-link ``loss_prob`` /
``extra_delay_s`` knobs on :class:`repro.sim.network.Link` — they apply
only to control messages sent through this layer, never to bulk data
transfers.  With the default lossless links and all links up, a
:meth:`ControlPlane.request` costs exactly one request transfer plus
one reply transfer and draws no random numbers, so fault-free runs keep
their fault-free timing.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.spans import NULL_SPANS, SpanKind, SpanRecorder
from repro.sim.kernel import AnyOf, Simulator, Timeout
from repro.sim.network import LinkDownError, Network
from repro.trace.events import EventKind
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = [
    "BreakerPolicy",
    "BreakerRegistry",
    "CircuitBreaker",
    "CircuitOpenError",
    "ControlPlane",
    "ManagerUnavailable",
    "RetryPolicy",
    "RpcError",
    "RpcTimeout",
]


class RpcError(RuntimeError):
    """Base class for control-plane RPC failures."""


class RpcTimeout(RpcError):
    """All attempts of a request timed out or were lost."""

    def __init__(self, label: str, attempts: int):
        super().__init__(f"rpc {label!r} failed after {attempts} attempt(s)")
        self.label = label
        self.attempts = attempts


class ManagerUnavailable(RpcError):
    """The target manager process is crashed.

    Raised by Site/Group Manager entry points while crashed.  Inside
    :meth:`ControlPlane.request` a handler raising this is treated the
    same as an undelivered request — nobody answered the port — so the
    attempt retries and eventually surfaces as :class:`RpcTimeout`,
    which the callers already turn into site exclusion.  Raised
    *outside* an RPC (a local call on the same site) it propagates as a
    typed failure the chaos harness and the checkpoint-restart path
    catch.
    """

    def __init__(self, manager: str, role: str = "site manager"):
        super().__init__(f"{role} {manager!r} is crashed")
        self.manager = manager
        self.role = role


class CircuitOpenError(RpcTimeout):
    """The circuit to the destination site is open: fail fast, no wire.

    Subclasses :class:`RpcTimeout` (with ``attempts == 0``) so every
    existing caller that turns an RPC timeout into site exclusion
    handles a fast-failed request identically — the breaker just
    delivers the verdict without burning timeouts and retries first.
    """

    def __init__(self, label: str, src_site: str, dst_site: str):
        RpcError.__init__(
            self,
            f"rpc {label!r} fast-failed: circuit {src_site}->{dst_site} open",
        )
        self.label = label
        self.attempts = 0
        self.src_site = src_site
        self.dst_site = dst_site


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-destination circuit-breaker knobs.

    A breaker trips **open** when, over the last ``window`` completed
    attempts (given at least ``min_samples``), the failure rate reaches
    ``failure_threshold``.  While open every request fast-fails without
    touching the wire, bounding retry amplification during partitions.
    After ``open_duration_s`` the breaker goes **half-open** and lets
    exactly one probe request through: success closes the circuit,
    failure re-opens it for another full ``open_duration_s``.  All
    transitions are driven by the virtual clock and the deterministic
    request stream — no RNG.
    """

    window: int = 6
    failure_threshold: float = 0.5
    min_samples: int = 4
    open_duration_s: float = 10.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not (0.0 < self.failure_threshold <= 1.0):
            raise ValueError("failure_threshold must be in (0, 1]")
        if not (1 <= self.min_samples <= self.window):
            raise ValueError("need 1 <= min_samples <= window")
        if self.open_duration_s <= 0:
            raise ValueError("open_duration_s must be positive")


class CircuitBreaker:
    """Failure-rate window and state machine for one (src, dst) pair."""

    def __init__(self, policy: BreakerPolicy):
        self.policy = policy
        self.state = "closed"
        self.opened_at = 0.0
        self._results: List[bool] = []  # True = attempt succeeded
        self._probe_inflight = False

    def allow(self, now: float) -> bool:
        """May a request start now?  Drives open -> half-open."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if now >= self.opened_at + self.policy.open_duration_s:
                self.state = "half_open"
                self._probe_inflight = True
                return True
            return False
        # half-open: one probe at a time
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record_success(self, now: float) -> None:
        self._probe_inflight = False
        self._results.clear()
        self.state = "closed"

    def record_failure(self, now: float) -> bool:
        """Account one failed request; True if the breaker (re-)opened."""
        self._probe_inflight = False
        if self.state == "half_open":
            self.state = "open"
            self.opened_at = now
            self._results.clear()
            return True
        if self.state == "open":
            return False
        self._results.append(False)
        if len(self._results) > self.policy.window:
            del self._results[0]
        failures = self._results.count(False)
        if (len(self._results) >= self.policy.min_samples
                and failures / len(self._results)
                >= self.policy.failure_threshold):
            self.state = "open"
            self.opened_at = now
            self._results.clear()
            return True
        return False

    def record_closed_success(self) -> None:
        """A success observed while closed feeds the window."""
        self._results.append(True)
        if len(self._results) > self.policy.window:
            del self._results[0]


class BreakerRegistry:
    """All circuit breakers of one deployment, keyed by (src, dst) site.

    Keeps the transition log and the per-link send log that the chaos
    invariant I11 audits (*open circuit => no message sent on that link
    that round*), emits ``breaker_*`` trace events, and maintains the
    ``vdce_breaker_state`` gauge (0 closed, 1 half-open, 2 open).
    """

    _STATE_VALUE = {"closed": 0.0, "half_open": 1.0, "open": 2.0}
    _STATE_EVENT = {
        "closed": EventKind.BREAKER_CLOSE,
        "half_open": EventKind.BREAKER_HALF_OPEN,
        "open": EventKind.BREAKER_OPEN,
    }

    def __init__(self, sim: Simulator, policy: BreakerPolicy = BreakerPolicy(),
                 tracer: Tracer = NULL_TRACER):
        self.sim = sim
        self.policy = policy
        self.tracer = tracer
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        #: (time, src, dst, new_state) per transition
        self.transitions: List[Tuple[float, str, str, str]] = []
        #: (time, src, dst) per request message put on the wire
        self.send_log: List[Tuple[float, str, str]] = []
        self.fast_fails = 0

    def of(self, src_site: str, dst_site: str) -> CircuitBreaker:
        key = (src_site, dst_site)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = CircuitBreaker(self.policy)
        return breaker

    def _note_transition(self, src: str, dst: str, old: str, new: str) -> None:
        if new == old:
            return
        self.transitions.append((self.sim.now, src, dst, new))
        if self.tracer.enabled:
            self.tracer.emit(
                self._STATE_EVENT[new], source=f"breaker:{src}->{dst}",
                src=src, dst=dst, previous=old,
            )
        metrics = self.sim.metrics
        if metrics.enabled:
            metrics.gauge(
                "vdce_breaker_state",
                "circuit breaker state per WAN link "
                "(0 closed, 1 half-open, 2 open)",
            ).set(self._STATE_VALUE[new], src=src, dst=dst)

    def allow(self, src_site: str, dst_site: str) -> bool:
        breaker = self.of(src_site, dst_site)
        old = breaker.state
        allowed = breaker.allow(self.sim.now)
        self._note_transition(src_site, dst_site, old, breaker.state)
        if not allowed:
            self.fast_fails += 1
        return allowed

    def note_send(self, src_site: str, dst_site: str) -> None:
        self.send_log.append((self.sim.now, src_site, dst_site))

    def record_success(self, src_site: str, dst_site: str) -> None:
        breaker = self.of(src_site, dst_site)
        old = breaker.state
        if old == "closed":
            breaker.record_closed_success()
        else:
            breaker.record_success(self.sim.now)
        self._note_transition(src_site, dst_site, old, breaker.state)

    def record_failure(self, src_site: str, dst_site: str) -> None:
        breaker = self.of(src_site, dst_site)
        old = breaker.state
        breaker.record_failure(self.sim.now)
        self._note_transition(src_site, dst_site, old, breaker.state)

    def open_intervals(
        self, end_time: float
    ) -> Dict[Tuple[str, str], List[Tuple[float, float]]]:
        """Per-link [open, close-or-half-open) windows from the log."""
        intervals: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
        open_at: Dict[Tuple[str, str], float] = {}
        for time, src, dst, state in self.transitions:
            key = (src, dst)
            if state == "open" and key not in open_at:
                open_at[key] = time
            elif state != "open" and key in open_at:
                intervals.setdefault(key, []).append((open_at.pop(key), time))
        for key, time in open_at.items():
            intervals.setdefault(key, []).append((time, end_time))
        return intervals

    def open_violations(self, end_time: float) -> List[str]:
        """I11 audit: sends that happened strictly inside an open window.

        A send at the very instant the breaker opened preceded the
        opening (same-timestamp ordering), and a send at the window's
        end is the half-open probe — both are excluded by the strict
        inequalities.
        """
        violations: List[str] = []
        intervals = self.open_intervals(end_time)
        for time, src, dst in self.send_log:
            for start, end in intervals.get((src, dst), []):
                if start < time < end:
                    violations.append(
                        f"message sent {src}->{dst} at {time:.3f} while the "
                        f"circuit was open ({start:.3f}..{end:.3f})"
                    )
        return violations


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry/backoff knobs for one class of control messages.

    ``backoff(attempt, u)`` returns the pause after the given (1-based)
    failed attempt: ``base * factor**(attempt-1)`` stretched by up to
    ``jitter_frac`` using the caller-supplied uniform draw ``u`` — the
    jitter source stays in the caller's RNG stream, keeping runs
    deterministic.
    """

    timeout_s: float = 1.0
    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter_frac: float = 0.2

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_base_s >= 0 and backoff_factor >= 1 required")
        if not (0.0 <= self.jitter_frac <= 1.0):
            raise ValueError("jitter_frac must be in [0, 1]")

    def backoff(self, attempt: int, u: float) -> float:
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        return base * (1.0 + self.jitter_frac * float(u))


def _with_span_context(spans: SpanRecorder, ctx, gen):
    """Drive a handler generator with ``ctx`` as ambient span context.

    The ambient stack must only hold ``ctx`` during the handler's
    *synchronous* segments: while the handler is suspended at a yield,
    other simulated processes run and must not inherit its context.  So
    instead of ``yield from gen`` we advance ``gen`` step by step,
    pushing before and popping after every resume.
    """
    send_value = None
    thrown = None
    while True:
        spans.push(ctx)
        try:
            if thrown is not None:
                exc, thrown = thrown, None
                item = gen.throw(exc)
            else:
                item = gen.send(send_value)
        except StopIteration as stop:
            return stop.value
        finally:
            spans.pop()
        try:
            send_value = yield item
        except BaseException as exc:  # forwarded into the handler
            thrown = exc


class ControlPlane:
    """Request/reply and notification messaging for one deployment.

    All methods are pure simulation constructs: :meth:`request` is a
    generator to ``yield from`` inside a simulated process, and
    :meth:`notify_lan` is callback-based (no process spawn) so the
    high-rate Group Manager -> Site Manager path stays cheap.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        stats=None,
        policy: RetryPolicy = RetryPolicy(),
        tracer: Tracer = NULL_TRACER,
        spans: SpanRecorder = NULL_SPANS,
        breakers: Optional[BreakerRegistry] = None,
    ):
        self.sim = sim
        self.network = network
        self.stats = stats
        self.policy = policy
        self.tracer = tracer
        self.spans = spans
        #: per-destination circuit breakers; None = feature disabled
        self.breakers = breakers

    # -- request/reply -----------------------------------------------------

    def request(
        self,
        src_host: str,
        dst_host: str,
        handler: Callable[[], Any],
        payload_mb: float = 0.0,
        reply_mb: Any = 0.0,
        label: str = "rpc",
        policy: Optional[RetryPolicy] = None,
        transport: str = "transfer",
        on_send: Optional[Callable[[int], None]] = None,
        on_reply: Optional[Callable[[int], None]] = None,
        span=None,
    ):
        """Round-trip RPC generator; returns ``handler()``'s value.

        ``handler`` runs at the destination once the request arrives; if
        it returns a generator, the generator is driven inside the RPC
        (server-side work that takes simulated time).  Retries re-run it
        — at-least-once semantics, like every retried RPC; handlers must
        be idempotent.  ``reply_mb`` may be a callable mapping the
        handler's value to a size.  ``transport`` is ``"transfer"``
        (bandwidth-shared message) or ``"latency"`` (latency-only
        signalling, e.g. channel setup).  ``on_send`` / ``on_reply`` run
        once per attempt whose request/reply message is actually put on
        the wire — the hook point for per-message counters and trace
        events.  ``span`` is an optional parent
        :class:`~repro.obs.spans.SpanContext`: when causal spans are
        enabled the whole request becomes an ``rpc`` span under it, with
        one ``rpc_attempt`` child per attempt (ambient at the
        destination while the handler runs, so server-side spans parent
        correctly) and a ``retry_backoff`` child per backoff pause.

        Raises :class:`RpcTimeout` when every attempt fails.
        """
        policy = policy or self.policy
        src_site = self.network.site_of(src_host)
        dst_site = self.network.site_of(dst_host)
        rng = self.sim.rng(f"rpc:{src_site}->{dst_site}")
        spans = self.spans
        rpc_span = None
        if spans.enabled and span is not None and span.span_id >= 0:
            rpc_span = spans.open(
                SpanKind.RPC, span.app, parent=span,
                source=f"rpc:{src_site}", label=label, dst=dst_site,
            )
        rpc_source = f"rpc:{src_site}"
        # WAN circuit breaker: while the circuit to the destination site
        # is open, fail fast without putting anything on the wire
        breaker = (
            self.breakers if self.breakers is not None
            and src_site != dst_site else None
        )
        for attempt in range(1, policy.max_attempts + 1):
            if breaker is not None and not breaker.allow(src_site, dst_site):
                if rpc_span is not None:
                    spans.close(
                        rpc_span, source=rpc_source, status="circuit_open",
                        attempts=attempt - 1,
                    )
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.RPC_TIMEOUT, source=rpc_source,
                        label=label, dst=dst_site, attempts=attempt - 1,
                        circuit_open=True,
                    )
                raise CircuitOpenError(label, src_site, dst_site)
            started = self.sim.now
            attempt_span = None
            if rpc_span is not None:
                attempt_span = spans.open(
                    SpanKind.RPC_ATTEMPT, rpc_span.app, parent=rpc_span,
                    source=rpc_source, label=label, attempt=attempt,
                )
            if on_send is not None:
                on_send(attempt)
            if breaker is not None:
                breaker.note_send(src_site, dst_site)
            delivered = yield from self._leg(
                src_host, dst_host, payload_mb, f"{label}:req",
                policy, rng, started, transport,
            )
            if delivered:
                try:
                    if attempt_span is not None:
                        spans.push(attempt_span)
                        try:
                            value = handler()
                        finally:
                            spans.pop()
                        if inspect.isgenerator(value):
                            value = yield from _with_span_context(
                                spans, attempt_span, value
                            )
                    else:
                        value = handler()
                        if inspect.isgenerator(value):
                            value = yield from value
                except ManagerUnavailable:
                    # the destination manager is crashed: no reply ever
                    # comes back, exactly like a lost datagram — burn the
                    # rest of this attempt's deadline and retry
                    remaining = policy.timeout_s - (self.sim.now - started)
                    if remaining > 0:
                        yield Timeout(remaining)
                except Exception:
                    # a typed refusal (e.g. SiteOverloaded): the remote
                    # answered, just not with a value — close the spans
                    # before the exception propagates to the caller
                    if attempt_span is not None:
                        spans.close(
                            attempt_span, source=rpc_source, status="error"
                        )
                        spans.close(
                            rpc_span, source=rpc_source, status="error",
                            attempts=attempt,
                        )
                    if breaker is not None:
                        breaker.record_success(src_site, dst_site)
                    raise
                else:
                    if on_reply is not None:
                        on_reply(attempt)
                    size = reply_mb(value) if callable(reply_mb) else reply_mb
                    acked = yield from self._leg(
                        dst_host, src_host, size, f"{label}:rep",
                        policy, rng, started, transport,
                    )
                    if acked:
                        if attempt_span is not None:
                            spans.close(attempt_span, source=rpc_source)
                            spans.close(
                                rpc_span, source=rpc_source, attempts=attempt
                            )
                        if breaker is not None:
                            breaker.record_success(src_site, dst_site)
                        return value
            if attempt_span is not None:
                spans.close(attempt_span, source=rpc_source, status="failed")
            if breaker is not None:
                breaker.record_failure(src_site, dst_site)
            if self.stats is not None:
                self.stats.rpc_retries += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.RPC_RETRY, source=f"rpc:{src_site}",
                    label=label, attempt=attempt, dst=dst_site,
                )
            if attempt < policy.max_attempts:
                delay = policy.backoff(attempt, float(rng.uniform()))
                if rpc_span is not None:
                    backoff_span = spans.open(
                        SpanKind.RETRY_BACKOFF, rpc_span.app, parent=rpc_span,
                        source=rpc_source, label=label, attempt=attempt,
                    )
                    yield Timeout(delay)
                    spans.close(backoff_span, source=rpc_source)
                else:
                    yield Timeout(delay)
        if rpc_span is not None:
            spans.close(
                rpc_span, source=rpc_source, status="timeout",
                attempts=policy.max_attempts,
            )
        if self.stats is not None:
            self.stats.rpc_timeouts += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.RPC_TIMEOUT, source=f"rpc:{src_site}",
                label=label, dst=dst_site, attempts=policy.max_attempts,
            )
        raise RpcTimeout(label, policy.max_attempts)

    def _leg(self, src, dst, size_mb, label, policy, rng, started, transport):
        """One message leg; True iff delivered within the attempt deadline."""
        remaining = policy.timeout_s - (self.sim.now - started)
        if remaining <= 0:
            return False
        link = self.network.link_between(src, dst)
        if link is not None:
            if not link.up:
                return False  # connect error: fail fast, no time burned
            if link.loss_prob > 0.0 and float(rng.uniform()) < link.loss_prob:
                # the message vanishes; the sender finds out via the timer
                yield Timeout(remaining)
                return False
            if link.extra_delay_s > 0.0:
                delay = min(link.extra_delay_s, remaining)
                yield Timeout(delay)
                remaining -= delay
                if remaining <= 0:
                    return False
        if transport == "latency":
            latency = link.spec.latency_s if link is not None else 0.0
            if latency > remaining:
                yield Timeout(remaining)
                return False
            yield Timeout(latency)
            return link is None or link.up
        transfer = self.network.transfer(src, dst, size_mb, label=label)
        try:
            index, _value = yield AnyOf([transfer.done, Timeout(remaining)])
        except LinkDownError:
            return False
        return index == 0

    # -- one-way notifications --------------------------------------------

    def notify_lan(
        self,
        link,
        deliver: Callable[[], None],
        latency_s: float,
        label: str = "notify",
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        """One-way intra-site message with loss-aware bounded retries.

        Callback-based (no kernel process): on lossless links this is
        exactly ``call_after(latency_s, deliver)`` — the Group Manager's
        original notification path — with zero extra events or RNG
        draws.  Under loss or a down LAN it retries with backoff, giving
        up silently after ``max_attempts`` (one-way messages have no
        caller to raise into; the periodic echo loop re-notifies).
        """
        policy = policy or self.policy
        rng_name = f"rpc:{label}"

        def attempt(n: int) -> None:
            down = link is not None and not link.up
            loss_p = link.loss_prob if link is not None else 0.0
            lost = down or (
                loss_p > 0.0 and float(self.sim.rng(rng_name).uniform()) < loss_p
            )
            if not lost:
                extra = link.extra_delay_s if link is not None else 0.0
                self.sim.call_after(latency_s + extra, deliver)
                return
            if self.stats is not None:
                self.stats.rpc_retries += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.RPC_RETRY, source=f"rpc:{label}",
                    label=label, attempt=n, one_way=True,
                )
            if n < policy.max_attempts:
                backoff = policy.backoff(n, float(self.sim.rng(rng_name).uniform()))
                self.sim.call_after(backoff, lambda: attempt(n + 1))
            else:
                if self.stats is not None:
                    self.stats.rpc_timeouts += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.RPC_TIMEOUT, source=f"rpc:{label}",
                        label=label, attempts=policy.max_attempts, one_way=True,
                    )

        attempt(1)

"""Priority-aware admission queue — the paper's QoS hook (§1).

The introduction promises "managing the Quality of Service (QoS)
requirements", and the user-accounts database carries a *priority*
field (§3).  This module is where the two meet: applications submitted
to a site enter an admission queue ordered by user priority (higher
first, FIFO within a priority), and at most ``max_concurrent``
applications execute at once.

On top of that baseline, an optional :class:`AdmissionPolicy` turns the
queue into a bounded, deadline-aware admission controller (the Nimrod/G
discipline: admit against declared deadlines, reject work that provably
cannot be served rather than queueing it forever):

* ``max_queued`` bounds the queue; on overflow the *worst* queued entry
  (lowest priority, then latest deadline, then latest arrival) is shed
  in favour of a better newcomer, or the newcomer itself is rejected —
  deterministically, no RNG.
* per-user token-bucket **rate limits** and queued-entry **quotas**,
  driven by the existing users DB;
* per-application **deadlines/TTLs**: an entry still queued when its
  TTL or deadline passes is expired in place — it was never going to
  meet its QoS contract, so it fails fast instead of starving others.

Rejections fail the submit :class:`~repro.sim.kernel.Signal` with typed
:class:`AdmissionRejected` / :class:`AdmissionExpired` errors.  With no
policy (the default) behaviour, traces and hashes are exactly the
unbounded queue's.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.afg.graph import ApplicationFlowGraph
from repro.obs.spans import SpanContext, SpanKind
from repro.scheduler.site_scheduler import SiteScheduler
from repro.sim.kernel import Signal, Simulator
from repro.trace.events import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.vdce_runtime import VDCERuntime

__all__ = [
    "AdmissionExpired",
    "AdmissionPolicy",
    "AdmissionQueue",
    "AdmissionRejected",
]


class AdmissionRejected(RuntimeError):
    """The submission was refused at the door (never queued or shed)."""

    def __init__(self, application: str, user: str, reason: str):
        super().__init__(
            f"application {application!r} rejected at admission ({reason})"
        )
        self.application = application
        self.user = user
        self.reason = reason


class AdmissionExpired(RuntimeError):
    """The submission sat queued past its TTL/deadline and was expired."""

    def __init__(self, application: str, user: str, waited_s: float):
        super().__init__(
            f"application {application!r} expired in the admission queue "
            f"after {waited_s:.3f}s"
        )
        self.application = application
        self.user = user
        self.waited_s = waited_s


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounded-admission knobs; every field ``None`` = that check off."""

    #: queue bound; on overflow the worst entry is shed (None = unbounded)
    max_queued: Optional[int] = None
    #: per-user token-bucket refill rate, submissions per second
    user_rate_per_s: Optional[float] = None
    #: token-bucket burst capacity (only meaningful with a rate)
    user_burst: int = 2
    #: max entries one user may have queued at once (None = unlimited)
    user_max_queued: Optional[int] = None
    #: default in-queue TTL applied when a submission carries none
    default_ttl_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_queued is not None and self.max_queued < 1:
            raise ValueError("max_queued must be >= 1")
        if self.user_rate_per_s is not None and self.user_rate_per_s <= 0:
            raise ValueError("user_rate_per_s must be positive")
        if self.user_burst < 1:
            raise ValueError("user_burst must be >= 1")
        if self.user_max_queued is not None and self.user_max_queued < 1:
            raise ValueError("user_max_queued must be >= 1")
        if self.default_ttl_s is not None and self.default_ttl_s <= 0:
            raise ValueError("default_ttl_s must be positive")


class _TokenBucket:
    """Deterministic token bucket on the virtual clock."""

    def __init__(self, rate: float, burst: int):
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last = 0.0

    def take(self, now: float) -> bool:
        self.tokens = min(
            self.burst, self.tokens + (now - self.last) * self.rate
        )
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(order=True)
class _Pending:
    sort_key: tuple
    afg: ApplicationFlowGraph = field(compare=False)
    scheduler: Optional[SiteScheduler] = field(compare=False)
    done: Signal = field(compare=False)
    submitted_at: float = field(compare=False, default=0.0)
    execute_payloads: Optional[bool] = field(compare=False, default=None)
    wait_span: Optional[SpanContext] = field(compare=False, default=None)
    user: str = field(compare=False, default="")
    priority: int = field(compare=False, default=0)
    deadline_at: Optional[float] = field(compare=False, default=None)
    state: str = field(compare=False, default="queued")

    @property
    def badness(self) -> tuple:
        """Shed order: lowest priority, latest deadline, latest arrival.

        The queued entry with the *maximum* badness is the overflow
        victim; a newcomer only displaces it if strictly better.
        """
        deadline = self.deadline_at if self.deadline_at is not None else math.inf
        return (-self.priority, deadline, self.sort_key[1])


class AdmissionQueue:
    """Serialise application launches by priority at one site."""

    def __init__(self, runtime: "VDCERuntime", max_concurrent: int = 1,
                 site: Optional[str] = None,
                 policy: Optional[AdmissionPolicy] = None):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.runtime = runtime
        self.sim: Simulator = runtime.sim
        self.site = site or runtime.default_site
        self.max_concurrent = max_concurrent
        self.policy = policy
        self._heap: List[_Pending] = []
        self._seq = itertools.count()
        self._running = 0
        self.admitted_order: List[str] = []
        #: deepest the queue ever got (the I10 bound witness)
        self.peak_queued = 0
        #: every shed/expiry, in order: time, application, user, reason
        self.shed_log: List[Dict[str, Any]] = []
        self._buckets: Dict[str, _TokenBucket] = {}
        queues = getattr(runtime, "admission_queues", None)
        if queues is not None:
            queues.append(self)

    def submit(
        self,
        afg: ApplicationFlowGraph,
        user: str,
        scheduler: Optional[SiteScheduler] = None,
        execute_payloads: Optional[bool] = None,
        deadline_s: Optional[float] = None,
        ttl_s: Optional[float] = None,
    ) -> Signal:
        """Enqueue an application under ``user``'s priority.

        Returns a signal that succeeds with the
        :class:`~repro.runtime.execution.ApplicationResult` when the
        application finishes (or fails with its error — including
        :class:`AdmissionRejected` / :class:`AdmissionExpired` when the
        admission policy sheds it).  ``deadline_s`` / ``ttl_s`` are
        relative to now; an entry still queued when either passes is
        expired in place.
        """
        account = self.runtime.repositories[self.site].users.get(user)
        done = self.sim.signal(f"admission:{afg.name}")
        now = self.sim.now
        policy = self.policy
        if policy is not None:
            brownout = getattr(self.runtime, "brownout", None)
            if brownout is not None and brownout.refuse_new_work():
                return self._reject(afg, user, "brownout", done)
            if policy.user_max_queued is not None:
                queued_by_user = sum(
                    1 for e in self._heap if e.user == user
                )
                if queued_by_user >= policy.user_max_queued:
                    return self._reject(afg, user, "quota", done)
            if policy.user_rate_per_s is not None:
                bucket = self._buckets.get(user)
                if bucket is None:
                    bucket = self._buckets[user] = _TokenBucket(
                        policy.user_rate_per_s, policy.user_burst
                    )
                    bucket.last = now
                if not bucket.take(now):
                    return self._reject(afg, user, "rate", done)

        deadline_at = now + deadline_s if deadline_s is not None else None
        wait_span = None
        spans = self.runtime.spans
        entry = _Pending(
            # heap is a min-heap: negate priority so higher goes first
            sort_key=(-account.priority, next(self._seq)),
            afg=afg,
            scheduler=scheduler,
            done=done,
            submitted_at=now,
            execute_payloads=execute_payloads,
            wait_span=None,
            user=user,
            priority=account.priority,
            deadline_at=deadline_at,
        )
        if policy is not None and policy.max_queued is not None:
            if len(self._heap) >= policy.max_queued:
                victim = max(self._heap, key=lambda e: e.badness)
                if victim.badness > entry.badness:
                    self._shed_queued(victim, "queue_full")
                else:
                    return self._reject(afg, user, "queue_full", done)
        if spans.enabled:
            root = spans.root_of(afg.name, source=f"admission:{self.site}")
            wait_span = spans.open(
                SpanKind.ADMISSION_WAIT, afg.name, parent=root,
                source=f"admission:{self.site}", priority=account.priority,
            )
            entry.wait_span = wait_span
        heapq.heappush(self._heap, entry)
        self.peak_queued = max(self.peak_queued, len(self._heap))
        expire_at = None
        if ttl_s is not None:
            expire_at = now + ttl_s
        elif policy is not None and policy.default_ttl_s is not None:
            expire_at = now + policy.default_ttl_s
        if deadline_at is not None:
            expire_at = (
                deadline_at if expire_at is None
                else min(expire_at, deadline_at)
            )
        if expire_at is not None:
            self.sim.call_at(expire_at, lambda: self._expire(entry))
        self.sim.call_at(now, self._dispatch)
        return done

    @property
    def queued(self) -> int:
        return len(self._heap)

    @property
    def running(self) -> int:
        return self._running

    # -- shedding ---------------------------------------------------------

    def _record_shed(self, afg: ApplicationFlowGraph, user: str,
                     reason: str, waited_s: float = 0.0) -> None:
        self.shed_log.append({
            "time": round(self.sim.now, 9),
            "application": afg.name,
            "user": user,
            "reason": reason,
        })
        tracer = self.runtime.tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.SHED, source=f"admission:{self.site}",
                application=afg.name, user=user, reason=reason,
                waited_s=round(waited_s, 9),
            )
        metrics = self.sim.metrics
        if metrics.enabled:
            metrics.counter(
                "vdce_shed_total",
                "submissions shed by the admission controller, by reason",
            ).inc(reason=reason, site=self.site)

    def _reject(self, afg: ApplicationFlowGraph, user: str, reason: str,
                done: Signal) -> Signal:
        """Refuse a submission at the door (it never entered the queue)."""
        self._record_shed(afg, user, reason)
        done.fail(AdmissionRejected(afg.name, user, reason))
        return done

    def _shed_queued(self, entry: _Pending, reason: str) -> None:
        """Evict a queued entry (overflow preemption by a better arrival)."""
        self._heap.remove(entry)
        heapq.heapify(self._heap)
        entry.state = "shed"
        waited = self.sim.now - entry.submitted_at
        self._record_shed(entry.afg, entry.user, reason, waited_s=waited)
        spans = self.runtime.spans
        if entry.wait_span is not None:
            spans.close(
                entry.wait_span, source=f"admission:{self.site}",
                status="shed", wait_s=waited,
            )
            spans.close_root(
                entry.afg.name, source=f"admission:{self.site}", status="shed"
            )
        entry.done.fail(
            AdmissionRejected(entry.afg.name, entry.user, reason)
        )

    def _expire(self, entry: _Pending) -> None:
        """TTL/deadline timer: expire the entry if it is still queued."""
        if entry.state != "queued" or entry not in self._heap:
            return
        self._heap.remove(entry)
        heapq.heapify(self._heap)
        entry.state = "expired"
        waited = self.sim.now - entry.submitted_at
        self._record_shed(entry.afg, entry.user, "expired", waited_s=waited)
        spans = self.runtime.spans
        if entry.wait_span is not None:
            spans.close(
                entry.wait_span, source=f"admission:{self.site}",
                status="expired", wait_s=waited,
            )
            spans.close_root(
                entry.afg.name, source=f"admission:{self.site}",
                status="expired",
            )
        entry.done.fail(
            AdmissionExpired(entry.afg.name, entry.user, waited)
        )

    # -- dispatch ---------------------------------------------------------

    def _concurrency_limit(self) -> int:
        brownout = getattr(self.runtime, "brownout", None)
        if brownout is not None:
            return brownout.concurrency_limit(self.max_concurrent)
        return self.max_concurrent

    def _dispatch(self) -> None:
        while self._heap and self._running < self._concurrency_limit():
            entry = heapq.heappop(self._heap)
            entry.state = "running"
            self._running += 1
            self.admitted_order.append(entry.afg.name)
            wait = self.sim.now - entry.submitted_at
            stats = self.runtime.stats
            stats.queue_wait_s += wait
            stats.queue_waits[entry.afg.name] = wait
            if entry.wait_span is not None:
                self.runtime.spans.close(
                    entry.wait_span, source=f"admission:{self.site}",
                    wait_s=wait,
                )
            self.sim.process(self._run_entry(entry),
                             name=f"admitted:{entry.afg.name}")

    def _run_entry(self, entry: _Pending):
        try:
            table, _elapsed = yield from self.runtime.schedule_process(
                entry.afg, entry.scheduler, local_site=self.site
            )
            result = yield self.runtime.execute_process(
                entry.afg, table, submit_site=self.site,
                execute_payloads=entry.execute_payloads,
            )
        except Exception as exc:  # noqa: BLE001 - surfaced via the signal
            self._running -= 1
            self.sim.call_at(self.sim.now, self._dispatch)
            self.runtime.spans.abandon_app(
                entry.afg.name, reason=type(exc).__name__,
                source=f"admission:{self.site}",
            )
            entry.done.fail(exc)
            return
        self._running -= 1
        self.sim.call_at(self.sim.now, self._dispatch)
        entry.done.succeed(result)

"""Priority-aware admission queue — the paper's QoS hook (§1).

The introduction promises "managing the Quality of Service (QoS)
requirements", and the user-accounts database carries a *priority*
field (§3).  This module is where the two meet: applications submitted
to a site enter an admission queue ordered by user priority (higher
first, FIFO within a priority), and at most ``max_concurrent``
applications execute at once.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.afg.graph import ApplicationFlowGraph
from repro.obs.spans import SpanContext, SpanKind
from repro.scheduler.site_scheduler import SiteScheduler
from repro.sim.kernel import Signal, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.vdce_runtime import VDCERuntime

__all__ = ["AdmissionQueue"]


@dataclass(order=True)
class _Pending:
    sort_key: tuple
    afg: ApplicationFlowGraph = field(compare=False)
    scheduler: Optional[SiteScheduler] = field(compare=False)
    done: Signal = field(compare=False)
    submitted_at: float = field(compare=False, default=0.0)
    execute_payloads: Optional[bool] = field(compare=False, default=None)
    wait_span: Optional[SpanContext] = field(compare=False, default=None)


class AdmissionQueue:
    """Serialise application launches by priority at one site."""

    def __init__(self, runtime: "VDCERuntime", max_concurrent: int = 1,
                 site: Optional[str] = None):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.runtime = runtime
        self.sim: Simulator = runtime.sim
        self.site = site or runtime.default_site
        self.max_concurrent = max_concurrent
        self._heap: List[_Pending] = []
        self._seq = itertools.count()
        self._running = 0
        self.admitted_order: List[str] = []

    def submit(
        self,
        afg: ApplicationFlowGraph,
        user: str,
        scheduler: Optional[SiteScheduler] = None,
        execute_payloads: Optional[bool] = None,
    ) -> Signal:
        """Enqueue an application under ``user``'s priority.

        Returns a signal that succeeds with the
        :class:`~repro.runtime.execution.ApplicationResult` when the
        application finishes (or fails with its error).
        """
        account = self.runtime.repositories[self.site].users.get(user)
        done = self.sim.signal(f"admission:{afg.name}")
        wait_span = None
        spans = self.runtime.spans
        if spans.enabled:
            root = spans.root_of(afg.name, source=f"admission:{self.site}")
            wait_span = spans.open(
                SpanKind.ADMISSION_WAIT, afg.name, parent=root,
                source=f"admission:{self.site}", priority=account.priority,
            )
        entry = _Pending(
            # heap is a min-heap: negate priority so higher goes first
            sort_key=(-account.priority, next(self._seq)),
            afg=afg,
            scheduler=scheduler,
            done=done,
            submitted_at=self.sim.now,
            execute_payloads=execute_payloads,
            wait_span=wait_span,
        )
        heapq.heappush(self._heap, entry)
        self.sim.call_at(self.sim.now, self._dispatch)
        return done

    @property
    def queued(self) -> int:
        return len(self._heap)

    @property
    def running(self) -> int:
        return self._running

    def _dispatch(self) -> None:
        while self._heap and self._running < self.max_concurrent:
            entry = heapq.heappop(self._heap)
            self._running += 1
            self.admitted_order.append(entry.afg.name)
            wait = self.sim.now - entry.submitted_at
            stats = self.runtime.stats
            stats.queue_wait_s += wait
            stats.queue_waits[entry.afg.name] = wait
            if entry.wait_span is not None:
                self.runtime.spans.close(
                    entry.wait_span, source=f"admission:{self.site}",
                    wait_s=wait,
                )
            self.sim.process(self._run_entry(entry),
                             name=f"admitted:{entry.afg.name}")

    def _run_entry(self, entry: _Pending):
        try:
            table, _elapsed = yield from self.runtime.schedule_process(
                entry.afg, entry.scheduler, local_site=self.site
            )
            result = yield self.runtime.execute_process(
                entry.afg, table, submit_site=self.site,
                execute_payloads=entry.execute_payloads,
            )
        except Exception as exc:  # noqa: BLE001 - surfaced via the signal
            self._running -= 1
            self.sim.call_at(self.sim.now, self._dispatch)
            self.runtime.spans.abandon_app(
                entry.afg.name, reason=type(exc).__name__,
                source=f"admission:{self.site}",
            )
            entry.done.fail(exc)
            return
        self._running -= 1
        self.sim.call_at(self.sim.now, self._dispatch)
        entry.done.succeed(result)

"""VDCERuntime: one whole VDCE deployment, wired and running.

Composes, for a given :class:`~repro.sim.topology.Topology`:

* a :class:`~repro.repository.store.SiteRepository` per site
  (bootstrapped if not supplied),
* a :class:`~repro.runtime.site_manager.SiteManager` per site, with a
  :class:`~repro.runtime.group_manager.GroupManager` per group, a
  :class:`~repro.runtime.monitor.MonitorDaemon` and an
  :class:`~repro.runtime.app_controller.AppController` per host,
* the shared services (I/O, console) and statistics.

It also provides the *distributed scheduling* wrapper of paper §3: the
pure :class:`~repro.scheduler.site_scheduler.SiteScheduler` already
computes placements; :meth:`schedule_process` reproduces the message
exchange around it (AFG multicast to the k nearest sites, bid replies)
as real simulated transfers, so scheduling overhead is measurable
(experiment E11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.afg.graph import ApplicationFlowGraph
from repro.afg.serialize import afg_to_json
from repro.metrics.registry import MetricsRegistry, NULL_METRICS
from repro.net.rpc import (
    BreakerPolicy,
    BreakerRegistry,
    ControlPlane,
    RetryPolicy,
    RpcTimeout,
)
from repro.obs.spans import NULL_SPANS, SpanKind, SpanRecorder
from repro.runtime.overload import (
    BrownoutController,
    OverloadPolicy,
    SiteOverloaded,
)
from repro.repository.store import SiteRepository
from repro.runtime.app_controller import AppController
from repro.runtime.execution import ApplicationResult, ExecutionCoordinator
from repro.runtime.group_manager import GroupManager
from repro.runtime.integrity import IntegrityManager, IntegrityPolicy
from repro.runtime.membership import MembershipCoordinator
from repro.runtime.monitor import MonitorDaemon
from repro.runtime.services import ConsoleService, IOService
from repro.runtime.site_manager import SiteManager
from repro.runtime.stats import RuntimeStats
from repro.runtime.straggler import (
    HealthPolicy,
    HostHealth,
    RatioTracker,
    SpeculationPolicy,
)
from repro.scheduler.allocation import AllocationTable
from repro.scheduler.federation import FederationView
from repro.scheduler.prediction import PredictionModel
from repro.scheduler.site_scheduler import SiteScheduler
from repro.sim.kernel import AllOf, AnyOf, Simulator, Timeout
from repro.sim.topology import Topology
from repro.tasklib.registry import TaskRegistry, default_registry
from repro.trace.events import EventKind
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = ["RuntimeConfig", "VDCERuntime"]

#: approximate wire size of a serialised AFG task entry, MB
_AFG_BYTES_PER_TASK_MB = 0.0005
#: approximate wire size of one host-selection bid, MB
_BID_BYTES_MB = 0.0002


@dataclass(frozen=True)
class RuntimeConfig:
    """Deployment-wide runtime parameters (the paper's tunables)."""

    #: Monitor daemon measurement period (paper: "periodically measures")
    monitor_period_s: float = 2.0
    #: Group Manager significant-change threshold on run-queue length
    change_threshold: float = 0.25
    #: Group Manager echo-packet period
    echo_period_s: float = 5.0
    #: probability that a single echo round trip is lost (lossy LAN)
    echo_loss_prob: float = 0.0
    #: consecutive missed echoes before a host is declared down
    suspicion_threshold: int = 1
    #: Application Controller load threshold for task rescheduling
    load_threshold: float = 4.0
    #: Application Controller check period
    check_period_s: float = 2.0
    #: run task implementations for real (False = shape-only execution)
    execute_payloads: bool = True
    #: timeout/retry/backoff for control-plane RPCs (scheduling, allocation,
    #: channel signalling, failure reports)
    rpc_policy: RetryPolicy = RetryPolicy()
    #: more patient policy for payload transfers killed by link outages
    data_policy: RetryPolicy = RetryPolicy(
        timeout_s=5.0, max_attempts=7, backoff_base_s=0.25
    )
    #: how long the site scheduler waits for remote bids before
    #: proceeding with whichever of the k sites answered (Fig. 2 step 5)
    bid_deadline_s: float = 6.0
    #: failure-detection discipline: "count" (consecutive missed echoes,
    #: the paper's protocol) or "phi" (phi-accrual over inter-arrival
    #: history — SUSPECT/TRUST transitions, slow != dead)
    detector: str = "count"
    #: phi at which a host becomes SUSPECTed (phi detector only)
    phi_suspect: float = 1.0
    #: phi at which a SUSPECTed host is declared down (phi detector only)
    phi_down: float = 2.0
    #: count detector's per-round echo response deadline; None means the
    #: echo period itself (any response within the round counts)
    echo_timeout_s: Optional[float] = None
    #: speculative re-execution of straggling tasks (None = disabled:
    #: fault-free runs draw zero extra RNG, traces unchanged)
    speculation: Optional[SpeculationPolicy] = None
    #: host health scoring + quarantine (None = disabled)
    health: Optional[HealthPolicy] = None
    #: causal span tracing (repro.obs): tree-structured open/close span
    #: events threaded through RPC, admission, scheduling and execution.
    #: Off by default — the disabled recorder is a shared null object and
    #: fault-free traces/hashes are byte-identical either way.
    causal_spans: bool = False
    #: backpressure + brownout ladder (None = disabled: no occupancy
    #: bookkeeping, no bid exclusion, traces/hashes unchanged)
    overload: Optional[OverloadPolicy] = None
    #: per-WAN-link RPC circuit breakers (None = disabled)
    breaker: Optional[BreakerPolicy] = None
    #: end-to-end data integrity: content-hash every produced artifact,
    #: verify on receive/stage-in, repair via refetch → lineage
    #: regeneration → poison-quarantine (None = disabled: no hashes are
    #: computed, no extra RNG is drawn, traces/hashes unchanged)
    data_integrity: Optional[IntegrityPolicy] = None

    def __post_init__(self) -> None:
        if self.monitor_period_s <= 0 or self.echo_period_s <= 0:
            raise ValueError("periods must be positive")
        if self.change_threshold < 0:
            raise ValueError("change_threshold must be non-negative")
        if not (0.0 <= self.echo_loss_prob < 1.0):
            raise ValueError("echo_loss_prob must be in [0, 1)")
        if self.suspicion_threshold < 1:
            raise ValueError("suspicion_threshold must be >= 1")
        if self.load_threshold <= 0 or self.check_period_s <= 0:
            raise ValueError("load_threshold/check_period_s must be positive")
        if self.bid_deadline_s <= 0:
            raise ValueError("bid_deadline_s must be positive")
        if self.detector not in ("count", "phi"):
            raise ValueError(
                f"detector must be 'count' or 'phi', got {self.detector!r}"
            )
        if not (0.0 < self.phi_suspect < self.phi_down):
            raise ValueError("need 0 < phi_suspect < phi_down")
        if self.echo_timeout_s is not None and self.echo_timeout_s <= 0:
            raise ValueError("echo_timeout_s must be positive")


class VDCERuntime:
    """All control- and data-plane components of one deployment."""

    def __init__(
        self,
        topology: Topology,
        repositories: Optional[Mapping[str, SiteRepository]] = None,
        registry: Optional[TaskRegistry] = None,
        config: RuntimeConfig = RuntimeConfig(),
        model: Optional[PredictionModel] = None,
        default_site: Optional[str] = None,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        self.topology = topology
        self.sim: Simulator = topology.sim
        self.registry = registry or default_registry()
        self.config = config
        self.model = model or PredictionModel()
        self.stats = RuntimeStats()
        #: shared structured tracer (no-op by default); bound to the
        #: virtual clock and handed to every component below
        self.tracer = self.sim.attach_tracer(tracer)
        #: shared metrics registry (no-op by default); components reach
        #: it through ``self.sim.metrics``
        self.metrics = self.sim.attach_metrics(metrics)
        self.default_site = default_site or topology.site_names[0]
        #: causal span recorder (repro.obs); the shared null object
        #: unless both causal_spans and the tracer are enabled
        self.spans = (
            SpanRecorder(self.tracer)
            if config.causal_spans and self.tracer.enabled
            else NULL_SPANS
        )
        #: federation brownout controller (overload backpressure); None
        #: when the overload policy is disabled
        self.brownout: Optional[BrownoutController] = (
            BrownoutController(self.sim, config.overload, tracer=self.tracer)
            if config.overload is not None
            else None
        )
        #: per-WAN-link circuit breakers; None when disabled
        self.breakers: Optional[BreakerRegistry] = (
            BreakerRegistry(self.sim, config.breaker, tracer=self.tracer)
            if config.breaker is not None
            else None
        )
        #: admission queues register themselves here so metrics export
        #: can surface their depth/occupancy gauges
        self.admission_queues: List = []
        #: retrying control-plane messaging shared by every component
        self.control = ControlPlane(
            self.sim, topology.network, stats=self.stats,
            policy=config.rpc_policy, tracer=self.tracer,
            spans=self.spans, breakers=self.breakers,
        )
        #: host health scoring (straggler defense); None when disabled
        self.health: Optional[HostHealth] = (
            HostHealth(self.sim, config.health, tracer=self.tracer)
            if config.health is not None
            else None
        )
        #: per-host measured/predicted ratio history for the adaptive
        #: speculation trigger; None when speculation is disabled
        self.ratio_tracker: Optional[RatioTracker] = (
            RatioTracker(config.speculation.ratio_window)
            if config.speculation is not None
            else None
        )

        if repositories is None:
            repositories = {
                name: SiteRepository.bootstrap(site, self.registry)
                for name, site in topology.sites.items()
            }
        self.repositories: Dict[str, SiteRepository] = dict(repositories)

        self.site_managers: Dict[str, SiteManager] = {}
        self.group_managers: Dict[str, GroupManager] = {}
        self.monitors: Dict[str, MonitorDaemon] = {}
        self.app_controllers: Dict[str, AppController] = {}

        for site_name, site in topology.sites.items():
            lan_latency = topology.network.lan_link(site_name).spec.latency_s
            manager = SiteManager(
                self.sim, site, self.repositories[site_name], self.stats,
                lan_latency_s=lan_latency,
                tracer=self.tracer,
                health=self.health,
                spans=self.spans,
                brownout=self.brownout,
            )
            self.site_managers[site_name] = manager
            for group in site.groups.values():
                gm = GroupManager(
                    self.sim, group, manager, self.stats,
                    change_threshold=config.change_threshold,
                    echo_period_s=config.echo_period_s,
                    lan_latency_s=lan_latency,
                    echo_loss_prob=config.echo_loss_prob,
                    suspicion_threshold=config.suspicion_threshold,
                    tracer=self.tracer,
                    control=self.control,
                    lan_link=topology.network.lan_link(site_name),
                    detector=config.detector,
                    phi_suspect=config.phi_suspect,
                    phi_down=config.phi_down,
                    echo_timeout_s=config.echo_timeout_s,
                    health=self.health,
                    spans=self.spans,
                )
                manager.attach_group_manager(gm)
                self.group_managers[gm.name] = gm
                for host in group:
                    self.monitors[host.name] = MonitorDaemon(
                        self.sim, host, gm, self.stats,
                        period_s=config.monitor_period_s,
                        lan_latency_s=lan_latency,
                        tracer=self.tracer,
                    )
                    controller = AppController(
                        self.sim, host, self.stats,
                        load_threshold=config.load_threshold,
                        check_period_s=config.check_period_s,
                        tracer=self.tracer,
                    )
                    manager.attach_app_controller(controller)
                    self.app_controllers[host.name] = controller

        for manager in self.site_managers.values():
            manager.peers = dict(self.site_managers)

        #: elastic membership driver (DESIGN §17): host join / graceful
        #: drain / decommission / rejoin at runtime.  Pure bookkeeping
        #: until a transition is requested — fault-free runs unchanged.
        self.membership = MembershipCoordinator(self)
        for manager in self.site_managers.values():
            manager.membership = self.membership

        #: end-to-end data integrity (artifact hashes + repair ladder);
        #: None when disabled — no hashing, no verification, no repair
        self.integrity: Optional[IntegrityManager] = (
            IntegrityManager(
                self.sim, config.data_integrity,
                tracer=self.tracer, metrics=self.metrics,
            )
            if config.data_integrity is not None
            else None
        )
        self.io_service = IOService(
            self.sim, topology.network, self.stats, tracer=self.tracer,
            integrity=self.integrity,
        )
        self.console = ConsoleService(self.sim)
        self._monitoring_started = False

    # -- control plane ------------------------------------------------------

    def start_monitoring(self) -> None:
        """Start every Monitor daemon and Group Manager echo loop."""
        if self._monitoring_started:
            raise RuntimeError("monitoring already started")
        self._monitoring_started = True
        for monitor in self.monitors.values():
            monitor.start()
        for gm in self.group_managers.values():
            gm.start_echo()

    # -- metrics ------------------------------------------------------------

    def export_metrics(self) -> MetricsRegistry:
        """Sync the registry with everything known at export time.

        Folds the :class:`~repro.runtime.stats.RuntimeStats` counters
        into registry counters (one source of truth for ``vdce
        metrics`` and the E5–E8 assertions), sets the kernel gauges
        (virtual time, event rate) and the monitoring suppression
        ratio, then returns the registry.  Safe to call repeatedly; a
        no-op on the disabled registry.
        """
        if self.metrics.enabled:
            self.stats.export_to(self.metrics)
            self.sim.export_metrics()
            reports = self.stats.workload_forwards + self.stats.workload_suppressed
            self.metrics.gauge(
                "vdce_workload_suppression_ratio",
                "share of monitor measurements the Group Managers filtered",
            ).set(
                self.stats.workload_suppressed / reports if reports else 0.0
            )
            if self.admission_queues:
                queued = self.metrics.gauge(
                    "vdce_admission_queued",
                    "applications waiting in the admission queue",
                )
                running = self.metrics.gauge(
                    "vdce_admission_running",
                    "applications admitted and currently executing",
                )
                for queue in self.admission_queues:
                    queued.set(float(queue.queued), site=queue.site)
                    running.set(float(queue.running), site=queue.site)
        return self.metrics

    def neighbor_order(self, site_name: str) -> List[str]:
        return self.topology.neighbor_sites(site_name)

    def federation_view(self, local_site: Optional[str] = None) -> FederationView:
        """The local site's view of the federation.

        Sites whose Site Manager is crashed are excluded: a dead VDCE
        Server answers no bids and takes no allocations, so it must not
        attract placements until it re-registers.
        """
        view = FederationView.from_topology(
            self.topology, self.repositories, local_site or self.default_site
        )
        dead = {
            name for name, sm in self.site_managers.items() if not sm.alive
        }
        if dead:
            view = view.restricted(
                {s for s in self.topology.site_names if s not in dead}
            )
        return view

    # -- distributed scheduling (messages + pure placement) -----------------------

    def schedule_process(
        self,
        afg: ApplicationFlowGraph,
        scheduler: Optional[SiteScheduler] = None,
        local_site: Optional[str] = None,
    ):
        """Generator process: distributed scheduling with real messages.

        Returns ``(table, scheduling_time_s)``.  Reproduces Fig. 2
        steps 2-5 as traffic: the AFG multicast to the k nearest
        neighbour sites rides the WAN (size proportional to the graph)
        through the retrying control plane, and each site's bids ride
        back.  Sites that do not answer within ``bid_deadline_s`` — the
        link is down, or every retry was lost — are simply left out:
        placement proceeds with the subset that answered, degrading to
        local-only scheduling under a full partition.
        """
        scheduler = scheduler or SiteScheduler(k=2, model=self.model)
        local_site = local_site or self.default_site
        started = self.sim.now
        span_id = self.tracer.begin_span(
            "schedule", source=f"sm:{local_site}", application=afg.name
        )
        sched_span = None
        if self.spans.enabled:
            root = self.spans.root_of(afg.name, source=f"sm:{local_site}")
            sched_span = self.spans.open(
                SpanKind.SCHEDULE, afg.name, parent=root,
                source=f"sm:{local_site}", site=local_site,
            )
        view = self.federation_view(local_site)
        remotes = view.remote_sites(scheduler.k)

        afg_mb = max(_AFG_BYTES_PER_TASK_MB * len(afg), _AFG_BYTES_PER_TASK_MB)
        local_server = self.topology.site(local_site).server_host.name

        def exchange(remote: str):
            remote_server = self.topology.site(remote).server_host.name
            exchange_started = self.sim.now
            bid_span = None
            if self.spans.enabled:
                bid_span = self.spans.open(
                    SpanKind.BID_EXCHANGE, afg.name, parent=sched_span,
                    source=f"sm:{local_site}", remote=remote,
                )

            def on_send(attempt: int) -> None:
                # step 3: multicast the AFG (once per attempt on the wire)
                self.stats.scheduler_messages += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.AFG_MULTICAST, source=f"sm:{local_site}",
                        application=afg.name, remote=remote, size_mb=afg_mb,
                        attempt=attempt,
                    )

            def on_reply(attempt: int) -> None:
                self.stats.scheduler_messages += 1

            def handle():
                # step 4 at the remote site: host selection over its repository
                bids = self.site_managers[remote].handle_scheduling_request(
                    afg, scheduler.model
                )
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.BID_REPLY, source=f"sm:{remote}",
                        application=afg.name, bids=len(bids),
                    )
                return bids

            try:
                bids = yield from self.control.request(
                    local_server, remote_server, handle,
                    payload_mb=afg_mb,
                    reply_mb=lambda b: _BID_BYTES_MB * max(1, len(b)),
                    label=f"sched:{afg.name}:{remote}",
                    on_send=on_send, on_reply=on_reply,
                    span=bid_span,
                )
            except SiteOverloaded as exc:
                # backpressure: the saturated site declined to bid.  Not
                # a failure — placement proceeds with whoever answered.
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.SITE_OVERLOADED, source=f"sm:{local_site}",
                        application=afg.name, remote=remote,
                        occupancy=round(exc.occupancy, 9),
                    )
                if bid_span is not None:
                    self.spans.close(
                        bid_span, source=f"sm:{local_site}",
                        status="overloaded",
                    )
                return None
            except RpcTimeout:
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.SITE_UNREACHABLE, source=f"sm:{local_site}",
                        application=afg.name, remote=remote, phase="scheduling",
                    )
                if bid_span is not None:
                    self.spans.close(
                        bid_span, source=f"sm:{local_site}",
                        status="unreachable",
                    )
                return None
            if self.metrics.enabled:
                self.metrics.histogram(
                    "vdce_bid_latency_seconds",
                    "AFG multicast -> bid reply round trip per remote site",
                    buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
                ).observe(self.sim.now - exchange_started, site=remote)
            if bid_span is not None:
                self.spans.close(
                    bid_span, source=f"sm:{local_site}", bids=len(bids),
                )
            return remote

        procs = [
            self.sim.process(exchange(r), name=f"sched-xchg:{r}") for r in remotes
        ]
        if procs:
            # step 5 with a deadline: wait for every exchange, but never
            # longer than bid_deadline_s — late answers are dropped.
            yield AnyOf([AllOf(procs), Timeout(self.config.bid_deadline_s)])
        answered = {p.value for p in procs if p.triggered and p.value is not None}
        if len(answered) < len(remotes):
            view = view.restricted(answered)

        # placement itself (pure); its wall cost is negligible vs messages
        table = scheduler.schedule(
            afg, view, tracer=self.tracer, metrics=self.metrics,
            health_of=(self.health.factor_of if self.health is not None
                       else None),
        )
        self.tracer.end_span(span_id, source=f"sm:{local_site}")
        if sched_span is not None:
            self.spans.close(
                sched_span, source=f"sm:{local_site}",
                sites_answered=len(answered), tasks=len(table),
            )
        if self.metrics.enabled:
            self.metrics.histogram(
                "vdce_schedule_seconds",
                "distributed scheduling time (multicast + bids + placement)",
                buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
            ).observe(self.sim.now - started)
        return table, self.sim.now - started

    # -- execution -----------------------------------------------------------------

    def execute_process(
        self,
        afg: ApplicationFlowGraph,
        table: AllocationTable,
        submit_site: Optional[str] = None,
        execute_payloads: Optional[bool] = None,
        journal=None,
        checkpoint=None,
    ):
        """Spawn the execution coordinator; process value = ApplicationResult.

        ``journal`` (a :class:`~repro.runtime.checkpoint.CheckpointJournal`)
        turns on durable checkpointing; ``checkpoint`` (a parsed
        :class:`~repro.runtime.checkpoint.ApplicationCheckpoint`) makes
        this a resume that re-executes only the incomplete frontier.
        """
        coordinator = ExecutionCoordinator(
            self,
            afg,
            table,
            execute_payloads=(
                self.config.execute_payloads
                if execute_payloads is None
                else execute_payloads
            ),
            submit_site=submit_site or self.default_site,
            journal=journal,
            checkpoint=checkpoint,
        )
        return coordinator.start()

    def submit(
        self,
        afg: ApplicationFlowGraph,
        scheduler: Optional[SiteScheduler] = None,
        submit_site: Optional[str] = None,
        user: Optional[str] = None,
        password: Optional[str] = None,
        execute_payloads: Optional[bool] = None,
        limit: Optional[float] = None,
    ) -> ApplicationResult:
        """Convenience one-shot: authenticate, schedule, execute, return.

        Drives the simulator until the application completes.  When
        credentials are given they are checked against the submitting
        site's user-accounts database (paper §2: "After user
        authentication, the Application Editor is loaded ...").
        """
        site = submit_site or self.default_site
        if user is not None:
            self.repositories[site].users.authenticate(user, password or "")

        def pipeline():
            table, _sched_time = yield from self.schedule_process(
                afg, scheduler, local_site=site
            )
            result = yield self.execute_process(
                afg, table, submit_site=site, execute_payloads=execute_payloads
            )
            return result

        proc = self.sim.process(pipeline(), name=f"submit:{afg.name}")
        return self.sim.run_until_complete(proc, limit=limit)

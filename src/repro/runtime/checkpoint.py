"""Durable application checkpoint journal and resume support.

The paper targets "long-running C3I applications on unreliable WAN
resources"; losing every completed task to a runtime restart is not an
option at that scale.  This module gives one application a durable,
append-only, crash-consistent journal recording

* the schedule (AFG + resource allocation table + submitting site),
* every task completion, with the content hash, encoded value and
  location of each output port (so completed outputs are re-stageable
  through the Data Manager machinery without re-running the task),
* every reschedule, and
* every resume.

Crash consistency is per-record: each JSONL line carries a checksum of
its own body, and the reader stops at the first corrupt or truncated
line — a crash mid-append loses at most the record being written,
never an earlier one.  Opening an existing journal for append truncates
any torn tail first, so post-crash appends are always readable.

:func:`resume_run` rebuilds a fresh deployment from the journal plus
the ``save_repositories()`` snapshots next to it and re-executes only
the incomplete frontier.  The *resume-equivalence oracle* rests on the
task library being deterministic pure functions of ``(inputs, scale)``:
:func:`expected_output_hashes` evaluates the AFG without any runtime at
all, and crash+resume must reproduce exactly those final output hashes
(checked by the chaos invariant I5, the CLI ``repro resume --expect``
path, and the resume test suite).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.afg.graph import ApplicationFlowGraph
from repro.afg.serialize import afg_from_dict, afg_to_dict
from repro.scheduler.allocation import AllocationTable

__all__ = [
    "ApplicationCheckpoint",
    "CheckpointJournal",
    "create_checkpoint_dir",
    "decode_value",
    "encode_value",
    "expected_output_hashes",
    "final_output_hashes",
    "journal_path",
    "resume_run",
    "value_hash",
]

_JOURNAL_FILENAME = "journal.jsonl"
_META_FILENAME = "meta.json"
_REPOS_DIRNAME = "repos"


# -- canonical value hashing -------------------------------------------------


def _feed(h, value: Any) -> None:
    """Feed one value into a hash, type-tagged and representation-stable.

    Canonical across runs and processes: numpy arrays hash their dtype,
    shape and raw bytes; floats their IEEE-754 encoding; dicts their
    sorted items — never ``repr`` or pickle, whose output can vary.
    """
    if value is None:
        h.update(b"N")
    elif isinstance(value, bool):
        h.update(b"B1" if value else b"B0")
    elif isinstance(value, (int, np.integer)):
        h.update(b"I" + str(int(value)).encode("ascii"))
    elif isinstance(value, (float, np.floating)):
        h.update(b"F" + struct.pack(">d", float(value)))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        h.update(b"S" + str(len(raw)).encode("ascii") + b":" + raw)
    elif isinstance(value, bytes):
        h.update(b"Y" + str(len(value)).encode("ascii") + b":" + value)
    elif isinstance(value, np.ndarray):
        h.update(b"A" + value.dtype.str.encode("ascii"))
        h.update(str(value.shape).encode("ascii"))
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (list, tuple)):
        h.update(b"L" + str(len(value)).encode("ascii"))
        for item in value:
            _feed(h, item)
    elif isinstance(value, dict):
        h.update(b"D" + str(len(value)).encode("ascii"))
        for key in sorted(value, key=str):
            _feed(h, str(key))
            _feed(h, value[key])
    else:
        # last resort for exotic payloads: a stable repr round
        h.update(b"R" + repr(value).encode("utf-8"))


def value_hash(value: Any) -> str:
    """Canonical sha256 content hash of one task output value."""
    h = hashlib.sha256()
    _feed(h, value)
    return h.hexdigest()


def encode_value(value: Any) -> str:
    """JSON-safe encoding of an arbitrary output payload."""
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_value(encoded: str) -> Any:
    return pickle.loads(base64.b64decode(encoded.encode("ascii")))


# -- the journal -------------------------------------------------------------


def _record_crc(body: Dict[str, Any]) -> str:
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class CheckpointJournal:
    """Append-only, crash-consistent JSONL journal for one application.

    With a ``path``, every append writes one checksummed line and
    fsyncs — after a crash the file is a valid prefix of the record
    stream plus at most one torn line, which both :meth:`read` and
    re-opening for append discard.  With ``path=None`` the journal is
    memory-only (the chaos harness uses this: same record stream and
    byte accounting, no filesystem).
    """

    def __init__(self, path: Optional[str] = None, enabled: bool = True):
        self.path = path
        self.enabled = enabled
        self.bytes_written = 0
        self._records: List[Dict[str, Any]] = []
        if path is not None and os.path.exists(path):
            self._records, valid_bytes = self._scan(path)
            size = os.path.getsize(path)
            if size > valid_bytes:
                # torn tail from a crash mid-append: drop it before
                # appending, so the stream stays a readable prefix
                with open(path, "r+b") as fh:
                    fh.truncate(valid_bytes)

    # -- write side -------------------------------------------------------

    def append(self, kind: str, **fields: Any) -> int:
        """Append one record; returns the bytes it occupied on the wire."""
        if not self.enabled:
            return 0
        body = {"kind": kind, **fields}
        line_obj = dict(body)
        line_obj["crc"] = _record_crc(body)
        line = json.dumps(line_obj, sort_keys=True, separators=(",", ":")) + "\n"
        raw = line.encode("utf-8")
        if self.path is not None:
            with open(self.path, "ab") as fh:
                fh.write(raw)
                fh.flush()
                os.fsync(fh.fileno())
        self._records.append(body)
        self.bytes_written += len(raw)
        return len(raw)

    # -- read side --------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Every record appended (or recovered from disk), in order."""
        return list(self._records)

    @staticmethod
    def _scan(path: str) -> Tuple[List[Dict[str, Any]], int]:
        """Parse the valid prefix; returns (records, valid byte length)."""
        records: List[Dict[str, Any]] = []
        valid_bytes = 0
        with open(path, "rb") as fh:
            for raw in fh:
                if not raw.endswith(b"\n"):
                    break  # truncated final line
                try:
                    line_obj = json.loads(raw.decode("utf-8"))
                    crc = line_obj.pop("crc")
                except (ValueError, KeyError):
                    break
                if _record_crc(line_obj) != crc:
                    break  # corrupt line: stop, do not trust anything after
                records.append(line_obj)
                valid_bytes += len(raw)
        return records, valid_bytes

    @staticmethod
    def read(path: str) -> List[Dict[str, Any]]:
        """The valid record prefix of a journal file."""
        records, _valid = CheckpointJournal._scan(path)
        return records


# -- the parsed checkpoint ---------------------------------------------------


@dataclass
class ApplicationCheckpoint:
    """One application's recovered state, parsed from its journal."""

    application: str
    scheduler: str
    submit_site: str
    afg: ApplicationFlowGraph
    table: AllocationTable
    #: task id -> its ``task_complete`` journal record
    completed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    reschedules: List[Dict[str, Any]] = field(default_factory=list)
    resumes: int = 0

    @classmethod
    def from_records(cls, records: List[Dict[str, Any]]) -> "ApplicationCheckpoint":
        if not records or records[0].get("kind") != "schedule":
            raise ValueError(
                "journal has no schedule record — nothing to resume from"
            )
        head = records[0]
        checkpoint = cls(
            application=head["application"],
            scheduler=head["scheduler"],
            submit_site=head["submit_site"],
            afg=afg_from_dict(head["afg"]),
            table=AllocationTable.from_dict(head["table"]),
        )
        for record in records[1:]:
            kind = record.get("kind")
            if kind == "task_complete":
                checkpoint.completed[record["task"]] = record
            elif kind == "reschedule":
                checkpoint.reschedules.append(record)
            elif kind == "resume":
                checkpoint.resumes += 1
                checkpoint.submit_site = record.get(
                    "submit_site", checkpoint.submit_site
                )
        return checkpoint

    @classmethod
    def load(cls, path: str) -> "ApplicationCheckpoint":
        return cls.from_records(CheckpointJournal.read(path))

    def incomplete(self) -> List[str]:
        """The frontier to re-execute, in topological order."""
        return [
            task_id
            for task_id in self.afg.topological_order()
            if task_id not in self.completed
        ]

    def output_value(self, task_id: str, port: int) -> Any:
        """Decode one completed task's recorded output payload."""
        record = self.completed[task_id]
        return decode_value(record["outputs"][port]["value"])


# -- resume-equivalence oracle -----------------------------------------------


def expected_output_hashes(afg: ApplicationFlowGraph, registry) -> Dict[str, str]:
    """Final output hashes from pure evaluation — no runtime involved.

    Task implementations are deterministic pure functions of
    ``(inputs, scale)``, so the terminal outputs are independent of
    placement, timing, faults, reschedules and resumes.  This evaluates
    the AFG directly and hashes each terminal task's output list: the
    ground truth any run — interrupted or not — must reproduce.

    File inputs without a registered loader resolve to the same
    :class:`~repro.runtime.services.StagedFile` handle the I/O service
    produces; AFGs whose loaders inject external data are outside this
    oracle's scope.
    """
    from repro.runtime.services import StagedFile

    produced: Dict[Tuple[str, int], Any] = {}
    hashes: Dict[str, str] = {}
    for task_id in afg.topological_order():
        node = afg.task(task_id)
        port_values: Dict[int, Any] = {}
        for edge in afg.in_edges(task_id):
            port_values[edge.dst_port] = produced[(edge.src, edge.src_port)]
        for binding in node.properties.file_inputs():
            port_values[binding.port] = StagedFile(
                binding.file.path, binding.file.size_mb
            )
        inputs = [port_values.get(p) for p in range(node.n_in_ports)]
        outputs = registry.get(node.task_type).run(
            inputs, node.properties.workload_scale
        )
        for port, value in enumerate(outputs):
            produced[(task_id, port)] = value
        if not afg.out_edges(task_id):
            hashes[task_id] = value_hash(outputs)
    return hashes


def final_output_hashes(result) -> Dict[str, str]:
    """Content hashes of an :class:`ApplicationResult`'s terminal outputs."""
    return {
        task_id: value_hash(outputs)
        for task_id, outputs in sorted(result.outputs.items())
    }


# -- checkpoint directories and the resume path ------------------------------


def journal_path(directory: str) -> str:
    return os.path.join(directory, _JOURNAL_FILENAME)


def create_checkpoint_dir(vdce, directory: str) -> CheckpointJournal:
    """Prepare ``directory`` as a durable checkpoint for ``vdce``.

    Writes ``meta.json`` (the deployment spec, so :func:`resume_run`
    can rebuild an equivalent federation) and the per-site repository
    snapshots under ``repos/``, then returns the journal to hand to
    :meth:`~repro.runtime.vdce_runtime.VDCERuntime.execute_process`.
    Call :meth:`~repro.core.vdce.VDCE.save_repositories` again at any
    later point to refresh the durable background state.
    """
    from dataclasses import asdict

    if vdce.spec is None:
        raise ValueError(
            "checkpointing needs a spec-built VDCE (resume must be able "
            "to rebuild the topology)"
        )
    os.makedirs(directory, exist_ok=True)
    meta = {"deployment": asdict(vdce.spec)}
    with open(os.path.join(directory, _META_FILENAME), "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")
    vdce.save_repositories(os.path.join(directory, _REPOS_DIRNAME))
    return CheckpointJournal(journal_path(directory))


def _spec_from_meta(meta: Dict[str, Any]):
    from repro.core.config import DeploymentSpec, HostConfig, SiteConfig

    payload = dict(meta["deployment"])
    sites = []
    for site in payload.pop("sites"):
        site = dict(site)
        site["hosts"] = tuple(HostConfig(**h) for h in site.get("hosts", ()))
        sites.append(SiteConfig(**site))
    payload["sites"] = tuple(sites)
    payload["wan_overrides"] = tuple(
        tuple(o) for o in payload.get("wan_overrides", ())
    )
    return DeploymentSpec(**payload)


def resume_run(
    directory: str,
    submit_site: Optional[str] = None,
    limit: Optional[float] = None,
    tracer=None,
    metrics=None,
    runtime_config=None,
):
    """Rebuild a deployment from a checkpoint directory and finish the app.

    Returns ``(vdce, result)``: a fresh federation restored from the
    ``repos/`` snapshots, and the :class:`ApplicationResult` of
    re-executing only the incomplete frontier (completed tasks are
    restored from the journal and their output edges re-staged from the
    submitting site's server).  The journal keeps growing across
    resumes, so a run that crashes again resumes from even later.
    """
    from repro.core.vdce import VDCE
    from repro.metrics.registry import NULL_METRICS
    from repro.trace.tracer import NULL_TRACER

    with open(os.path.join(directory, _META_FILENAME), encoding="utf-8") as fh:
        meta = json.load(fh)
    checkpoint = ApplicationCheckpoint.load(journal_path(directory))
    repos_dir = os.path.join(directory, _REPOS_DIRNAME)
    repositories = (
        VDCE.load_repositories(repos_dir) if os.path.isdir(repos_dir) else None
    )
    kwargs = {}
    if runtime_config is not None:
        kwargs["runtime_config"] = runtime_config
    vdce = VDCE(
        spec=_spec_from_meta(meta),
        repositories=repositories,
        # explicit None checks: an *empty* Tracer/registry is falsy
        # (len == 0), and `or` would silently swap in the null object
        tracer=tracer if tracer is not None else NULL_TRACER,
        metrics=metrics if metrics is not None else NULL_METRICS,
        **kwargs,
    )
    journal = CheckpointJournal(journal_path(directory))
    proc = vdce.runtime.execute_process(
        checkpoint.afg,
        checkpoint.table,
        submit_site=submit_site or checkpoint.submit_site,
        journal=journal,
        checkpoint=checkpoint,
    )
    result = vdce.sim.run_until_complete(proc, limit=limit)
    return vdce, result

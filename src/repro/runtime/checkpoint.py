"""Durable application checkpoint journal and resume support.

The paper targets "long-running C3I applications on unreliable WAN
resources"; losing every completed task to a runtime restart is not an
option at that scale.  This module gives one application a durable,
append-only, crash-consistent journal recording

* the schedule (AFG + resource allocation table + submitting site),
* every task completion, with the content hash, encoded value and
  location of each output port (so completed outputs are re-stageable
  through the Data Manager machinery without re-running the task),
* every reschedule, and
* every resume.

Crash consistency is per-record: each JSONL line carries a checksum of
its own body.  A *torn tail* — a truncated or corrupt line with no
valid records after it — is the signature of a crash mid-append and is
safely discarded (a crash loses at most the record being written,
never an earlier one); opening an existing journal for append
truncates such a tail first, so post-crash appends are always
readable.  A corrupt *interior* record — one followed by valid
records — cannot come from a torn append: the file was damaged in
place, and resuming from the surviving prefix would silently forget
completed work, so the reader raises a typed
:class:`~repro.errors.JournalCorruptError` instead.

:func:`resume_run` rebuilds a fresh deployment from the journal plus
the ``save_repositories()`` snapshots next to it and re-executes only
the incomplete frontier.  The *resume-equivalence oracle* rests on the
task library being deterministic pure functions of ``(inputs, scale)``:
:func:`expected_output_hashes` evaluates the AFG without any runtime at
all, and crash+resume must reproduce exactly those final output hashes
(checked by the chaos invariant I5, the CLI ``repro resume --expect``
path, and the resume test suite).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.afg.graph import ApplicationFlowGraph
from repro.afg.serialize import afg_from_dict, afg_to_dict
from repro.errors import JournalCorruptError
from repro.hashing import value_hash
from repro.scheduler.allocation import AllocationTable

__all__ = [
    "ApplicationCheckpoint",
    "CheckpointJournal",
    "create_checkpoint_dir",
    "decode_value",
    "encode_value",
    "expected_output_hashes",
    "final_output_hashes",
    "journal_path",
    "resume_run",
    "value_hash",
]

_JOURNAL_FILENAME = "journal.jsonl"
_META_FILENAME = "meta.json"
_REPOS_DIRNAME = "repos"


# -- canonical value hashing -------------------------------------------------
#
# value_hash moved to repro.hashing so the net layer can share it
# without importing runtime; re-exported here for back-compat.


def encode_value(value: Any) -> str:
    """JSON-safe encoding of an arbitrary output payload."""
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_value(encoded: str) -> Any:
    return pickle.loads(base64.b64decode(encoded.encode("ascii")))


# -- the journal -------------------------------------------------------------


def _record_crc(body: Dict[str, Any]) -> str:
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class CheckpointJournal:
    """Append-only, crash-consistent JSONL journal for one application.

    With a ``path``, every append writes one checksummed line and
    fsyncs — after a crash the file is a valid prefix of the record
    stream plus at most one torn line, which both :meth:`read` and
    re-opening for append discard.  With ``path=None`` the journal is
    memory-only (the chaos harness uses this: same record stream and
    byte accounting, no filesystem).
    """

    def __init__(self, path: Optional[str] = None, enabled: bool = True):
        self.path = path
        self.enabled = enabled
        self.bytes_written = 0
        self._records: List[Dict[str, Any]] = []
        #: indices of in-memory records marked corrupt by fault injection
        self._corrupt_indices: set = set()
        if path is not None and os.path.exists(path):
            self._records, valid_bytes = self._scan(path)
            size = os.path.getsize(path)
            if size > valid_bytes:
                # torn tail from a crash mid-append: drop it before
                # appending, so the stream stays a readable prefix
                with open(path, "r+b") as fh:
                    fh.truncate(valid_bytes)

    # -- write side -------------------------------------------------------

    def append(self, kind: str, **fields: Any) -> int:
        """Append one record; returns the bytes it occupied on the wire."""
        if not self.enabled:
            return 0
        body = {"kind": kind, **fields}
        line_obj = dict(body)
        line_obj["crc"] = _record_crc(body)
        line = json.dumps(line_obj, sort_keys=True, separators=(",", ":")) + "\n"
        raw = line.encode("utf-8")
        if self.path is not None:
            with open(self.path, "ab") as fh:
                fh.write(raw)
                fh.flush()
                os.fsync(fh.fileno())
        self._records.append(body)
        self.bytes_written += len(raw)
        return len(raw)

    # -- read side --------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Every record appended (or recovered from disk), in order.

        Records marked corrupt by fault injection follow the same
        contract as the on-disk reader: a corrupt *tail* record is
        dropped (torn-append semantics), a corrupt *interior* record
        aborts with :class:`JournalCorruptError`.
        """
        if self._corrupt_indices:
            interior = [
                i for i in self._corrupt_indices if i < len(self._records) - 1
            ]
            if interior:
                raise JournalCorruptError(
                    f"journal record {min(interior)} is corrupt with "
                    f"{len(self._records) - 1 - min(interior)} valid "
                    "record(s) after it — in-place damage, refusing to "
                    "resume from a silently shortened history",
                    record_index=min(interior),
                )
            return [
                r
                for i, r in enumerate(self._records)
                if i not in self._corrupt_indices
            ]
        return list(self._records)

    @staticmethod
    def _scan(path: str) -> Tuple[List[Dict[str, Any]], int]:
        """Parse the valid prefix; returns (records, valid byte length).

        A bad line (truncated, unparseable, or CRC-failing) followed
        only by further bad lines is a torn tail and marks the end of
        the valid prefix.  A bad line *followed by a valid record* is
        interior corruption — the file was damaged in place, not torn
        by a crashed append — and raises :class:`JournalCorruptError`
        rather than silently forgetting the later records.
        """

        def parse(raw: bytes) -> Optional[Dict[str, Any]]:
            if not raw.endswith(b"\n"):
                return None  # truncated final line
            try:
                line_obj = json.loads(raw.decode("utf-8"))
                crc = line_obj.pop("crc")
            except (ValueError, KeyError, AttributeError):
                return None
            if not isinstance(line_obj, dict) or _record_crc(line_obj) != crc:
                return None
            return line_obj

        records: List[Dict[str, Any]] = []
        valid_bytes = 0
        with open(path, "rb") as fh:
            lines = fh.readlines()
        for index, raw in enumerate(lines):
            parsed = parse(raw)
            if parsed is None:
                survivors = sum(
                    1 for later in lines[index + 1 :] if parse(later) is not None
                )
                if survivors:
                    raise JournalCorruptError(
                        f"journal record {index} is corrupt with {survivors} "
                        "valid record(s) after it — in-place damage, not a "
                        "torn append; refusing to resume from a silently "
                        "shortened history",
                        record_index=index,
                    )
                break  # torn tail: everything after is garbage too
            records.append(parsed)
            valid_bytes += len(raw)
        return records, valid_bytes

    @staticmethod
    def read(path: str) -> List[Dict[str, Any]]:
        """The valid record prefix of a journal file."""
        records, _valid = CheckpointJournal._scan(path)
        return records

    # -- fault injection --------------------------------------------------

    def inject_corruption(self, rng) -> Dict[str, Any]:
        """Damage one journal record in place (chaos fault hook).

        File-backed journals get a single bit flipped at an
        ``rng``-chosen byte offset — exactly the disk-rot fault the
        interior-corruption check exists for.  Memory-only journals
        (the chaos harness) mark an ``rng``-chosen record corrupt so
        :meth:`records` applies the same tail-vs-interior contract.
        Returns a description of what was damaged, for ground-truth
        logging.
        """
        if self.path is not None and os.path.exists(self.path):
            size = os.path.getsize(self.path)
            if size == 0:
                return {"mode": "file", "offset": None}
            offset = int(rng.integers(0, size))
            bit = int(rng.integers(0, 8))
            with open(self.path, "r+b") as fh:
                fh.seek(offset)
                byte = fh.read(1)
                fh.seek(offset)
                fh.write(bytes([byte[0] ^ (1 << bit)]))
            return {"mode": "file", "offset": offset, "bit": bit}
        if not self._records:
            return {"mode": "memory", "index": None}
        index = int(rng.integers(0, len(self._records)))
        self._corrupt_indices.add(index)
        return {"mode": "memory", "index": index}


# -- the parsed checkpoint ---------------------------------------------------


@dataclass
class ApplicationCheckpoint:
    """One application's recovered state, parsed from its journal."""

    application: str
    scheduler: str
    submit_site: str
    afg: ApplicationFlowGraph
    table: AllocationTable
    #: task id -> its ``task_complete`` journal record
    completed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    reschedules: List[Dict[str, Any]] = field(default_factory=list)
    resumes: int = 0

    @classmethod
    def from_records(cls, records: List[Dict[str, Any]]) -> "ApplicationCheckpoint":
        if not records or records[0].get("kind") != "schedule":
            raise ValueError(
                "journal has no schedule record — nothing to resume from"
            )
        head = records[0]
        checkpoint = cls(
            application=head["application"],
            scheduler=head["scheduler"],
            submit_site=head["submit_site"],
            afg=afg_from_dict(head["afg"]),
            table=AllocationTable.from_dict(head["table"]),
        )
        for record in records[1:]:
            kind = record.get("kind")
            if kind == "task_complete":
                checkpoint.completed[record["task"]] = record
            elif kind == "reschedule":
                checkpoint.reschedules.append(record)
            elif kind == "resume":
                checkpoint.resumes += 1
                checkpoint.submit_site = record.get(
                    "submit_site", checkpoint.submit_site
                )
        return checkpoint

    @classmethod
    def load(cls, path: str) -> "ApplicationCheckpoint":
        return cls.from_records(CheckpointJournal.read(path))

    def incomplete(self) -> List[str]:
        """The frontier to re-execute, in topological order."""
        return [
            task_id
            for task_id in self.afg.topological_order()
            if task_id not in self.completed
        ]

    def output_value(self, task_id: str, port: int) -> Any:
        """Decode one completed task's recorded output payload."""
        record = self.completed[task_id]
        return decode_value(record["outputs"][port]["value"])


# -- resume-equivalence oracle -----------------------------------------------


def expected_output_hashes(afg: ApplicationFlowGraph, registry) -> Dict[str, str]:
    """Final output hashes from pure evaluation — no runtime involved.

    Task implementations are deterministic pure functions of
    ``(inputs, scale)``, so the terminal outputs are independent of
    placement, timing, faults, reschedules and resumes.  This evaluates
    the AFG directly and hashes each terminal task's output list: the
    ground truth any run — interrupted or not — must reproduce.

    File inputs without a registered loader resolve to the same
    :class:`~repro.runtime.services.StagedFile` handle the I/O service
    produces; AFGs whose loaders inject external data are outside this
    oracle's scope.
    """
    from repro.runtime.services import StagedFile

    produced: Dict[Tuple[str, int], Any] = {}
    hashes: Dict[str, str] = {}
    for task_id in afg.topological_order():
        node = afg.task(task_id)
        port_values: Dict[int, Any] = {}
        for edge in afg.in_edges(task_id):
            port_values[edge.dst_port] = produced[(edge.src, edge.src_port)]
        for binding in node.properties.file_inputs():
            port_values[binding.port] = StagedFile(
                binding.file.path, binding.file.size_mb
            )
        inputs = [port_values.get(p) for p in range(node.n_in_ports)]
        outputs = registry.get(node.task_type).run(
            inputs, node.properties.workload_scale
        )
        for port, value in enumerate(outputs):
            produced[(task_id, port)] = value
        if not afg.out_edges(task_id):
            hashes[task_id] = value_hash(outputs)
    return hashes


def final_output_hashes(result) -> Dict[str, str]:
    """Content hashes of an :class:`ApplicationResult`'s terminal outputs."""
    return {
        task_id: value_hash(outputs)
        for task_id, outputs in sorted(result.outputs.items())
    }


# -- checkpoint directories and the resume path ------------------------------


def journal_path(directory: str) -> str:
    return os.path.join(directory, _JOURNAL_FILENAME)


def create_checkpoint_dir(vdce, directory: str) -> CheckpointJournal:
    """Prepare ``directory`` as a durable checkpoint for ``vdce``.

    Writes ``meta.json`` (the deployment spec, so :func:`resume_run`
    can rebuild an equivalent federation) and the per-site repository
    snapshots under ``repos/``, then returns the journal to hand to
    :meth:`~repro.runtime.vdce_runtime.VDCERuntime.execute_process`.
    Call :meth:`~repro.core.vdce.VDCE.save_repositories` again at any
    later point to refresh the durable background state.
    """
    from dataclasses import asdict

    if vdce.spec is None:
        raise ValueError(
            "checkpointing needs a spec-built VDCE (resume must be able "
            "to rebuild the topology)"
        )
    os.makedirs(directory, exist_ok=True)
    meta = {"deployment": asdict(vdce.spec)}
    with open(os.path.join(directory, _META_FILENAME), "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")
    vdce.save_repositories(os.path.join(directory, _REPOS_DIRNAME))
    return CheckpointJournal(journal_path(directory))


def _spec_from_meta(meta: Dict[str, Any]):
    from repro.core.config import DeploymentSpec, HostConfig, SiteConfig

    payload = dict(meta["deployment"])
    sites = []
    for site in payload.pop("sites"):
        site = dict(site)
        site["hosts"] = tuple(HostConfig(**h) for h in site.get("hosts", ()))
        sites.append(SiteConfig(**site))
    payload["sites"] = tuple(sites)
    payload["wan_overrides"] = tuple(
        tuple(o) for o in payload.get("wan_overrides", ())
    )
    return DeploymentSpec(**payload)


def resume_run(
    directory: str,
    submit_site: Optional[str] = None,
    limit: Optional[float] = None,
    tracer=None,
    metrics=None,
    runtime_config=None,
):
    """Rebuild a deployment from a checkpoint directory and finish the app.

    Returns ``(vdce, result)``: a fresh federation restored from the
    ``repos/`` snapshots, and the :class:`ApplicationResult` of
    re-executing only the incomplete frontier (completed tasks are
    restored from the journal and their output edges re-staged from the
    submitting site's server).  The journal keeps growing across
    resumes, so a run that crashes again resumes from even later.
    """
    from repro.core.vdce import VDCE
    from repro.metrics.registry import NULL_METRICS
    from repro.trace.tracer import NULL_TRACER

    with open(os.path.join(directory, _META_FILENAME), encoding="utf-8") as fh:
        meta = json.load(fh)
    checkpoint = ApplicationCheckpoint.load(journal_path(directory))
    repos_dir = os.path.join(directory, _REPOS_DIRNAME)
    repositories = (
        VDCE.load_repositories(repos_dir) if os.path.isdir(repos_dir) else None
    )
    kwargs = {}
    if runtime_config is not None:
        kwargs["runtime_config"] = runtime_config
    vdce = VDCE(
        spec=_spec_from_meta(meta),
        repositories=repositories,
        # explicit None checks: an *empty* Tracer/registry is falsy
        # (len == 0), and `or` would silently swap in the null object
        tracer=tracer if tracer is not None else NULL_TRACER,
        metrics=metrics if metrics is not None else NULL_METRICS,
        **kwargs,
    )
    journal = CheckpointJournal(journal_path(directory))
    proc = vdce.runtime.execute_process(
        checkpoint.afg,
        checkpoint.table,
        submit_site=submit_site or checkpoint.submit_site,
        journal=journal,
        checkpoint=checkpoint,
    )
    result = vdce.sim.run_until_complete(proc, limit=limit)
    return vdce, result

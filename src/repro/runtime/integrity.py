"""End-to-end data integrity: artifact hashes, incidents, repair ledger.

The paper's Data Manager moves every inter-task payload over
point-to-point channels (§4.2) but assumes the bytes arrive intact.
This module is the runtime half of DESIGN §16: it remembers the
canonical content hash (:func:`repro.hashing.value_hash`) of every
produced artifact, tracks where the staged copy lives, and keeps the
ground-truth ledger the repair ladder and the chaos auditor both read:

* every *consumption* — a value handed to a task — with whether the
  received bytes matched the producer's recorded hash (invariant I12
  demands these are all clean);
* every *incident* — a detected corruption or a lost staged artifact —
  with how it was resolved: ``refetched``, ``regenerated`` or
  ``poisoned`` (invariant I13 demands none stay unresolved in a
  completed application).

The manager exists only when ``RuntimeConfig.data_integrity`` is set;
with it off the runtime takes none of these paths, computes no hashes,
and every committed trace/metrics hash stays byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.hashing import value_hash
from repro.trace.events import EventKind

__all__ = ["ArtifactRecord", "IntegrityManager", "IntegrityPolicy"]


@dataclass(frozen=True)
class IntegrityPolicy:
    """Repair-ladder budgets (DESIGN §16).

    A delivery that arrives corrupt is refetched from the sender up to
    ``max_refetches`` times; an artifact still corrupt beyond that — or
    one whose staged copy is lost — is *regenerated* by re-executing
    its producer (recursively up to ``max_depth`` when the producer's
    own inputs are gone), at most ``max_regenerations`` times before it
    is poison-quarantined and its consumers fail typed.
    """

    max_refetches: int = 2
    max_regenerations: int = 2
    max_depth: int = 3
    #: hash-check DSM remote fetches too (bounded refetch, no lineage)
    verify_dsm: bool = True

    def __post_init__(self) -> None:
        if self.max_refetches < 0:
            raise ValueError("max_refetches must be non-negative")
        if self.max_regenerations < 0:
            raise ValueError("max_regenerations must be non-negative")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")


@dataclass
class ArtifactRecord:
    """One produced output port: its hash and the staged copy's fate."""

    application: str
    task: str
    port: int
    content_hash: str
    host: str
    lost: bool = False
    poisoned: bool = False
    #: lineage re-executions spent on this artifact's producer
    regenerations: int = 0


def _artifact_key(application: str, task: str, port: int) -> Tuple[str, str, int]:
    return (application, task, port)


class IntegrityManager:
    """Artifact index + integrity ledger for one runtime."""

    def __init__(self, sim, policy: IntegrityPolicy, tracer=None, metrics=None):
        self.sim = sim
        self.policy = policy
        self.tracer = tracer if tracer is not None else sim.tracer
        self.metrics = metrics if metrics is not None else sim.metrics
        self._artifacts: Dict[Tuple[str, str, int], ArtifactRecord] = {}
        #: every value handed to a task, with its verification verdict
        self.consumption_log: List[Dict[str, Any]] = []
        #: every detected corruption / loss, with its resolution
        self.incidents: List[Dict[str, Any]] = []
        self.corruptions_detected = 0
        self.refetches = 0
        self.regenerations = 0
        self.poisoned = 0
        self.artifacts_lost = 0

    # -- artifact index ----------------------------------------------------

    def record_artifact(
        self, application: str, task: str, port: int, value: Any, host: str
    ) -> str:
        """Register (or restore) one produced output; returns its hash."""
        key = _artifact_key(application, task, port)
        existing = self._artifacts.get(key)
        if existing is not None:
            # regeneration restored the staged copy; budgets carry over
            existing.lost = False
            existing.host = host
            return existing.content_hash
        content_hash = value_hash(value)
        self._artifacts[key] = ArtifactRecord(
            application, task, port, content_hash, host
        )
        return content_hash

    def artifact(
        self, application: str, task: str, port: int
    ) -> Optional[ArtifactRecord]:
        return self._artifacts.get(_artifact_key(application, task, port))

    def recorded_hash(
        self, application: str, task: str, port: int
    ) -> Optional[str]:
        record = self.artifact(application, task, port)
        return record.content_hash if record is not None else None

    def task_artifacts(self, application: str, task: str) -> List[ArtifactRecord]:
        return [
            record
            for record in self._artifacts.values()
            if record.application == application and record.task == task
        ]

    def drop_host(self, host_name: str) -> int:
        """Fault hook: vanish every staged artifact held on one host.

        Duck-typed target of
        :meth:`~repro.sim.failures.FailureInjector.schedule_artifact_loss`.
        Returns how many artifacts were actually lost.
        """
        dropped = 0
        for record in self._artifacts.values():
            if record.host == host_name and not record.lost:
                record.lost = True
                dropped += 1
        if dropped:
            self.artifacts_lost += dropped
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.ARTIFACT_LOST, source="integrity",
                    host=host_name, artifacts=dropped,
                )
        return dropped

    # -- ledger ------------------------------------------------------------

    def record_consumption(
        self, application: str, edge: str, clean: bool,
        expected_hash: Optional[str] = None,
    ) -> None:
        self.consumption_log.append({
            "time": self.sim.now,
            "application": application,
            "edge": edge,
            "clean": bool(clean),
            "expected_hash": expected_hash,
        })

    def open_incident(
        self, application: str, target: str, kind: str
    ) -> Dict[str, Any]:
        """One detected corruption/loss episode; resolve via :meth:`resolve`."""
        incident = {
            "time": self.sim.now,
            "application": application,
            "target": target,
            "kind": kind,  # "corrupt" | "lost" | "stage-corrupt"
            "refetches": 0,
            "regenerations": 0,
            "resolution": None,  # "refetched" | "regenerated" | "poisoned"
        }
        self.incidents.append(incident)
        return incident

    def resolve(self, incident: Dict[str, Any], resolution: str) -> None:
        incident["resolution"] = resolution
        incident["resolved_at"] = self.sim.now

    # -- event/metric emission (one place, so sim + real paths agree) ------

    def note_corruption(
        self, application: str, target: str, mode: str,
        expected_hash: Optional[str],
    ) -> None:
        self.corruptions_detected += 1
        self.metrics.counter(
            "vdce_corruptions_detected_total",
            "payload hash mismatches caught before consumption",
        ).inc()
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.CORRUPT_DETECTED, source="integrity",
                application=application, target=target, mode=mode,
                expected_hash=expected_hash,
            )

    def note_refetch(self, application: str, target: str, attempt: int) -> None:
        self.refetches += 1
        self.metrics.counter(
            "vdce_refetches_total",
            "verify-and-refetch repair attempts",
        ).inc()
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.REFETCH, source="integrity",
                application=application, target=target, attempt=attempt,
            )

    def note_regeneration(
        self, application: str, task: str, depth: int, charged_s: float
    ) -> None:
        self.regenerations += 1
        self.metrics.counter(
            "vdce_regenerations_total",
            "lineage-based producer re-executions",
        ).inc()
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.REGENERATE, source="integrity",
                application=application, task=task, depth=depth,
                charged_s=charged_s,
            )

    def note_poison(self, application: str, task: str, reason: str) -> None:
        self.poisoned += 1
        self.metrics.counter(
            "vdce_poisoned_artifacts_total",
            "artifacts quarantined after exhausting their repair budget",
        ).inc()
        for record in self.task_artifacts(application, task):
            record.poisoned = True
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.POISON, source="integrity",
                application=application, task=task, reason=reason,
            )

    # -- reporting ---------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "corruptions_detected": self.corruptions_detected,
            "refetches": self.refetches,
            "regenerations": self.regenerations,
            "poisoned": self.poisoned,
            "artifacts_lost": self.artifacts_lost,
            "incidents": [dict(i) for i in self.incidents],
            "consumptions": len(self.consumption_log),
            "dirty_consumptions": sum(
                1 for c in self.consumption_log if not c["clean"]
            ),
        }

"""Site Managers — the VDCE Server software at each site (paper §§1, 4.1).

The Site Manager is the hub of Figure 4:

1. retrieving the resource performance parameters,
2. monitoring the VDCE resources (via Group Managers),
3. updating the site repository — both the resource-performance DB
   (workload + failure state) and, after an application completes, the
   task-performance DB with measured execution times,
4. sending the related portion of the resource allocation table to the
   Group Managers involved in an execution,
5. inter-site coordination (scheduler multicast and bid replies).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.afg.graph import ApplicationFlowGraph
from repro.net.rpc import ManagerUnavailable
from repro.obs.spans import NULL_SPANS, SpanKind, SpanRecorder
from repro.repository.store import SiteRepository
from repro.runtime.monitor import Measurement
from repro.runtime.overload import SiteOverloaded
from repro.runtime.stats import RuntimeStats
from repro.scheduler.allocation import AllocationTable
from repro.scheduler.host_selection import HostSelectionResult, select_hosts
from repro.scheduler.prediction import PredictionModel
from repro.sim.kernel import Signal, Simulator
from repro.sim.site import Site
from repro.trace.events import EventKind
from repro.trace.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.app_controller import AppController
    from repro.runtime.group_manager import GroupManager

__all__ = ["SiteManager"]


class SiteManager:
    """Per-site control hub bridging runtime components to the repository."""

    def __init__(
        self,
        sim: Simulator,
        site: Site,
        repository: SiteRepository,
        stats: RuntimeStats,
        lan_latency_s: float = 0.0005,
        tracer: Tracer = NULL_TRACER,
        health=None,
        spans: SpanRecorder = NULL_SPANS,
        brownout=None,
    ):
        self.sim = sim
        self.site = site
        self.repository = repository
        self.stats = stats
        self.lan_latency_s = float(lan_latency_s)
        self.tracer = tracer
        self.spans = spans
        #: optional HostHealth: quarantine + prediction penalties folded
        #: into every host selection this site performs
        self.health = health
        #: optional BrownoutController; when set, Group Managers feed
        #: per-group occupancy here and saturated sites refuse to bid
        self.brownout = brownout
        #: latest occupancy per group (load / saturation threshold)
        self._occupancy: Dict[str, float] = {}
        self.group_managers: Dict[str, "GroupManager"] = {}
        self.app_controllers: Dict[str, "AppController"] = {}
        #: peers for inter-site coordination, filled by VDCERuntime
        self.peers: Dict[str, "SiteManager"] = {}
        #: False while the VDCE Server process is crashed
        self.alive = True
        #: failure/recovery reports received while crashed, in order
        self._pending_reports: List[tuple] = []
        #: runtime-wide membership coordinator, set by VDCERuntime; the
        #: admit/drain/retire/rejoin RPCs below delegate to it
        self.membership = None

    @property
    def name(self) -> str:
        return self.site.name

    # -- crash / re-register (control-plane fault model) --------------------

    def crash(self) -> None:
        """The VDCE Server process dies: no bids, no allocation, no DB.

        The federation layer excludes a crashed site from scheduling
        (its bid RPCs never get an answer and its
        :meth:`~repro.runtime.vdce_runtime.VDCERuntime.federation_view`
        entry is dropped) until :meth:`recover` re-registers it.
        Group Manager reports arriving meanwhile are buffered and
        replayed in order at recovery, so the repository never reflects
        updates applied by a dead manager.
        """
        if not self.alive:
            return
        self.alive = False
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.MANAGER_CRASH, source=f"sm:{self.name}",
                role="site_manager",
            )

    def recover(self) -> None:
        """A replacement server re-registers and replays buffered reports."""
        if self.alive:
            return
        self.alive = True
        pending, self._pending_reports = self._pending_reports, []
        for kind, host_name in pending:
            if not self.repository.resources.has_host(host_name):
                continue  # the host was deregistered while we were dead
            if kind == "down":
                self.repository.resources.mark_down(host_name, time=self.sim.now)
            else:
                self.repository.resources.mark_up(host_name, time=self.sim.now)
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.MANAGER_RECOVER, source=f"sm:{self.name}",
                role="site_manager", replayed_reports=len(pending),
            )

    # -- wiring ------------------------------------------------------------

    def attach_group_manager(self, gm: "GroupManager") -> None:
        self.group_managers[gm.name] = gm

    def attach_app_controller(self, controller: "AppController") -> None:
        self.app_controllers[controller.host.name] = controller

    @property
    def _health_of(self):
        """The ``health_of`` hook for host selection (None when off)."""
        return self.health.factor_of if self.health is not None else None

    # -- monitoring inputs (Fig. 4 flows 2-3) -----------------------------------

    def receive_workload(self, measurement: Measurement) -> None:
        """Fold a forwarded measurement into the resource-performance DB."""
        if not self.repository.resources.has_host(measurement.host):
            return  # in-flight report from a host deregistered meanwhile
        self.repository.resources.update_workload(
            measurement.host,
            load=measurement.load,
            available_memory_mb=measurement.available_memory_mb,
            time=self.sim.now,
        )
        metrics = self.sim.metrics
        if metrics.enabled:
            # the site's *believed* queue depth — sparser than the raw
            # vdce_host_load series by exactly the suppressed updates
            metrics.series(
                "vdce_site_queue_depth",
                "per-host run-queue length as known at the Site Manager",
            ).observe(measurement.load, site=self.name, host=measurement.host)

    def receive_occupancy(self, group: str, occupancy: float) -> None:
        """Fold a Group Manager's echo-round occupancy into backpressure."""
        self._occupancy[group] = float(occupancy)
        if self.brownout is not None:
            self.brownout.update(self.name, group, occupancy)

    @property
    def occupancy(self) -> float:
        """Site occupancy: mean of the groups' latest reports (0 = idle)."""
        if not self._occupancy:
            return 0.0
        return sum(self._occupancy.values()) / len(self._occupancy)

    def receive_failure(self, host_name: str) -> None:
        """Mark the host "down" at the site's resource-performance DB."""
        if not self.alive:
            self._pending_reports.append(("down", host_name))
            return
        if not self.repository.resources.has_host(host_name):
            return  # report raced a deregistration; the row is gone
        self.repository.resources.mark_down(host_name, time=self.sim.now)

    def receive_recovery(self, host_name: str) -> None:
        if not self.alive:
            self._pending_reports.append(("up", host_name))
            return
        if not self.repository.resources.has_host(host_name):
            return
        self.repository.resources.mark_up(host_name, time=self.sim.now)

    # -- elastic membership RPCs (issue 10) ---------------------------------

    def admit_host(self, spec, group_name: str, activate: bool = True):
        """Join a new host into one of this site's groups at runtime.

        A name with a departure tombstone is dispatched to the rejoin
        path instead (same epoch-bumping reconciliation an explicit
        :meth:`rejoin_host` performs).
        """
        if not self.alive:
            raise ManagerUnavailable(self.name)
        if spec.name in self.repository.resources.departed_hosts():
            return self.membership.rejoin_host(spec.name, spec=spec)
        return self.membership.admit_host(
            self.name, group_name, spec, activate=activate
        )

    def drain_host(self, name: str, deadline_s: float, retire: bool = True):
        """Gracefully drain a host: no new placements, bounded finish."""
        if not self.alive:
            raise ManagerUnavailable(self.name)
        return self.membership.drain_host(name, deadline_s, retire=retire)

    def retire_host(self, name: str):
        """Hard decommission: evict resident work and deregister now."""
        if not self.alive:
            raise ManagerUnavailable(self.name)
        return self.membership.retire_host(name)

    def rejoin_host(self, name: str, spec=None):
        """Bring a departed host back under a fresh membership epoch."""
        if not self.alive:
            raise ManagerUnavailable(self.name)
        return self.membership.rejoin_host(name, spec=spec)

    # -- allocation distribution (Fig. 4 flow 4) ----------------------------------

    def distribute_allocation(
        self, table: AllocationTable, afg: ApplicationFlowGraph
    ) -> Signal:
        """Multicast this site's portion of the table toward its hosts.

        "Another function of the Site Manager is to multicast the
        resource allocation table to the Group Managers that will be
        involved in the execution.  Each Group Manager sends an
        execution request message and the related portion of the
        resource allocation information to the Application Controller
        of the related machines."

        Returns a signal that fires when every involved Application
        Controller has received its execution request.
        """
        if not self.alive:
            raise ManagerUnavailable(self.name)
        my_tasks = table.tasks_on_site(self.name)
        site_hosts = self.site.hosts
        # hosts named by the table that this site still has — a table
        # built before a membership change may name a departed host,
        # whose tasks the coordinator's membership check will move
        hosts_involved: List[str] = sorted(
            {h for t in my_tasks for h in table.hosts_of(t)} & site_hosts.keys()
        )
        done = self.sim.signal(f"alloc:{self.name}:{table.application}")
        if not hosts_involved:
            self.sim.call_at(self.sim.now, lambda: done.succeed([]))
            return done

        groups_involved = sorted(
            {self.site.group_of(h).name for h in hosts_involved}
        )
        # Site Manager -> each Group Manager (one message per group) ...
        self.stats.allocation_messages += len(groups_involved)
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.ALLOCATION_MULTICAST, source=f"sm:{self.name}",
                application=table.application, groups=groups_involved,
                hosts=hosts_involved,
            )
        # ... then Group Manager -> each Application Controller
        pending = [len(hosts_involved)]
        fanout_span = None
        if self.spans.enabled:
            # parented to the caller's ambient context: the allocation
            # span for a local call, the RPC attempt for a remote one —
            # this is the cross-site hop that stitches the tree together
            fanout_span = self.spans.open(
                SpanKind.SM_FANOUT, table.application,
                parent=self.spans.current, source=f"sm:{self.name}",
                groups=groups_involved, hosts=len(hosts_involved),
            )

        def deliver_to_controller(host_name: str) -> None:
            self.stats.execution_requests += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.EXECUTION_REQUEST, source=f"sm:{self.name}",
                    application=table.application, host=host_name,
                )
            controller = self.app_controllers.get(host_name)
            if controller is not None:
                # a host retired while the request was on the LAN has no
                # controller left; its tasks get moved at attempt time
                controller.receive_execution_request(table.application)
            pending[0] -= 1
            if pending[0] == 0:
                if fanout_span is not None:
                    self.spans.close(fanout_span, source=f"sm:{self.name}")
                done.succeed(hosts_involved)

        for host_name in hosts_involved:
            # two LAN hops: SM -> GM -> AC
            self.sim.call_after(
                2 * self.lan_latency_s,
                lambda h=host_name: deliver_to_controller(h),
            )
        return done

    # -- post-execution refinement (paper §4.1) -------------------------------------

    def record_completed_execution(
        self, task_type: str, host: str, expected_s: float, measured_s: float
    ) -> None:
        """Update the task-performance DB after an application completes."""
        self.repository.task_perf.record_execution(
            task_type, host, expected_s=expected_s, measured_s=measured_s
        )
        self.stats.taskperf_updates += 1
        metrics = self.sim.metrics
        if metrics.enabled and expected_s > 0:
            # Predict(task, R) accuracy: measured / predicted, 1.0 = exact
            metrics.histogram(
                "vdce_prediction_error_ratio",
                "measured / predicted task execution time",
                buckets=(0.25, 0.5, 0.8, 0.9, 0.95, 1.0,
                         1.05, 1.1, 1.25, 2.0, 4.0),
            ).observe(measured_s / expected_s, site=self.name)
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.TASKPERF_UPDATE, source=f"sm:{self.name}",
                task_type=task_type, host=host,
                expected_s=expected_s, measured_s=measured_s,
            )

    # -- inter-site coordination (scheduler support) ----------------------------------

    def handle_scheduling_request(
        self,
        afg: ApplicationFlowGraph,
        model: Optional[PredictionModel] = None,
    ) -> Dict[str, HostSelectionResult]:
        """Run host selection on a multicast AFG (the remote-site role).

        Called by a peer Site Manager; the caller charges WAN latency
        and counts the messages.
        """
        if not self.alive:
            raise ManagerUnavailable(self.name)
        if (self.brownout is not None
                and self.occupancy
                >= self.brownout.policy.bid_exclusion_occupancy):
            # backpressure: a saturated site excludes itself from bidding
            # instead of attracting work it cannot serve
            raise SiteOverloaded(self.name, self.occupancy)
        return select_hosts(
            afg, self.repository, model,
            tracer=self.tracer, metrics=self.sim.metrics,
            health_of=self._health_of,
        )

    # -- rescheduling support --------------------------------------------------------

    def reselect_host(
        self,
        afg: ApplicationFlowGraph,
        task_id: str,
        exclude_hosts: frozenset,
        model: Optional[PredictionModel] = None,
    ) -> Optional[HostSelectionResult]:
        """Pick a replacement placement for one task at this site.

        Used by the Application Controller's rescheduling path; returns
        None when this site has no feasible alternative.
        """
        if not self.alive:
            return None  # a crashed site never bids
        single = ApplicationFlowGraph(f"resched:{task_id}")
        node = afg.task(task_id)
        single.add_task(node)
        bids = select_hosts(single, self.repository, model,
                            health_of=self._health_of)
        bid = bids.get(task_id)
        if bid is None:
            return None
        if set(bid.hosts) & exclude_hosts:
            # re-run with the excluded hosts masked out of the DB view:
            # cheapest correct approach is to filter candidates manually
            from repro.scheduler.host_selection import candidate_hosts

            model = model or PredictionModel()
            props = node.properties
            n_nodes = props.n_nodes if props.is_parallel else 1
            records = [
                r
                for r in candidate_hosts(node, self.repository)
                if r.name not in exclude_hosts
            ]
            factors = {}
            if self.health is not None:
                for r in list(records):
                    factor = self.health.factor_of(r.name)
                    if factor is None:
                        records.remove(r)  # quarantined
                    else:
                        factors[r.name] = factor
            if len(records) < n_nodes:
                return None
            memory_mb = props.memory_mb if props.memory_mb > 0 else None
            predictions = sorted(
                (
                    model.predict(
                        node.task_type,
                        props.workload_scale,
                        n_nodes,
                        r,
                        self.repository.task_perf,
                        memory_mb=memory_mb,
                    )
                    * factors.get(r.name, 1.0),
                    r.name,
                )
                for r in records
            )
            chosen = predictions[:n_nodes]
            return HostSelectionResult(
                task_id=task_id,
                site=self.name,
                hosts=tuple(n for _, n in chosen),
                predicted_time=chosen[-1][0],
            )
        return bid

"""Group Managers — one per group-leader machine (paper §4.1, Fig. 4).

Two responsibilities, both verbatim from the paper:

* *Significant-change filtering*: "The Group Manager sends to the Site
  Manager only the workloads of the resources that have changed
  considerably from the previous measurement."  ``change_threshold``
  quantifies "considerably" (absolute run-queue delta); E5 sweeps it.
* *Echo-packet failure detection*: "Another function of the Group
  Manager is to periodically check all hosts in the group by sending
  echo packets to hosts and waiting for their responses.  When a
  failure of a host is detected, the Group Manager passes this
  information to the Site Manager."  Recovery detection (a previously
  down host answering again) is the natural complement and is needed
  for any long-running deployment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

import repro.perf as perf
from repro.obs.spans import NULL_SPANS, SpanKind, SpanRecorder
from repro.runtime.monitor import Measurement
from repro.runtime.stats import RuntimeStats
from repro.runtime.straggler import HostHealth, PhiAccrualDetector
from repro.sim.kernel import Process, Simulator, Timeout
from repro.sim.site import Group
from repro.trace.events import EventKind
from repro.trace.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.site_manager import SiteManager

__all__ = ["GroupManager"]


class GroupManager:
    """Filtering relay + failure detector for one host group."""

    def __init__(
        self,
        sim: Simulator,
        group: Group,
        site_manager: "SiteManager",
        stats: RuntimeStats,
        change_threshold: float = 0.25,
        echo_period_s: float = 5.0,
        lan_latency_s: float = 0.0005,
        echo_loss_prob: float = 0.0,
        suspicion_threshold: int = 1,
        tracer: Tracer = NULL_TRACER,
        control=None,
        lan_link=None,
        detector: str = "count",
        phi_suspect: float = 1.0,
        phi_down: float = 2.0,
        echo_timeout_s: Optional[float] = None,
        health: Optional[HostHealth] = None,
        spans: SpanRecorder = NULL_SPANS,
    ):
        """``echo_loss_prob`` models a lossy campus LAN: each echo round
        trip independently fails with this probability.  A host is only
        declared down after ``suspicion_threshold`` *consecutive* missed
        echoes — the standard guard against false positives (with the
        default of 1, behaviour is the paper's immediate declaration).

        ``detector`` picks the failure-detection discipline: ``"count"``
        is the consecutive-miss counter above; ``"phi"`` is a
        phi-accrual detector (:class:`~repro.runtime.straggler.
        PhiAccrualDetector`) over echo inter-arrival history, which
        SUSPECTs at ``phi_suspect`` and only declares down at
        ``phi_down`` — so a slowed host (whose echo round trip stretches
        with its :attr:`~repro.sim.host.Host.slowdown`) stays trusted
        instead of being treated as dead.  ``echo_timeout_s`` is the
        count detector's per-round response deadline (default: the echo
        period, i.e. any response within the round counts); the phi
        detector has no deadline — late arrivals simply enter the
        history.

        ``control`` (a :class:`~repro.net.rpc.ControlPlane`) and
        ``lan_link`` route failure/recovery reports through the retrying
        notification path, so a lossy or down LAN delays rather than
        drops them; without them, reports are plain delayed calls."""
        if change_threshold < 0:
            raise ValueError("change_threshold must be non-negative")
        if echo_period_s <= 0:
            raise ValueError("echo_period_s must be positive")
        if not (0.0 <= echo_loss_prob < 1.0):
            raise ValueError("echo_loss_prob must be in [0, 1)")
        if suspicion_threshold < 1:
            raise ValueError("suspicion_threshold must be >= 1")
        if detector not in ("count", "phi"):
            raise ValueError(f"detector must be 'count' or 'phi', got {detector!r}")
        if not (0.0 < phi_suspect < phi_down):
            raise ValueError("need 0 < phi_suspect < phi_down")
        if echo_timeout_s is not None and echo_timeout_s <= 0:
            raise ValueError("echo_timeout_s must be positive")
        self.sim = sim
        self.group = group
        self.site_manager = site_manager
        self.stats = stats
        self.change_threshold = float(change_threshold)
        self.echo_period_s = float(echo_period_s)
        self.lan_latency_s = float(lan_latency_s)
        self.echo_loss_prob = float(echo_loss_prob)
        self.suspicion_threshold = int(suspicion_threshold)
        self.tracer = tracer
        self._control = control
        self._lan_link = lan_link
        self.detector = detector
        self.phi_suspect = float(phi_suspect)
        self.phi_down = float(phi_down)
        self.echo_timeout_s = (
            float(echo_timeout_s) if echo_timeout_s is not None else None
        )
        self.health = health
        self.spans = spans
        #: open failover span between crash and restart (spans on only)
        self._crash_span = None
        #: last workload value forwarded upward, per host
        self._last_forwarded: Dict[str, float] = {}
        #: what this Group Manager believes about host liveness
        self._believed_up: Dict[str, bool] = {h.name: True for h in group}
        #: consecutive missed echoes per host
        self._missed: Dict[str, int] = {h.name: 0 for h in group}
        #: phi-accrual state, one detector per host (phi mode only)
        self._detectors: Dict[str, PhiAccrualDetector] = (
            {h.name: PhiAccrualDetector(self.echo_period_s) for h in group}
            if detector == "phi"
            else {}
        )
        #: hosts currently under suspicion (phi mode only)
        self._suspected: Dict[str, bool] = {h.name: False for h in group}
        self._echo_process: Optional[Process] = None
        #: pre-labelled counter handles for the measurement fast path,
        #: resolved lazily at first use so instrument-family creation
        #: happens at the same instant as on the reference path
        self._suppressed_child = None
        self._forwards_child = None
        self.false_positives = 0
        #: False while the manager process is crashed (fault injection)
        self.alive = True
        #: host currently running the manager role after a failover
        self.deputy_host: Optional[str] = None
        #: completed deputy promotions for this group
        self.failovers = 0
        #: bumped on crash/promotion; stale echo loops notice and exit
        self._generation = 0
        self._failover_pending = False

    @property
    def name(self) -> str:
        return self.group.name

    @property
    def host_names(self):
        """The hosts this manager owns (the no-orphaned-group check)."""
        return frozenset(h.name for h in self.group)

    # -- elastic membership (issue 10) -------------------------------------

    def admit_host(self, host) -> None:
        """Start tracking a newly joined (or rejoined) group member.

        The :class:`~repro.sim.site.Group` roster itself is mutated by
        the topology layer; this initialises the manager's beliefs for
        the host — trusted, no missed echoes, fresh detector history.
        """
        self._believed_up[host.name] = True
        self._missed[host.name] = 0
        self._suspected[host.name] = False
        if self.detector == "phi":
            self._detectors[host.name] = PhiAccrualDetector(self.echo_period_s)

    def retire_host(self, name: str) -> None:
        """Forget a departed member: beliefs, suspicion, filter state."""
        self._believed_up.pop(name, None)
        self._missed.pop(name, None)
        self._suspected.pop(name, None)
        self._detectors.pop(name, None)
        self._last_forwarded.pop(name, None)

    # -- crash / failover (control-plane fault model) ----------------------

    def crash(self) -> None:
        """The manager process dies: echo and filtering stop cold.

        The echo loop is not interrupted — it notices the generation
        bump at its next tick and exits without acting, so no kernel
        process dies unobserved.  Detection falls to the group's
        Monitor daemons, which call :meth:`request_failover` when they
        find the manager gone.
        """
        if not self.alive:
            return
        self.alive = False
        self._generation += 1
        self._failover_pending = False
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.MANAGER_CRASH, source=f"gm:{self.name}",
                role="group_manager",
            )
        if self.spans.enabled:
            # manager-scoped span (no owning application): the window
            # from crash to restart during which the group is headless
            self._crash_span = self.spans.open(
                SpanKind.FAILOVER, "", source=f"gm:{self.name}",
                group=self.name,
            )

    def recover(self) -> None:
        """The original manager process comes back (no deputy needed)."""
        if self.alive:
            return
        self._restart(deputy=None, kind=EventKind.MANAGER_RECOVER)

    def request_failover(self, reporter_host) -> None:
        """A Monitor daemon found the manager dead; elect a deputy.

        Every live monitor in the group calls this at its next tick;
        the first call wins and runs the election: the lowest-load live
        host in the group (ties broken by name — deterministic) is
        promoted deputy after one LAN latency.  The deputy rebuilds its
        believed-up state from the site repository and the next echo
        round.
        """
        if self.alive or self._failover_pending:
            return
        candidates = sorted(
            (h.load_average(), h.name) for h in self.group if h.is_up()
        )
        if not candidates:
            return  # nobody left to promote; retried at the next tick
        self._failover_pending = True
        deputy = candidates[0][1]
        self.sim.call_after(
            self.lan_latency_s,
            lambda: self._restart(deputy=deputy, kind=EventKind.FAILOVER),
        )

    def _restart(self, deputy: Optional[str], kind: str) -> None:
        if self.alive:
            return  # a recovery raced the election; first one wins
        self.alive = True
        self._failover_pending = False
        self.deputy_host = deputy
        self._generation += 1
        # Belief is rebuilt from the site repository (the durable best
        # knowledge) and refined by the next echo round: a host that
        # recovered while the manager was down answers its next echo
        # and triggers the usual recovery notification.
        repo = self.site_manager.repository
        for host_name in self._believed_up:
            if repo.resources.has_host(host_name):
                self._believed_up[host_name] = repo.resources.get(host_name).up
            else:
                self._believed_up[host_name] = True
            self._missed[host_name] = 0
            self._suspected[host_name] = False
            if host_name in self._detectors:
                self._detectors[host_name].reset()
        self._last_forwarded.clear()
        if kind == EventKind.FAILOVER:
            self.failovers += 1
            self.stats.failovers += 1
            metrics = self.sim.metrics
            if metrics.enabled:
                metrics.counter(
                    "vdce_failovers_total",
                    "manager failovers completed (deputy promotions)",
                ).inc(group=self.name)
        if self.tracer.enabled:
            self.tracer.emit(
                kind, source=f"gm:{self.name}", role="group_manager",
                deputy=deputy,
            )
        if self._crash_span is not None:
            self.spans.close(
                self._crash_span, source=f"gm:{self.name}",
                status="failover" if kind == EventKind.FAILOVER else "recover",
                deputy=deputy,
            )
            self._crash_span = None
        if self._echo_process is not None:
            # monitoring was running before the crash: resume the echo
            # protocol under the new generation
            self._echo_process = self.sim.process(
                self._echo_loop(self._generation), name=f"echo:{self.name}"
            )

    # -- workload path ----------------------------------------------------

    def receive_measurement(self, measurement: Measurement) -> None:
        """Monitor daemon delivery; forward only significant changes.

        The first measurement for a host is always significant (the
        Site Manager has nothing yet).
        """
        if not self.alive:
            return  # a dead manager drops reports on the floor
        if measurement.host not in self._believed_up:
            return  # in-flight report from a host retired meanwhile
        metrics = self.sim.metrics
        last = self._last_forwarded.get(measurement.host)
        if last is not None and abs(measurement.load - last) < self.change_threshold:
            self.stats.workload_suppressed += 1
            if metrics.enabled:
                if perf.FLAGS.batched_bookkeeping:
                    child = self._suppressed_child
                    if child is None:
                        child = self._suppressed_child = metrics.counter(
                            "vdce_workload_suppressed_by_group_total",
                            "measurements filtered by the significant-change test",
                        ).child(group=self.name)
                    child.inc()
                else:
                    metrics.counter(
                        "vdce_workload_suppressed_by_group_total",
                        "measurements filtered by the significant-change test",
                    ).inc(group=self.name)
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.WORKLOAD_SUPPRESS, source=f"gm:{self.name}",
                    host=measurement.host, load=measurement.load, last=last,
                )
            return
        self._last_forwarded[measurement.host] = measurement.load
        self.stats.workload_forwards += 1
        if metrics.enabled:
            if perf.FLAGS.batched_bookkeeping:
                child = self._forwards_child
                if child is None:
                    child = self._forwards_child = metrics.counter(
                        "vdce_workload_forwards_by_group_total",
                        "significant measurements forwarded to the Site Manager",
                    ).child(group=self.name)
                child.inc()
            else:
                metrics.counter(
                    "vdce_workload_forwards_by_group_total",
                    "significant measurements forwarded to the Site Manager",
                ).inc(group=self.name)
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.WORKLOAD_FORWARD, source=f"gm:{self.name}",
                host=measurement.host, load=measurement.load,
            )
        self.sim.call_after(
            self.lan_latency_s,
            lambda: self.site_manager.receive_workload(measurement),
        )

    # -- echo / failure detection ----------------------------------------------

    def start_echo(self) -> Process:
        if self._echo_process is not None and self._echo_process.alive:
            raise RuntimeError(f"echo process for group {self.name} already running")
        self._echo_process = self.sim.process(
            self._echo_loop(self._generation), name=f"echo:{self.name}"
        )
        return self._echo_process

    def _echo_loop(self, generation: int):
        rng = self.sim.rng(f"echo:{self.name}")
        echo_child = None
        batched = False
        while True:
            yield Timeout(self.echo_period_s)
            if generation != self._generation:
                return  # crashed (or failed over) since our last tick
            metrics = self.sim.metrics
            batched = perf.FLAGS.batched_bookkeeping
            if batched:
                # one aggregate bump per round instead of one per host —
                # counters are untimestamped, so the end-of-run snapshot
                # is byte-identical to the per-host reference increments
                n = len(self.group)
                if n:
                    self.stats.echo_packets += n
                    if metrics.enabled:
                        if echo_child is None:
                            echo_child = metrics.counter(
                                "vdce_echo_packets_by_group_total",
                                "echo round trips attempted, per group",
                            ).child(group=self.name)
                        echo_child.inc(n)
            for host in self.group:
                if not batched:
                    self.stats.echo_packets += 1
                    if metrics.enabled:
                        metrics.counter(
                            "vdce_echo_packets_by_group_total",
                            "echo round trips attempted, per group",
                        ).inc(group=self.name)
                # an echo round trip on the LAN; the response reflects the
                # host's state when the packet arrives, and may be lost
                responded = host.is_up()
                if responded and self.echo_loss_prob > 0.0:
                    if float(rng.uniform()) < self.echo_loss_prob:
                        responded = False  # packet lost, host fine
                if self.detector == "phi":
                    self._phi_round(host, responded)
                    continue
                if responded and self.echo_timeout_s is not None:
                    # count mode with a response deadline: a slowed
                    # host's stretched round trip counts as a miss —
                    # exactly the false positive the phi detector avoids
                    if self._echo_rtt(host) > self.echo_timeout_s:
                        responded = False
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.ECHO, source=f"gm:{self.name}",
                        host=host.name, responded=responded,
                    )
                believed = self._believed_up[host.name]
                if not responded:
                    self._missed[host.name] += 1
                else:
                    self._missed[host.name] = 0
                if believed and self._missed[host.name] >= self.suspicion_threshold:
                    self._believed_up[host.name] = False
                    if host.is_up():
                        self.false_positives += 1
                    self.stats.failure_notifications += 1
                    self.stats.record_detection(self.sim.now, host.name, "down")
                    if self.tracer.enabled:
                        self.tracer.emit(
                            EventKind.FAILURE_NOTIFICATION,
                            source=f"gm:{self.name}", host=host.name,
                            false_positive=host.is_up(),
                        )
                    self._send_report(
                        lambda h=host.name: self.site_manager.receive_failure(h)
                    )
                elif not believed and responded:
                    self._believed_up[host.name] = True
                    self.stats.recovery_notifications += 1
                    self.stats.record_detection(self.sim.now, host.name, "up")
                    if self.tracer.enabled:
                        self.tracer.emit(
                            EventKind.RECOVERY_NOTIFICATION,
                            source=f"gm:{self.name}", host=host.name,
                        )
                    self._send_report(
                        lambda h=host.name: self.site_manager.receive_recovery(h)
                    )
            brownout = self.site_manager.brownout
            if brownout is not None and self.alive:
                # backpressure input: this round's believed-up run-queue
                # lengths, normalised by the saturation threshold.  Rides
                # the echo bookkeeping — no messages, no RNG draws.
                loads = [
                    h.load_average() for h in self.group
                    if self._believed_up[h.name]
                ]
                occupancy = (
                    (sum(loads) / len(loads)) / brownout.policy.saturation_load
                    if loads else 0.0
                )
                self.site_manager.receive_occupancy(self.name, occupancy)

    def _echo_rtt(self, host) -> float:
        """Echo round-trip time: two LAN hops, stretched by slowdown.

        A degraded host still answers — late.  This is the observable
        that distinguishes slow from dead, and what a too-tight
        ``echo_timeout_s`` turns into a false positive.
        """
        return 2.0 * self.lan_latency_s * max(1.0, host.slowdown)

    def _phi_round(self, host, responded: bool) -> None:
        """One echo round under the phi-accrual discipline.

        Suspicion ``phi`` is evaluated against the arrival history
        *before* this round's arrival is recorded, then transitions:

        * TRUST -> SUSPECT at ``phi >= phi_suspect``;
        * SUSPECT -> declared down at ``phi >= phi_down`` (the usual
          failure-notification path);
        * SUSPECT -> TRUST when arrivals resume and phi falls back
          below ``phi_suspect``;
        * believed-down + any arrival -> recovery notification, with
          the detector history reset.
        """
        now = self.sim.now
        det = self._detectors[host.name]
        phi = det.phi(now)
        rtt = self._echo_rtt(host) if responded else None
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.ECHO, source=f"gm:{self.name}",
                host=host.name, responded=responded, rtt_s=rtt, phi=phi,
            )
        if not self._believed_up[host.name]:
            if responded:
                det.reset()
                det.heartbeat(now + rtt)
                self._suspected[host.name] = False
                self._believed_up[host.name] = True
                self.stats.recovery_notifications += 1
                self.stats.record_detection(now, host.name, "up")
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.RECOVERY_NOTIFICATION,
                        source=f"gm:{self.name}", host=host.name,
                    )
                self._send_report(
                    lambda h=host.name: self.site_manager.receive_recovery(h)
                )
            return
        if responded:
            det.heartbeat(now + rtt)
        if self._suspected[host.name]:
            if phi >= self.phi_down:
                self._suspected[host.name] = False
                self._believed_up[host.name] = False
                det.reset()
                if host.is_up():
                    self.false_positives += 1
                self.stats.failure_notifications += 1
                self.stats.record_detection(now, host.name, "down")
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.FAILURE_NOTIFICATION,
                        source=f"gm:{self.name}", host=host.name,
                        false_positive=host.is_up(), phi=phi,
                    )
                self._send_report(
                    lambda h=host.name: self.site_manager.receive_failure(h)
                )
                if self.health is not None:
                    self.health.penalize(
                        host.name, self.health.policy.failure_penalty,
                        "declared_down", origin=f"gm:{self.name}",
                    )
            elif phi < self.phi_suspect:
                self._suspected[host.name] = False
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.TRUST, source=f"gm:{self.name}",
                        host=host.name, phi=phi,
                    )
        elif phi >= self.phi_suspect:
            self._suspected[host.name] = True
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.SUSPECT, source=f"gm:{self.name}",
                    host=host.name, phi=phi,
                )
            if self.health is not None:
                self.health.penalize(
                    host.name, self.health.policy.suspect_penalty, "suspect",
                    origin=f"gm:{self.name}",
                )

    def is_suspected(self, host_name: str) -> bool:
        """Is the host under (phi) suspicion — slow, but not declared dead?"""
        return self._suspected.get(host_name, False)

    def _send_report(self, deliver) -> None:
        """Failure/recovery report to the Site Manager over the LAN.

        Retrying (and so loss-tolerant) when a control plane is wired
        in; otherwise the original single delayed delivery.  Either way
        a lossless, healthy LAN delivers after exactly one latency.
        """
        if self._control is not None:
            self._control.notify_lan(
                self._lan_link, deliver, self.lan_latency_s,
                label=f"report:{self.name}",
            )
        else:
            self.sim.call_after(self.lan_latency_s, deliver)

    def believes_up(self, host_name: str) -> bool:
        # a host this manager does not track (departed, or never a
        # member) is simply not believed *down* — membership checks,
        # not liveness beliefs, keep placements off such hosts
        return self._believed_up.get(host_name, True)

"""Elastic membership: runtime host join, graceful drain, rejoin (DESIGN §17).

The paper's federation is assembled once at deployment; real WAN
federations churn.  The :class:`MembershipCoordinator` drives the
epoch-stamped per-host state machine of
:class:`~repro.repository.resources.MembershipState` across *every*
layer in one step, so no component ever observes a half-joined or
half-departed host:

* **admit** — instantiate the host, wire it into its site/group
  (:meth:`~repro.sim.topology.Topology.attach_host`), register its
  resource row as JOINING, install its executable constraints, seed the
  Group Manager's beliefs, start a Monitor daemon and an Application
  Controller, then activate (JOINING → ACTIVE).
* **drain** — flip the row to DRAINING (host selection stops scoring it
  the same instant), let resident executions finish within a deadline,
  preempt the remainder, then retire.  Evicted attempts flow through
  the coordinator's normal rescheduling path, billed to the ``drain``
  wait-state.
* **retire** — the inverse of admit, in one step: evict residents,
  deregister both repository sides symmetrically (tombstone kept),
  detach from the topology, forget Group Manager beliefs, stop the
  monitor, drop the controller.
* **rejoin** — a departed name comes back *at its original site* under
  epoch + 1: dynamic state is discarded (fresh row, fresh Host object),
  task-performance calibration is deliberately kept, and anything
  stamped with the old epoch is recognisably stale.

Everything here is driven by explicit calls (Site Manager RPCs or the
:class:`~repro.sim.failures.FailureInjector` churn schedules); a
deployment that never churns never constructs extra state, draws no
RNG, and emits no events — fault-free traces stay byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from repro.repository.resources import MembershipError, MembershipState
from repro.runtime.app_controller import AppController
from repro.runtime.monitor import MonitorDaemon
from repro.sim.host import Host, HostSpec, Interrupted
from repro.sim.kernel import Timeout
from repro.trace.events import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.vdce_runtime import VDCERuntime

__all__ = ["MembershipCoordinator"]


class MembershipCoordinator:
    """Runtime-wide driver for host membership transitions."""

    def __init__(self, runtime: "VDCERuntime"):
        self.runtime = runtime
        self.sim = runtime.sim
        self.tracer = runtime.tracer
        #: audit log of every completed transition, for the churn
        #: invariants (I14-I16) and the chaos report
        self.transitions: List[Dict[str, Any]] = []
        #: rejoin bookkeeping: departed name -> (site, group, last spec)
        self._departed_info: Dict[str, Tuple[str, str, HostSpec]] = {}
        #: hosts with an in-flight drain process
        self._draining: set = set()

    # -- bookkeeping --------------------------------------------------------

    def _record(
        self, host: str, site: str, transition: str, epoch: int, **extra: Any
    ) -> Dict[str, Any]:
        entry = {
            "time": self.sim.now,
            "host": host,
            "site": site,
            "transition": transition,
            "epoch": epoch,
            **extra,
        }
        self.transitions.append(entry)
        metrics = self.sim.metrics
        if metrics.enabled:
            metrics.counter(
                "vdce_membership_transitions_total",
                "host membership transitions (join/drain/depart/rejoin)",
            ).inc(site=site, transition=transition)
        return entry

    def _wire_host(self, site_name: str, group_name: str, host: Host) -> None:
        """Attach runtime components for a freshly (re)joined host."""
        runtime = self.runtime
        config = runtime.config
        manager = runtime.site_managers[site_name]
        gm = manager.group_managers[group_name]
        gm.admit_host(host)
        lan_latency = runtime.topology.network.lan_link(site_name).spec.latency_s
        monitor = MonitorDaemon(
            self.sim, host, gm, runtime.stats,
            period_s=config.monitor_period_s,
            lan_latency_s=lan_latency,
            tracer=self.tracer,
        )
        runtime.monitors[host.name] = monitor
        controller = AppController(
            self.sim, host, runtime.stats,
            load_threshold=config.load_threshold,
            check_period_s=config.check_period_s,
            tracer=self.tracer,
        )
        manager.attach_app_controller(controller)
        runtime.app_controllers[host.name] = controller
        if runtime._monitoring_started:
            monitor.start()

    # -- transitions --------------------------------------------------------

    def admit_host(
        self,
        site_name: str,
        group_name: str,
        spec: HostSpec,
        activate: bool = True,
    ) -> Host:
        """JOINING (→ ACTIVE): bring a brand-new host into the federation."""
        if spec.name in self._departed_info:
            raise MembershipError(
                f"host {spec.name!r} departed this runtime; use rejoin_host"
            )
        repo = self.runtime.repositories[site_name]
        host = self.runtime.topology.attach_host(site_name, group_name, spec)
        repo.resources.register_host(
            spec, group=group_name, state=MembershipState.JOINING
        )
        repo.constraints.install_everywhere(
            self.runtime.registry.names(), (spec.name,)
        )
        self._wire_host(site_name, group_name, host)
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.HOST_JOIN, source=f"membership:{site_name}",
                host=spec.name, site=site_name, group=group_name,
            )
        self._record(spec.name, site_name, "join", 0)
        if activate:
            repo.resources.activate_host(spec.name, time=self.sim.now)
        return host

    def drain_host(
        self, name: str, deadline_s: float, retire: bool = True
    ) -> None:
        """ACTIVE → DRAINING: stop new placements now, evict at deadline.

        The repository transition is immediate — host selection, the
        host index and the federation view stop scoring the host the
        same instant.  Resident executions keep running; a drain process
        preempts whatever is left after ``deadline_s`` and (with
        ``retire=True``) completes the departure.
        """
        if deadline_s <= 0:
            raise ValueError(f"drain deadline must be positive, got {deadline_s}")
        host = self.runtime.topology.host(name)  # raises for unknown hosts
        site_name = host.site_name
        repo = self.runtime.repositories[site_name]
        repo.resources.begin_draining(name, time=self.sim.now)
        self._draining.add(name)
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.HOST_DRAIN, source=f"membership:{site_name}",
                host=name, site=site_name, deadline_s=deadline_s,
                resident=host.n_running,
            )
        self._record(
            name, site_name, "drain",
            repo.resources.membership_epoch(name), deadline_s=deadline_s,
        )
        self.sim.process(
            self._drain_process(name, deadline_s, retire), name=f"drain:{name}"
        )

    def _drain_process(self, name: str, deadline_s: float, retire: bool):
        yield Timeout(deadline_s)
        if name not in self._draining:
            return  # something else (a hard retire) won the race
        self._draining.discard(name)
        if retire:
            self.retire_host(name)
        else:
            host = self.runtime.topology.host(name)
            host.preempt_all(Interrupted(f"host {name} drained"))

    def retire_host(self, name: str) -> None:
        """→ DEPARTED: evict residents and remove the host everywhere."""
        topo = self.runtime.topology
        host = topo.host(name)  # raises for unknown hosts
        site_name = host.site_name
        group = topo.site(site_name).group_of(name)
        manager = self.runtime.site_managers[site_name]
        repo = self.runtime.repositories[site_name]
        epoch = repo.resources.membership_epoch(name)
        preempted = host.preempt_all(
            Interrupted(f"host {name} decommissioned")
        )
        # repository: both sides in one step (constraints + tombstoned row)
        repo.deregister_host(name)
        topo.detach_host(name)
        gm = manager.group_managers.get(group.name)
        if gm is not None:
            gm.retire_host(name)
        monitor = self.runtime.monitors.pop(name, None)
        if monitor is not None:
            monitor.stop()
        self.runtime.app_controllers.pop(name, None)
        manager.app_controllers.pop(name, None)
        self._draining.discard(name)
        self._departed_info[name] = (site_name, group.name, host.spec)
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.HOST_DEPART, source=f"membership:{site_name}",
                host=name, site=site_name, epoch=epoch, preempted=preempted,
            )
        self._record(
            name, site_name, "depart", epoch, preempted=preempted
        )

    def rejoin_host(
        self, name: str, spec: HostSpec = None, activate: bool = True
    ) -> Host:
        """REJOINING (→ ACTIVE): a departed host returns under epoch + 1.

        The host comes back at the site and group it departed from (the
        network keeps its routing entry).  ``spec`` may carry changed
        hardware under the same name — the prediction memo was
        invalidated at departure, so the new spec is re-scored from
        scratch, while the task-performance calibration the host earned
        before departing is deliberately kept.
        """
        info = self._departed_info.get(name)
        if info is None:
            raise MembershipError(
                f"host {name!r} never departed this runtime; use admit_host"
            )
        site_name, group_name, old_spec = info
        spec = spec if spec is not None else old_spec
        if spec.name != name:
            raise ValueError(
                f"rejoin spec is named {spec.name!r}, expected {name!r}"
            )
        repo = self.runtime.repositories[site_name]
        host = self.runtime.topology.attach_host(site_name, group_name, spec)
        record = repo.resources.rejoin_host(
            spec, group=group_name, time=self.sim.now
        )
        repo.constraints.install_everywhere(
            self.runtime.registry.names(), (name,)
        )
        self._wire_host(site_name, group_name, host)
        del self._departed_info[name]
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.HOST_REJOIN, source=f"membership:{site_name}",
                host=name, site=site_name, epoch=record.epoch,
            )
        self._record(name, site_name, "rejoin", record.epoch)
        if activate:
            repo.resources.activate_host(name, time=self.sim.now)
        return host

    # -- queries ------------------------------------------------------------

    def state_of(self, name: str) -> str:
        """The host's membership state, searching every site's repository."""
        for repo in self.runtime.repositories.values():
            try:
                return repo.resources.membership_state(name)
            except MembershipError:
                continue
        raise MembershipError(f"host {name!r} is not known to any site")

    def is_draining(self, name: str) -> bool:
        return name in self._draining

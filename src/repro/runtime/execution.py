"""Application execution: the simulated Data Manager protocol (paper §4.2).

The :class:`ExecutionCoordinator` drives one application through the
full runtime pipeline:

1. **Allocation distribution** — the local Site Manager sends each
   involved site its portion of the resource allocation table (WAN hop
   for remote sites), and each Site Manager multicasts to its Group
   Managers, which send execution requests to the Application
   Controllers (paper §4.1, Fig. 4 flows 4-5).
2. **Channel setup** — "The Data Managers on the assigned machines set
   up the application execution environment by starting the task
   executions and creating point-to-point communication channels for
   inter-task data transfer": one channel per AFG edge, with a setup
   message and an acknowledgement, each charged the latency of the link
   the channel crosses.
3. **Startup** — "When all the required acknowledgments are received an
   execution startup signal is sent to start the application
   execution."
4. **Execution** — per-task processes wait for their inputs (dataflow
   edges and staged files), run their slices on the assigned host(s),
   and push outputs down their channels as real, contention-aware
   network transfers.
5. **Fault handling** — a slice killed by a host failure, or terminated
   by the Application Controller's load threshold, triggers a
   rescheduling request; the coordinator obtains a replacement
   placement from the Site Managers, re-stages the task's inputs to the
   new host, and re-executes.  (Paper §4.1: "the Application Controller
   terminates the task execution on the machine and sends a task
   rescheduling request".)
6. **Refinement** — after completion the Site Managers fold measured
   execution times back into their task-performance databases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.afg.graph import ApplicationFlowGraph, Edge
from repro.afg.serialize import afg_to_dict
from repro.afg.task import TaskNode
from repro.errors import (
    CorruptPayloadError,
    DataIntegrityError,
    PoisonedArtifactError,
)
from repro.net.rpc import ManagerUnavailable, RpcTimeout
from repro.obs.spans import SpanKind
from repro.repository.resources import MembershipState
from repro.runtime.checkpoint import (
    ApplicationCheckpoint,
    CheckpointJournal,
    decode_value,
    encode_value,
    value_hash,
)
from repro.runtime.stats import RuntimeStats
from repro.scheduler.allocation import AllocationTable, TaskAssignment
from repro.sim.host import HostDownError, Interrupted
from repro.sim.kernel import AllOf, Signal, Simulator, Timeout
from repro.sim.network import LinkDownError
from repro.trace.events import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.vdce_runtime import VDCERuntime

__all__ = ["ApplicationResult", "ExecutionCoordinator", "ExecutionError", "TaskRecord"]

#: small fixed cost of emitting the startup broadcast
_STARTUP_BROADCAST_S = 0.001
#: approximate wire size of one task's allocation-table row, MB
_ALLOC_BYTES_PER_TASK_MB = 0.0002
#: approximate wire size of an allocation acknowledgement, MB
_ALLOC_ACK_BYTES_MB = 0.00005


class ExecutionError(RuntimeError):
    """The application cannot make progress (no replacement host, ...)."""


@dataclass
class TaskRecord:
    """Per-task execution telemetry."""

    task_id: str
    task_type: str
    site: str
    hosts: Tuple[str, ...]
    predicted_time: float
    started_at: float = 0.0
    finished_at: float = 0.0
    measured_time: float = 0.0
    attempts: int = 0
    reschedule_reasons: List[str] = field(default_factory=list)
    #: payload transfers re-sent after a link outage killed them
    transfer_retries: int = 0
    #: inter-task channels re-established after dying mid-flight
    channel_reestablishes: int = 0
    #: deliveries of this task's outputs re-sent after a hash mismatch
    repair_refetches: int = 0
    #: lineage re-executions of this task to restore a lost/corrupt output
    repair_regenerations: int = 0

    @property
    def was_rescheduled(self) -> bool:
        return bool(self.reschedule_reasons)


@dataclass
class ApplicationResult:
    """What one application run produced and how long each stage took."""

    application: str
    scheduler: str
    submitted_at: float
    startup_at: float
    finished_at: float
    records: Dict[str, TaskRecord]
    outputs: Dict[str, List[Any]]
    data_transfers: int
    data_transferred_mb: float
    reschedules: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary (omits output payloads, which may be arrays).

        This is what the web editor's status/visualisation endpoints
        return and what experiment scripts archive.
        """
        return {
            "application": self.application,
            "scheduler": self.scheduler,
            "submitted_at": self.submitted_at,
            "startup_at": self.startup_at,
            "finished_at": self.finished_at,
            "makespan_s": self.makespan,
            "setup_s": self.setup_time,
            "reschedules": self.reschedules,
            "data_transfers": self.data_transfers,
            "data_transferred_mb": self.data_transferred_mb,
            "transfer_retries": self.transfer_retries,
            "channel_reestablishes": self.channel_reestablishes,
            "tasks": {
                task_id: {
                    "task_type": r.task_type,
                    "site": r.site,
                    "hosts": list(r.hosts),
                    "predicted_s": r.predicted_time,
                    "measured_s": r.measured_time,
                    "started_at": r.started_at,
                    "finished_at": r.finished_at,
                    "attempts": r.attempts,
                    "reschedule_reasons": list(r.reschedule_reasons),
                    "transfer_retries": r.transfer_retries,
                    "channel_reestablishes": r.channel_reestablishes,
                }
                for task_id, r in self.records.items()
            },
        }

    @property
    def transfer_retries(self) -> int:
        """Payload transfers re-sent after link outages, across all tasks."""
        return sum(r.transfer_retries for r in self.records.values())

    @property
    def channel_reestablishes(self) -> int:
        """Channels re-established mid-execution, across all tasks."""
        return sum(r.channel_reestablishes for r in self.records.values())

    @property
    def setup_time(self) -> float:
        """Allocation distribution + channel setup (submit -> startup)."""
        return self.startup_at - self.submitted_at

    @property
    def makespan(self) -> float:
        """Execution time proper (startup signal -> last task finish)."""
        return self.finished_at - self.startup_at

    @property
    def total_time(self) -> float:
        return self.finished_at - self.submitted_at

    def hosts_used(self) -> List[str]:
        return sorted({h for r in self.records.values() for h in r.hosts})

    def comm_to_compute_ratio(self) -> float:
        compute = sum(r.measured_time for r in self.records.values())
        if compute <= 0:
            return 0.0
        comm = self.makespan - max(
            (r.measured_time for r in self.records.values()), default=0.0
        )
        return max(0.0, comm) / compute


def _edge_key(edge: Edge) -> Tuple[str, str, int, int]:
    return (edge.src, edge.dst, edge.src_port, edge.dst_port)


class ExecutionCoordinator:
    """Runs one application to completion on a :class:`VDCERuntime`."""

    def __init__(
        self,
        runtime: "VDCERuntime",
        afg: ApplicationFlowGraph,
        table: AllocationTable,
        execute_payloads: bool = True,
        submit_site: Optional[str] = None,
        journal: Optional[CheckpointJournal] = None,
        checkpoint: Optional[ApplicationCheckpoint] = None,
    ):
        table.validate_against(afg)
        self.runtime = runtime
        self.sim: Simulator = runtime.sim
        self.stats: RuntimeStats = runtime.stats
        self.tracer = runtime.tracer
        self.afg = afg
        self.table = table
        self.execute_payloads = execute_payloads
        self.submit_site = submit_site or runtime.default_site
        #: live assignment (diverges from the table after rescheduling)
        self.assignment: Dict[str, TaskAssignment] = dict(table.assignments)
        #: membership epoch each assigned host had when its placement was
        #: bound (DESIGN §17): a host that departed and rejoined between
        #: binding and execution carries a higher epoch, so its old
        #: placement — and any late bid stamped with the old epoch — is
        #: recognisably stale and must be re-placed, not executed.
        self._bound_epochs: Dict[str, int] = {}
        for assignment in self.assignment.values():
            self._note_assignment_epochs(assignment)
        #: edge signals carrying produced values to consumers
        self._edge_ready: Dict[Tuple[str, str, int, int], Signal] = {}
        #: delivered edge values (used for re-staging after reschedule)
        self._edge_value: Dict[Tuple[str, str, int, int], Any] = {}
        self.records: Dict[str, TaskRecord] = {}
        self.outputs: Dict[str, List[Any]] = {}
        self._excluded_hosts: Dict[str, set] = {}
        self._transfers = 0
        self._transferred_mb = 0.0
        self._reschedules = 0
        self.control = runtime.control
        self.rpc_policy = runtime.config.rpc_policy
        self.data_policy = runtime.config.data_policy
        #: causal span recorder (runtime-shared; null object when off)
        self.spans = runtime.spans
        #: this application's root span context (None when spans are off)
        self._root_span = None
        #: sites that never acknowledged their allocation portion
        self._unreachable_sites: set = set()
        #: task -> reasons for pre-execution moves off unreachable sites
        self._pre_execution_moves: Dict[str, List[str]] = {}
        #: speculative re-execution policy (None => disabled)
        self.speculation = runtime.config.speculation
        #: audit log of every backup launch, for the chaos I8 invariant
        self.speculation_log: List[Dict[str, Any]] = []
        #: tasks whose race was won by the backup copy (hash cross-check)
        self._speculative_wins: set = set()
        #: durable checkpoint journal (None => checkpointing disabled)
        self.journal = journal
        #: task id -> ``task_complete`` record restored from a checkpoint
        self._restored: Dict[str, Dict[str, Any]] = {}
        #: True when continuing from a checkpoint (even a pre-frontier one)
        self._resuming = checkpoint is not None
        if checkpoint is not None:
            if checkpoint.application != afg.name:
                raise ValueError(
                    f"checkpoint is for {checkpoint.application!r}, "
                    f"not {afg.name!r}"
                )
            self._restored = dict(checkpoint.completed)

    # -- public API --------------------------------------------------------

    def start(self):
        """Spawn the coordinator process; its value is ApplicationResult."""
        return self.sim.process(self._run(), name=f"app:{self.afg.name}")

    # -- protocol ------------------------------------------------------------

    def _run(self):
        submitted_at = self.sim.now
        source = f"app:{self.afg.name}"
        if self.spans.enabled:
            self._root_span = self.spans.root_of(self.afg.name, source=source)

        # Phase 0: journal the schedule (fresh run) or the resume.
        if self._resuming:
            self._restore_completed()
            self._reconcile_membership(source)
            self._journal_append(
                "resume",
                submit_site=self.submit_site,
                completed=sorted(self._restored),
            )
            self.stats.resumes += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.RESUME, source=source,
                    submit_site=self.submit_site,
                    completed=len(self._restored),
                )
            if self._root_span is not None:
                resume_span = self.spans.open(
                    SpanKind.RESUME, self.afg.name, parent=self._root_span,
                    source=source, completed=len(self._restored),
                )
                self.spans.close(resume_span, source=source)
        else:
            self._journal_append(
                "schedule",
                scheduler=self.table.scheduler,
                submit_site=self.submit_site,
                afg=afg_to_dict(self.afg),
                table=self.table.to_dict(),
            )

        # Phase 1: distribute allocation-table portions.
        alloc_span = None
        if self._root_span is not None:
            alloc_span = self.spans.open(
                SpanKind.ALLOCATION, self.afg.name, parent=self._root_span,
                source=source,
            )
        with self.tracer.span("allocation", source=source):
            yield from self._distribute_allocation(span=alloc_span)
        if alloc_span is not None:
            self.spans.close(alloc_span, source=source)

        # Phase 2: channel setup + acks for every AFG edge.
        chan_span = None
        if self._root_span is not None:
            chan_span = self.spans.open(
                SpanKind.CHANNEL_SETUP, self.afg.name, parent=self._root_span,
                source=source, edges=len(self.afg.edges),
            )
        with self.tracer.span("channel_setup", source=source):
            yield from self._setup_channels(span=chan_span)
        if chan_span is not None:
            self.spans.close(chan_span, source=source)

        # Phase 3: the execution startup signal.
        self.stats.startup_signals += 1
        yield Timeout(_STARTUP_BROADCAST_S)
        startup_at = self.sim.now
        if self.tracer.enabled:
            self.tracer.emit(EventKind.STARTUP_SIGNAL, source=source)

        # Phase 4: per-task processes; wait for all of them.  AllOf
        # subscribes (and so observes) every process up front: when one
        # task fails terminally, the first error propagates here as a
        # typed ExecutionError while sibling failures stay observed.
        try:
            with self.tracer.span("execution", source=source):
                procs = [
                    self.sim.process(
                        self._task_process(task_id),
                        name=f"task:{self.afg.name}:{task_id}",
                    )
                    for task_id in self.afg.topological_order()
                    if task_id not in self._restored
                ]
                if procs:
                    yield AllOf(procs)
        finally:
            for controller in self.runtime.app_controllers.values():
                controller.release(self.afg.name)
        finished_at = self.sim.now

        # Phase 6: post-execution task-performance refinement.  Records
        # restored from a checkpoint were refined before the crash; a
        # crashed Site Manager cannot take updates.
        collect_span = None
        if self._root_span is not None:
            collect_span = self.spans.open(
                SpanKind.COLLECT, self.afg.name, parent=self._root_span,
                source=source,
            )
        for task_id, record in self.records.items():
            if task_id in self._restored:
                continue
            manager = self.runtime.site_managers[record.site]
            if record.predicted_time > 0 and manager.alive:
                manager.record_completed_execution(
                    record.task_type,
                    record.hosts[0],
                    expected_s=record.predicted_time,
                    measured_s=record.measured_time,
                )
        if collect_span is not None:
            self.spans.close(collect_span, source=source)
            self.spans.close_root(
                self.afg.name, source=source,
                makespan_s=finished_at - startup_at,
            )

        return ApplicationResult(
            application=self.afg.name,
            scheduler=self.table.scheduler,
            submitted_at=submitted_at,
            startup_at=startup_at,
            finished_at=finished_at,
            records=dict(self.records),
            outputs=dict(self.outputs),
            data_transfers=self._transfers,
            data_transferred_mb=self._transferred_mb,
            reschedules=self._reschedules,
        )

    def _distribute_allocation(self, span=None):
        """Phase 1: local SM -> remote SMs -> Group Managers -> Controllers.

        Remote portions ride the retrying control plane.  A site that
        never acknowledges (down link, partition, repeated loss) is
        declared unreachable and its tasks are moved to reachable sites,
        whose portions are (re)delivered in the next round — so the
        application starts on whatever part of the federation can
        actually be talked to, or fails with a typed error.
        """
        local_server = self.runtime.topology.site(self.submit_site).server_host.name
        # only sites with frontier work need their portion (on a fresh
        # run the frontier is every task)
        pending = sorted({
            a.site
            for task_id, a in self.assignment.items()
            if task_id not in self._restored
        })
        for _round in range(len(self.runtime.site_managers) + 1):
            snapshot = self._live_table()
            local_signal = None
            procs = []
            for site_name in pending:
                if site_name == self.submit_site:
                    # ambient context so the Site Manager's fanout span
                    # parents under the allocation span (the remote path
                    # gets the same via the RPC attempt context)
                    if span is not None:
                        self.spans.push(span)
                    try:
                        local_signal = self.runtime.site_managers[
                            site_name
                        ].distribute_allocation(snapshot, self.afg)
                    finally:
                        if span is not None:
                            self.spans.pop()
                else:
                    procs.append(
                        self.sim.process(
                            self._deliver_allocation(
                                site_name, local_server, snapshot, span=span
                            ),
                            name=f"alloc:{self.afg.name}:{site_name}",
                        )
                    )
            if local_signal is not None:
                yield local_signal
            failed = []
            if procs:
                results = yield AllOf(procs)
                failed = sorted(site for site, ok in results if not ok)
            if not failed:
                return
            self._unreachable_sites.update(failed)
            pending = self._reassign_off_sites(failed)
        raise ExecutionError(
            f"allocation distribution for {self.afg.name!r} could not settle "
            f"(unreachable sites: {sorted(self._unreachable_sites)})"
        )

    # -- checkpointing ------------------------------------------------------

    def _journal_append(self, kind: str, **fields: Any) -> None:
        """One checkpoint record: journal append + stats/metrics/trace."""
        if self.journal is None or not self.journal.enabled:
            return
        n = self.journal.append(
            kind, time=self.sim.now, application=self.afg.name, **fields
        )
        self.stats.checkpoint_records += 1
        self.stats.checkpoint_bytes += n
        if self.sim.metrics.enabled:
            self.sim.metrics.counter(
                "vdce_checkpoint_bytes",
                "bytes appended to application checkpoint journals",
            ).inc(n, application=self.afg.name)
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.CHECKPOINT, source=f"app:{self.afg.name}",
                record=kind, bytes=n,
            )

    def _restore_completed(self) -> None:
        """Rebuild records (and terminal outputs) for checkpointed tasks."""
        for task_id, rec in self._restored.items():
            node = self.afg.task(task_id)
            self.records[task_id] = TaskRecord(
                task_id=task_id,
                task_type=node.task_type,
                site=rec["site"],
                hosts=tuple(rec["hosts"]),
                predicted_time=rec.get("predicted_time", 0.0),
                started_at=rec.get("started_at", 0.0),
                finished_at=rec.get("finished_at", 0.0),
                measured_time=rec.get("measured_time", 0.0),
                attempts=rec.get("attempts", 0),
            )
            if not self.afg.out_edges(task_id):
                self.outputs[task_id] = [
                    decode_value(o["value"]) for o in rec["outputs"]
                ]

    def _reconcile_membership(self, source: str) -> None:
        """Resume-time sweep: flag frontier tasks bound to departed hosts.

        A journal can outlive its hosts — the federation that resumes an
        application is not necessarily the one that checkpointed it
        (satellite: issue 10).  For every incomplete task whose recorded
        assignment names a host that since departed (or is otherwise
        non-ACTIVE), append a typed ``membership_warning`` journal
        record instead of crashing; the per-attempt membership check
        then reroutes the task through the normal rescheduling path.
        Old journal readers skip the unknown record kind.
        """
        for task_id in sorted(self.assignment):
            if task_id in self._restored:
                continue
            assignment = self.assignment[task_id]
            stale = self._stale_membership_hosts(assignment)
            if not stale:
                continue
            self._journal_append(
                "membership_warning", task=task_id,
                hosts=list(assignment.hosts), stale=stale,
            )
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.RESUME_MEMBERSHIP_WARNING, source=source,
                    task=task_id, stale=stale,
                )

    def _live_table(self) -> AllocationTable:
        """The current assignment as a distributable table snapshot."""
        snapshot = AllocationTable(self.afg.name, scheduler=self.table.scheduler)
        for assignment in self.assignment.values():
            snapshot.assign(assignment)
        return snapshot

    def _deliver_allocation(self, site_name: str, local_server: str, snapshot,
                            span=None):
        """Send one remote site its table portion; value ``(site, ok)``."""
        manager = self.runtime.site_managers[site_name]
        remote_server = self.runtime.topology.site(site_name).server_host.name
        n_tasks = max(1, len(snapshot.tasks_on_site(site_name)))

        def on_send(attempt: int) -> None:
            # one WAN message carrying the table portion, per attempt
            self.stats.allocation_messages += 1

        def handle():
            def wait():
                value = yield manager.distribute_allocation(snapshot, self.afg)
                return value

            return wait()

        try:
            yield from self.control.request(
                local_server, remote_server, handle,
                payload_mb=_ALLOC_BYTES_PER_TASK_MB * n_tasks,
                reply_mb=_ALLOC_ACK_BYTES_MB,
                label=f"alloc:{self.afg.name}:{site_name}",
                policy=self.rpc_policy, on_send=on_send,
                span=span,
            )
        except RpcTimeout:
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.SITE_UNREACHABLE, source=f"app:{self.afg.name}",
                    remote=site_name, phase="allocation",
                )
            return (site_name, False)
        return (site_name, True)

    def _reassign_off_sites(self, failed: List[str]) -> List[str]:
        """Move tasks off unreachable sites; returns sites needing
        (re)delivery of their updated portions."""
        network = self.runtime.topology.network
        dead_hosts: set = set()
        for site_name in self._unreachable_sites:
            dead_hosts.update(self.runtime.topology.site(site_name).hosts)
        candidates = [self.submit_site] + [
            s
            for s in self.runtime.neighbor_order(self.submit_site)
            if s not in self._unreachable_sites
            and network.reachable(self.submit_site, s)
        ]
        moved: set = set()
        for task_id in sorted(
            t for t, a in self.assignment.items() if a.site in failed
        ):
            reason = f"site {self.assignment[task_id].site!r} unreachable"
            excluded = self._excluded_hosts.setdefault(task_id, set())
            excluded.update(dead_hosts)
            excluded.update(self.assignment[task_id].hosts)
            replacement = None
            for site_name in candidates:
                bid = self.runtime.site_managers[site_name].reselect_host(
                    self.afg, task_id, frozenset(excluded), self.runtime.model
                )
                if bid is not None:
                    replacement = bid
                    break
            if replacement is None:
                raise ExecutionError(
                    f"no reachable site can run task {task_id!r} ({reason})"
                )
            self._reschedules += 1
            self.stats.reschedule_requests += 1
            # a pre-execution move off an unreachable site is a
            # failure-driven restart like any other (satellite of the
            # total_control_messages composition fix)
            self.stats.failure_restarts += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.RESCHEDULE, source=f"app:{self.afg.name}",
                    task=task_id, reason=reason,
                    from_site=self.assignment[task_id].site,
                    from_hosts=self.assignment[task_id].hosts,
                )
            self._pre_execution_moves.setdefault(task_id, []).append(reason)
            self.assignment[task_id] = TaskAssignment(
                task_id=task_id,
                site=replacement.site,
                hosts=replacement.hosts,
                predicted_time=replacement.predicted_time,
            )
            self._note_assignment_epochs(self.assignment[task_id])
            self._journal_append(
                "reschedule", task=task_id, reason=reason,
                site=replacement.site, hosts=list(replacement.hosts),
            )
            moved.add(replacement.site)
        return sorted(moved)

    def _setup_channels(self, span=None):
        """Phase 2: one point-to-point channel per edge, setup + ack.

        On a resumed run, an edge whose producer already completed
        re-stages the journalled output from the submitting site's
        server instead — the consumer gets the recorded value without
        the producer re-running.  A re-stage that exhausts the data
        policy fails its setup process, so the resume fails typed
        instead of hanging.
        """

        def setup(edge: Edge):
            yield from self._establish_channel(edge, span=span)
            self._edge_ready[_edge_key(edge)] = self.sim.signal(
                f"edge:{edge.src}->{edge.dst}"
            )

        def restage(edge: Edge):
            key = _edge_key(edge)
            signal = self.sim.signal(f"edge:{edge.src}->{edge.dst}")
            self._edge_ready[key] = signal
            value = decode_value(
                self._restored[edge.src]["outputs"][edge.src_port]["value"]
            )
            integrity = self.runtime.integrity
            if edge.dst in self._restored:
                # both endpoints already ran; satisfy the edge for free
                signal.succeed(value)
                return
            src_server = self.runtime.topology.site(
                self.submit_site
            ).server_host.name
            dst_host = self.assignment[edge.dst].primary_host
            label = f"restage:{edge.src}->{edge.dst}"
            if integrity is not None:
                # the journalled copy lives on the submitting server;
                # verified re-stage with a bounded refetch budget (no
                # lineage: the producer completed in a prior incarnation)
                expected = integrity.record_artifact(
                    self.afg.name, edge.src, edge.src_port, value, src_server
                )
                incident = None
                for attempt in range(1 + integrity.policy.max_refetches):
                    transfer = yield from self._transfer_with_retry(
                        src_server, dst_host, edge.size_mb, label=label,
                        record=self.records[edge.src], reason="restage",
                    )
                    if transfer is None or transfer.corruption is None:
                        integrity.record_consumption(
                            self.afg.name, label, clean=True,
                            expected_hash=expected,
                        )
                        if incident is not None:
                            integrity.resolve(incident, "refetched")
                        break
                    if incident is None:
                        incident = integrity.open_incident(
                            self.afg.name, label, "corrupt"
                        )
                    integrity.note_corruption(
                        self.afg.name, label, transfer.corruption, expected
                    )
                    if attempt < integrity.policy.max_refetches:
                        incident["refetches"] += 1
                        integrity.note_refetch(
                            self.afg.name, label, incident["refetches"]
                        )
                else:
                    integrity.resolve(incident, "poisoned")
                    integrity.note_poison(
                        self.afg.name, edge.src,
                        "restage refetch budget exhausted",
                    )
                    signal.fail(CorruptPayloadError(
                        f"re-staged output {edge.src}[{edge.src_port}] "
                        "still corrupt after "
                        f"{integrity.policy.max_refetches} refetch(es)",
                        expected_hash=expected,
                    ))
                    return
            else:
                yield from self._transfer_with_retry(
                    src_server, dst_host, edge.size_mb, label=label,
                    record=self.records[edge.src], reason="restage",
                )
            self._edge_value[key] = value
            signal.succeed(value)

        procs = []
        for edge in self.afg.edges:
            gen = restage(edge) if edge.src in self._restored else setup(edge)
            procs.append(
                self.sim.process(gen, name=f"chan:{edge.src}->{edge.dst}")
            )
        if procs:
            yield AllOf(procs)

    def _establish_channel(self, edge: Edge, span=None):
        """Channel setup + ack for one edge, with control-plane retries.

        The communication proxy's setup message and the acknowledgement
        each ride one link latency (the ``latency`` transport); under
        loss or a down link the exchange retries with backoff, and an
        exhausted policy is a typed execution failure.
        """
        src_host = self.assignment[edge.src].primary_host
        dst_host = self.assignment[edge.dst].primary_host

        def on_send(attempt: int) -> None:
            self.stats.channel_setups += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.CHANNEL_SETUP, source=f"app:{self.afg.name}",
                    edge=[edge.src, edge.dst], src_host=src_host,
                    dst_host=dst_host,
                )

        def on_reply(attempt: int) -> None:
            self.stats.channel_acks += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.CHANNEL_ACK, source=f"app:{self.afg.name}",
                    edge=[edge.src, edge.dst],
                )

        try:
            yield from self.control.request(
                src_host, dst_host, lambda: None, transport="latency",
                label=f"chan:{self.afg.name}:{edge.src}->{edge.dst}",
                policy=self.rpc_policy, on_send=on_send, on_reply=on_reply,
                span=span,
            )
        except RpcTimeout as exc:
            raise ExecutionError(
                f"channel setup {edge.src}->{edge.dst} failed: {exc}"
            ) from exc

    def _reestablish_channel(self, edge: Edge, record: TaskRecord):
        """Re-run channel setup after a mid-flight link failure."""
        record.channel_reestablishes += 1
        self.stats.channel_reestablishes += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.CHANNEL_REESTABLISH, source=f"app:{self.afg.name}",
                edge=[edge.src, edge.dst],
            )
        yield from self._establish_channel(edge)

    def _transfer_with_retry(self, src_host: str, dst_host: str, size_mb: float,
                             label: str, record: TaskRecord, reason: str,
                             edge: Optional[Edge] = None):
        """A payload transfer that survives link outages.

        Each attempt is a real contention-aware transfer; one killed by
        :class:`LinkDownError` is retried after an exponential backoff,
        re-establishing the edge's channel first when one exists.  An
        exhausted data policy raises a typed :class:`ExecutionError`.
        Returns the completed :class:`~repro.sim.network.Transfer`, so
        integrity-aware callers can inspect its ``corruption`` marker.
        """
        network = self.runtime.topology.network
        metrics = self.sim.metrics
        policy = self.data_policy
        rng = self.sim.rng(f"retry:{self.afg.name}:{label}")
        for attempt in range(1, policy.max_attempts + 1):
            transfer = network.transfer(src_host, dst_host, size_mb, label=label)
            self._transfers += 1
            self._transferred_mb += size_mb
            self.stats.data_transfers += 1
            self.stats.data_transferred_mb += size_mb
            if metrics.enabled:
                metrics.histogram(
                    "vdce_transfer_mb",
                    "inter-task payload size per dataflow transfer",
                    buckets=(0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0),
                ).observe(size_mb)
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.DATA_TRANSFER, source=f"app:{self.afg.name}",
                    src=src_host, dst=dst_host, size_mb=size_mb,
                    edge=[edge.src, edge.dst] if edge is not None else None,
                    reason=reason, attempt=attempt,
                )
            try:
                yield transfer.done
                return transfer
            except LinkDownError as exc:
                if attempt >= policy.max_attempts:
                    raise ExecutionError(
                        f"transfer {label!r} failed after {attempt} attempts: {exc}"
                    ) from exc
                record.transfer_retries += 1
                self.stats.transfer_retries += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.TRANSFER_RETRY, source=f"app:{self.afg.name}",
                        label=label, attempt=attempt, reason=str(exc),
                    )
                yield Timeout(policy.backoff(attempt, float(rng.uniform())))
                if edge is not None:
                    try:
                        yield from self._reestablish_channel(edge, record)
                    except ExecutionError:
                        # link still down: keep backing off; only the
                        # transfer attempts themselves are the budget
                        pass

    # -- per-task execution -----------------------------------------------------

    def _task_process(self, task_id: str):
        node = self.afg.task(task_id)
        assignment = self.assignment[task_id]
        record = TaskRecord(
            task_id=task_id,
            task_type=node.task_type,
            site=assignment.site,
            hosts=assignment.hosts,
            predicted_time=assignment.predicted_time,
            reschedule_reasons=list(self._pre_execution_moves.get(task_id, [])),
        )
        self.records[task_id] = record
        task_span = None
        if self._root_span is not None:
            task_span = self.spans.open(
                SpanKind.TASK, self.afg.name, parent=self._root_span,
                source=f"app:{self.afg.name}", task=task_id,
                task_type=node.task_type, site=assignment.site,
                hosts=assignment.hosts,
            )

        # Gather dataflow inputs (in dst_port order for the implementation).
        in_edges = sorted(self.afg.in_edges(task_id), key=lambda e: e.dst_port)
        port_values: Dict[int, Any] = {}
        if in_edges:
            wait_span = None
            if task_span is not None:
                wait_span = self.spans.open(
                    SpanKind.INPUT_WAIT, self.afg.name, parent=task_span,
                    source=f"app:{self.afg.name}", task=task_id,
                    edges=len(in_edges),
                )
            for edge in in_edges:
                value = yield self._edge_ready[_edge_key(edge)]
                port_values[edge.dst_port] = value
            if wait_span is not None:
                self.spans.close(wait_span, source=f"app:{self.afg.name}")

        # Stage explicit file inputs from the submitting site's server.
        src_server = self.runtime.topology.site(self.submit_site).server_host.name
        file_inputs = node.properties.file_inputs()
        if file_inputs:
            stage_span = None
            if task_span is not None:
                stage_span = self.spans.open(
                    SpanKind.STAGE_IN, self.afg.name, parent=task_span,
                    source=f"app:{self.afg.name}", task=task_id,
                    files=len(file_inputs),
                )
            for binding in file_inputs:
                dst = self.assignment[task_id].primary_host
                value = yield from self._stage_with_retry(
                    binding.file, src_server, dst, record
                )
                port_values[binding.port] = value
            if stage_span is not None:
                self.spans.close(stage_span, source=f"app:{self.afg.name}")

        inputs = [port_values.get(p) for p in range(node.n_in_ports)]

        # Console service gate (suspend/restart).
        yield from self.runtime.console.wait_if_suspended(self.afg.name)

        # Execute, retrying through reschedules.
        record.started_at = self.sim.now
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.TASK_START, source=f"app:{self.afg.name}",
                task=task_id, task_type=node.task_type,
                site=record.site, hosts=record.hosts,
            )
        yield from self._execute_with_recovery(node, record, inputs,
                                               span=task_span)
        record.finished_at = self.sim.now
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.TASK_FINISH, source=f"app:{self.afg.name}",
                task=task_id, site=record.site, hosts=record.hosts,
                measured_time=record.measured_time, attempts=record.attempts,
            )

        # Produce real output values.
        if self.execute_payloads:
            signature = self.runtime.registry.get(node.task_type)
            outputs = signature.run(inputs, node.properties.workload_scale)
            if task_id in self._speculative_wins:
                self._verify_speculative_outputs(node, inputs, outputs)
        else:
            outputs = [None] * node.n_out_ports
        final_assignment = self.assignment[task_id]
        if self.runtime.integrity is not None:
            for port, value in enumerate(outputs):
                self.runtime.integrity.record_artifact(
                    self.afg.name, task_id, port, value,
                    final_assignment.primary_host,
                )
        self._journal_append(
            "task_complete",
            task=task_id,
            site=record.site,
            hosts=list(record.hosts),
            predicted_time=record.predicted_time,
            started_at=record.started_at,
            finished_at=record.finished_at,
            measured_time=record.measured_time,
            attempts=record.attempts,
            outputs=[
                {
                    "port": port,
                    "hash": value_hash(value),
                    "value": encode_value(value),
                    "location": final_assignment.primary_host,
                }
                for port, value in enumerate(outputs)
            ],
        )
        if not self.afg.out_edges(task_id):
            self.outputs[task_id] = outputs

        # Push outputs down the channels as real (retrying) transfers.
        for edge in self.afg.out_edges(task_id):
            value = outputs[edge.src_port] if outputs else None
            self.sim.process(
                self._deliver_output(edge, value, record, span=task_span),
                name=f"xfer:{edge.src}->{edge.dst}",
            )
        if task_span is not None:
            self.spans.close(
                task_span, source=f"app:{self.afg.name}",
                attempts=record.attempts, measured_s=record.measured_time,
            )

    def _deliver_output(self, edge: Edge, value: Any, record: TaskRecord,
                        span=None):
        """Push one produced value down its channel, surviving outages.

        A delivery that exhausts the data policy fails the edge signal,
        so the consumer task (and with it the application) fails with
        the typed error instead of hanging forever.
        """
        key = _edge_key(edge)
        sent_at = self.sim.now
        src_host = self.assignment[edge.src].primary_host
        dst_host = self.assignment[edge.dst].primary_host
        out_span = None
        if span is not None and self.spans.enabled:
            out_span = self.spans.open(
                SpanKind.STAGE_OUT, self.afg.name, parent=span,
                source=f"app:{self.afg.name}", task=edge.src,
                edge=[edge.src, edge.dst], size_mb=edge.size_mb,
            )
        try:
            if self.runtime.integrity is None:
                yield from self._transfer_with_retry(
                    src_host, dst_host, edge.size_mb,
                    label=f"{edge.src}->{edge.dst}", record=record,
                    reason="dataflow", edge=edge,
                )
            else:
                yield from self._deliver_verified(
                    edge, record, parent_span=out_span or span
                )
        except (ExecutionError, DataIntegrityError) as exc:
            if out_span is not None:
                self.spans.close(
                    out_span, source=f"app:{self.afg.name}", status="failed",
                )
            self._edge_ready[key].fail(exc)
            return
        if self.sim.metrics.enabled:
            self.sim.metrics.histogram(
                "vdce_transfer_latency_seconds",
                "dataflow transfer time on the contended network",
            ).observe(self.sim.now - sent_at)
        if out_span is not None:
            self.spans.close(out_span, source=f"app:{self.afg.name}")
        self._edge_value[key] = value
        self._edge_ready[key].succeed(value)

    def _deliver_verified(self, edge: Edge, record: TaskRecord,
                          parent_span=None):
        """One edge delivery under the integrity repair ladder (DESIGN §16).

        Every arriving copy is checked against the producer's recorded
        content hash.  A mismatch is refetched from the sender up to
        ``max_refetches`` times; an artifact corrupt beyond that — or
        one whose staged copy was lost — is regenerated by re-executing
        its producer lineage; an artifact that exhausts its
        regeneration budget is poison-quarantined and this edge fails
        with the typed :class:`PoisonedArtifactError`.  Only a verified
        copy is ever recorded as consumed (invariant I12).
        """
        integrity = self.runtime.integrity
        policy = integrity.policy
        app = self.afg.name
        label = f"{edge.src}->{edge.dst}"
        expected = integrity.recorded_hash(app, edge.src, edge.src_port)
        incident = None
        repair_span = None
        refetches_left = policy.max_refetches

        def ensure_repair_span():
            nonlocal repair_span
            if repair_span is None and self.spans.enabled:
                repair_span = self.spans.open(
                    SpanKind.REPAIR, app, parent=parent_span,
                    source=f"app:{app}", edge=[edge.src, edge.dst],
                )

        def close_repair_span(status: str) -> None:
            nonlocal repair_span
            if repair_span is not None:
                self.spans.close(
                    repair_span, source=f"app:{app}", status=status,
                )
                repair_span = None

        try:
            while True:
                artifact = integrity.artifact(app, edge.src, edge.src_port)
                if artifact is not None and artifact.poisoned:
                    raise PoisonedArtifactError(
                        f"artifact {edge.src}[{edge.src_port}] of {app!r} is "
                        "quarantined; consumer fails typed"
                    )
                if artifact is not None and artifact.lost:
                    # staged copy vanished: refetch cannot help, go
                    # straight to lineage regeneration
                    if incident is None:
                        incident = integrity.open_incident(app, label, "lost")
                    ensure_repair_span()
                    yield from self._regenerate(
                        edge.src, incident, depth=1, span=repair_span
                    )
                    continue
                src_host = self.assignment[edge.src].primary_host
                dst_host = self.assignment[edge.dst].primary_host
                transfer = yield from self._transfer_with_retry(
                    src_host, dst_host, edge.size_mb, label=label,
                    record=record, reason="dataflow", edge=edge,
                )
                if transfer is None or transfer.corruption is None:
                    integrity.record_consumption(
                        app, label, clean=True, expected_hash=expected
                    )
                    if incident is not None:
                        integrity.resolve(
                            incident,
                            "regenerated"
                            if incident["regenerations"]
                            else "refetched",
                        )
                    close_repair_span("repaired")
                    return
                # hash mismatch: the damaged copy is never consumed
                if incident is None:
                    incident = integrity.open_incident(app, label, "corrupt")
                integrity.note_corruption(
                    app, label, transfer.corruption, expected
                )
                ensure_repair_span()
                if refetches_left > 0:
                    refetches_left -= 1
                    incident["refetches"] += 1
                    record.repair_refetches += 1
                    integrity.note_refetch(
                        app, label, incident["refetches"]
                    )
                    continue
                # refetch budget spent: regenerate, then retry with a
                # fresh refetch budget (bounded by max_regenerations)
                yield from self._regenerate(
                    edge.src, incident, depth=1, span=repair_span
                )
                refetches_left = policy.max_refetches
        except DataIntegrityError:
            if incident is not None and incident["resolution"] is None:
                integrity.resolve(incident, "poisoned")
            close_repair_span("poisoned")
            raise

    def _regenerate(self, task_id: str, incident: Dict[str, Any], depth: int,
                    span=None):
        """Re-execute ``task_id`` to restore its lost/corrupt outputs.

        Task implementations are deterministic pure functions of
        ``(inputs, scale)`` (the resume-equivalence oracle), so
        regeneration restores byte-identical artifacts; what it costs
        is the producer's measured compute time, charged here.  When
        the producer's own inputs are lost the regeneration recurses up
        the lineage, bounded by ``max_depth``; each task's artifact set
        carries a shared ``max_regenerations`` budget, after which it
        is poisoned and consumers fail typed.
        """
        integrity = self.runtime.integrity
        policy = integrity.policy
        app = self.afg.name
        if depth > policy.max_depth:
            integrity.note_poison(
                app, task_id, f"lineage depth {depth} exceeds bound"
            )
            raise PoisonedArtifactError(
                f"regenerating {task_id!r} exceeds lineage depth bound "
                f"{policy.max_depth}"
            )
        artifacts = integrity.task_artifacts(app, task_id)
        # no registered artifacts (restored producer): fall back to the
        # incident's own count so the loop stays bounded regardless
        spent = max(
            (a.regenerations for a in artifacts),
            default=incident["regenerations"],
        )
        if spent >= policy.max_regenerations:
            integrity.note_poison(
                app, task_id,
                f"regeneration budget {policy.max_regenerations} exhausted",
            )
            raise PoisonedArtifactError(
                f"artifact of {task_id!r} still unusable after "
                f"{spent} regeneration(s); quarantined"
            )
        # the producer's own inputs first (recursive lineage repair)
        for in_edge in sorted(self.afg.in_edges(task_id),
                              key=lambda e: (e.src, e.src_port)):
            upstream = integrity.artifact(app, in_edge.src, in_edge.src_port)
            if upstream is not None and upstream.lost:
                yield from self._regenerate(
                    in_edge.src, incident, depth + 1, span=span
                )
        producer = self.records.get(task_id)
        assignment = self.assignment[task_id]
        charged = (
            producer.measured_time
            if producer is not None and producer.measured_time > 0
            else assignment.predicted_time
        )
        incident["regenerations"] += 1
        if producer is not None:
            producer.repair_regenerations += 1
        for artifact in artifacts:
            artifact.regenerations += 1
        integrity.note_regeneration(app, task_id, depth, charged)
        regen_span = None
        if span is not None and self.spans.enabled:
            regen_span = self.spans.open(
                SpanKind.REPAIR, app, parent=span, source=f"app:{app}",
                task=task_id, depth=depth,
            )
        yield Timeout(charged)
        if regen_span is not None:
            self.spans.close(regen_span, source=f"app:{app}")
        # pure re-execution restored the staged copies on the host
        for artifact in artifacts:
            artifact.lost = False
            artifact.host = assignment.primary_host

    def _stage_with_retry(self, spec, src_host: str, dst_host: str,
                          record: TaskRecord):
        """``io_service.stage`` hardened against link outages.

        With integrity on, a stage-in whose transfer arrived damaged
        (:class:`CorruptPayloadError` from the I/O service) is
        refetched up to the policy's budget; file inputs have no
        lineage to regenerate from, so an exhausted budget fails typed
        (I13's typed-termination arm).
        """
        policy = self.data_policy
        integrity = self.runtime.integrity
        rng = self.sim.rng(f"retry:{self.afg.name}:stage:{spec.path}")
        refetches_left = (
            integrity.policy.max_refetches if integrity is not None else 0
        )
        incident = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                value = yield from self.runtime.io_service.stage(
                    spec, src_host, dst_host
                )
                if incident is not None:
                    integrity.resolve(incident, "refetched")
                return value
            except CorruptPayloadError as exc:
                # io_service already emitted CORRUPT_DETECTED
                if incident is None and integrity is not None:
                    incident = integrity.open_incident(
                        self.afg.name, f"stage:{spec.path}", "stage-corrupt"
                    )
                if refetches_left <= 0:
                    if incident is not None:
                        integrity.resolve(incident, "poisoned")
                    raise CorruptPayloadError(
                        f"staging {spec.path!r} onto {dst_host} still "
                        f"corrupt after {incident['refetches'] if incident else 0} "
                        f"refetch(es): {exc}"
                    ) from exc
                refetches_left -= 1
                incident["refetches"] += 1
                record.repair_refetches += 1
                integrity.note_refetch(
                    self.afg.name, f"stage:{spec.path}", incident["refetches"]
                )
            except LinkDownError as exc:
                if attempt >= policy.max_attempts:
                    raise ExecutionError(
                        f"staging {spec.path!r} onto {dst_host} failed "
                        f"after {attempt} attempts: {exc}"
                    ) from exc
                record.transfer_retries += 1
                self.stats.transfer_retries += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.TRANSFER_RETRY, source=f"app:{self.afg.name}",
                        label=f"stage:{spec.path}", attempt=attempt,
                        reason=str(exc),
                    )
                yield Timeout(policy.backoff(attempt, float(rng.uniform())))
        raise ExecutionError(
            f"staging {spec.path!r} onto {dst_host} exhausted "
            f"{policy.max_attempts} attempts"
        )

    def _execute_with_recovery(self, node: TaskNode, record: TaskRecord, inputs,
                               span=None):
        """Run the task's slice(s); on failure/threshold, reschedule and retry."""
        signature = self.runtime.registry.get(node.task_type)
        props = node.properties
        n_nodes = props.n_nodes if props.is_parallel else 1
        span_work = signature.span_work(props.workload_scale, n_nodes)
        memory_mb = props.memory_mb or signature.memory_mb(props.workload_scale)

        while True:
            # The console can suspend an application between attempts
            # too: a task rescheduling while suspended parks here and
            # resumes exactly once when the console releases it.
            yield from self.runtime.console.wait_if_suspended(self.afg.name)
            # An application whose owning Site Manager crashed cannot
            # reschedule or refine; fail typed so checkpoint-restart on
            # a surviving site can take over.
            if not self.runtime.site_managers[self.submit_site].alive:
                raise ManagerUnavailable(self.submit_site)
            record.attempts += 1
            assignment = self.assignment[node.id]
            attempt_start = self.sim.now
            # Membership first: a departed host has no group, no
            # controller and no repository row, so every later check
            # would crash on it — and a draining or rejoined-at-a-new-
            # epoch host must not take this attempt either (churn
            # invariant I14).  Billed to the drain wait-state.
            stale = self._stale_membership_hosts(assignment)
            if stale:
                yield from self._reschedule(
                    node, record,
                    f"membership change: {', '.join(stale)}",
                    span=span, span_kind=SpanKind.DRAIN,
                )
                continue
            # Never start a slice on a host the repository believes is
            # down — the chaos invariant the paper's two-level failure
            # detection exists to uphold.
            believed_down = self._believed_down_hosts(assignment)
            if believed_down:
                yield from self._reschedule(
                    node, record,
                    f"hosts believed down: {', '.join(believed_down)}",
                    span=span,
                )
                continue
            controllers = [
                self.runtime.app_controllers[h] for h in assignment.hosts
            ]
            executions = []
            for controller in controllers:
                try:
                    execution = controller.start_slice(
                        span_work, memory_mb, label=f"{self.afg.name}:{node.id}"
                    )
                except HostDownError:
                    yield from self._reschedule(
                        node, record, "host down at start", span=span
                    )
                    executions = None
                    break
                executions.append(execution)
                controller.watch(execution, node.id, lambda *args: None)
            if executions is None:
                continue
            exec_span = None
            if span is not None and self.spans.enabled:
                exec_span = self.spans.open(
                    SpanKind.EXECUTE, self.afg.name, parent=span,
                    source=f"app:{self.afg.name}", task=node.id,
                    attempt=record.attempts, host=assignment.primary_host,
                )

            try:
                if (
                    self.speculation is not None
                    and len(executions) == 1
                    and assignment.predicted_time > 0
                    and (self.runtime.brownout is None
                         or self.runtime.brownout.speculation_allowed())
                ):
                    yield from self._race_with_backup(
                        node, record, executions[0], span_work, memory_mb,
                        task_span=span,
                    )
                else:
                    for execution in executions:
                        yield execution.done
            except (HostDownError, Interrupted) as exc:
                # kill surviving siblings before rescheduling
                for execution in executions:
                    if not execution.done.triggered:
                        execution.host.cancel(execution, cause="sibling failed")
                if exec_span is not None:
                    self.spans.close(
                        exec_span, source=f"app:{self.afg.name}",
                        status="failed",
                    )
                yield from self._reschedule(node, record, str(exc), span=span)
                continue

            record.measured_time = self.sim.now - attempt_start
            tracker = self.runtime.ratio_tracker
            final = self.assignment[node.id]
            if tracker is not None and final.predicted_time > 0:
                tracker.record(
                    final.primary_host,
                    record.measured_time / final.predicted_time,
                )
            if self.sim.metrics.enabled:
                self.sim.metrics.histogram(
                    "vdce_task_runtime_seconds",
                    "measured wall time of the successful task attempt",
                ).observe(record.measured_time, site=record.site)
            if exec_span is not None:
                self.spans.close(exec_span, source=f"app:{self.afg.name}")
            return

    # -- speculative re-execution (straggler defense) -------------------------

    def _race_with_backup(self, node: TaskNode, record: TaskRecord,
                          primary, span_work: float, memory_mb: int,
                          task_span=None):
        """Race the primary slice against at most one speculative backup.

        A timer process watches the primary's progress; once it exceeds
        the policy's multiple of the (per-host ratio-adjusted) estimate,
        one backup copy is launched on the next-best host.  First
        completion wins the shared ``outcome`` signal, the loser is
        cancelled, and a backup win repoints the live assignment so
        downstream transfers originate from the winner.  A copy that
        fails while its sibling still races is simply ignored; when the
        last live copy fails, the failure propagates to the normal
        rescheduling path.
        """
        source = f"app:{self.afg.name}"
        outcome = self.sim.signal(
            f"spec:{self.afg.name}:{node.id}:{record.attempts}"
        )
        copies = [primary]
        entry_box: List[Optional[Dict[str, Any]]] = [None]
        bid_box: List[Any] = [None]
        #: the backup copy's speculate_backup span, opened by the timer
        spec_span_box: List[Any] = [None]

        def watcher(which: str, execution):
            try:
                yield execution.done
            except (HostDownError, Interrupted) as exc:
                if outcome.triggered:
                    return
                if any(
                    not e.done.triggered for e in copies if e is not execution
                ):
                    return  # a sibling copy is still racing
                outcome.fail(exc)
                return
            if not outcome.triggered:
                outcome.succeed((which, execution))

        self.sim.process(
            watcher("primary", primary),
            name=f"specwatch:{self.afg.name}:{node.id}:primary",
        )
        self.sim.process(
            self._speculation_timer(
                node, record, primary, copies, outcome,
                span_work, memory_mb, watcher, entry_box, bid_box,
                task_span=task_span, spec_span_box=spec_span_box,
            ),
            name=f"spectimer:{self.afg.name}:{node.id}",
        )

        try:
            which, winner = yield outcome
        except BaseException:
            entry = entry_box[0]
            if entry is not None and entry["resolved_at"] is None:
                entry["resolved_at"] = self.sim.now
                entry["outcome"] = "failed"
            if spec_span_box[0] is not None:
                self.spans.close(
                    spec_span_box[0], source=source, status="failed",
                )
            raise

        # first completion wins: cancel the losing copy (if any)
        for execution in copies:
            if execution is winner or execution.done.triggered:
                continue
            wasted = execution.elapsed
            execution.host.cancel(execution, cause="lost speculation race")
            self.stats.speculative_wasted_s += wasted
            if self.sim.metrics.enabled:
                self.sim.metrics.counter(
                    "vdce_speculative_wasted_s",
                    "virtual seconds discarded with cancelled race losers",
                ).inc(wasted, host=execution.host.name)
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.SPECULATE_CANCEL, source=source,
                    task=node.id, host=execution.host.name, wasted_s=wasted,
                )
        entry = entry_box[0]
        if entry is not None:
            entry["resolved_at"] = self.sim.now
            entry["outcome"] = "backup_win" if which == "backup" else "primary_win"
        if spec_span_box[0] is not None:
            self.spans.close(
                spec_span_box[0], source=source,
                status="win" if which == "backup" else "cancelled",
            )
        if which == "backup":
            bid = bid_box[0]
            self.assignment[node.id] = TaskAssignment(
                task_id=node.id,
                site=bid.site,
                hosts=bid.hosts,
                predicted_time=bid.predicted_time,
            )
            record.site = bid.site
            record.hosts = bid.hosts
            self._note_assignment_epochs(self.assignment[node.id])
            self.stats.speculative_wins += 1
            self._speculative_wins.add(node.id)
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.SPECULATE_WIN, source=source,
                    task=node.id, host=winner.host.name,
                    elapsed_s=winner.elapsed,
                )

    def _speculation_timer(self, node: TaskNode, record: TaskRecord, primary,
                           copies, outcome, span_work: float, memory_mb: int,
                           watcher, entry_box, bid_box,
                           task_span=None, spec_span_box=None):
        """Launch one backup copy once the primary is overdue.

        The trigger threshold is ``predicted × trigger_multiple``
        stretched by the primary host's historical measured/predicted
        ratio quantile, so systematically optimistic predictions don't
        cause endless false speculations.  Inputs are re-staged onto the
        backup host with real (retrying) transfers before its slice
        starts; every yield re-checks the race so a backup is never
        launched for a task that already completed (chaos invariant I8).
        """
        policy = self.speculation
        predicted = self.assignment[node.id].predicted_time
        if predicted <= 0:
            return
        ratio = None
        tracker = self.runtime.ratio_tracker
        if tracker is not None:
            ratio = tracker.quantile(primary.host.name, policy.ratio_quantile)
        threshold = predicted * policy.trigger_multiple * max(
            1.0, ratio if ratio is not None else 1.0
        )
        threshold = max(threshold, policy.min_runtime_s)
        started = self.sim.now
        while True:
            remaining = threshold - (self.sim.now - started)
            # the epsilon matters: a sub-ulp residue would produce a
            # Timeout too small to advance the clock, spinning forever
            if remaining <= 1e-9:
                break
            yield Timeout(min(policy.check_period_s, remaining))
            if outcome.triggered or primary.done.triggered:
                return

        # Primary is overdue: pick the next-best host elsewhere.
        excluded = set(self._excluded_hosts.get(node.id, set()))
        excluded.update(self.assignment[node.id].hosts)
        current = self.assignment[node.id].site
        order = [current, self.submit_site] + list(
            self.runtime.neighbor_order(self.submit_site)
        )
        seen = set()
        bid = None
        for site_name in order:
            if site_name in seen:
                continue
            seen.add(site_name)
            if not self._site_reachable(site_name):
                continue
            candidate = self.runtime.site_managers[site_name].reselect_host(
                self.afg, node.id, frozenset(excluded), self.runtime.model
            )
            if candidate is not None:
                bid = candidate
                break
        if bid is None:
            return  # nowhere to speculate; keep waiting on the primary
        backup_host = bid.primary_host

        # Feed the backup: re-stage dataflow inputs and file inputs.
        for edge in sorted(self.afg.in_edges(node.id), key=lambda e: e.dst_port):
            src_host = self.assignment[edge.src].primary_host
            try:
                yield from self._transfer_with_retry(
                    src_host, backup_host, edge.size_mb,
                    label=f"spec:{edge.src}->{edge.dst}", record=record,
                    reason="speculate",
                )
            except ExecutionError:
                return  # could not feed the backup; speculation aborted
            if outcome.triggered or primary.done.triggered:
                return
        src_server = self.runtime.topology.site(self.submit_site).server_host.name
        for binding in node.properties.file_inputs():
            try:
                yield from self._stage_with_retry(
                    binding.file, src_server, backup_host, record
                )
            except ExecutionError:
                return
            if outcome.triggered or primary.done.triggered:
                return

        controller = self.runtime.app_controllers[backup_host]
        try:
            backup = controller.start_slice(
                span_work, memory_mb, label=f"{self.afg.name}:{node.id}:spec"
            )
        except HostDownError:
            return
        copies.append(backup)
        bid_box[0] = bid
        entry = {
            "application": self.afg.name,
            "task": node.id,
            "attempt": record.attempts,
            "launched_at": self.sim.now,
            "primary_host": primary.host.name,
            "backup_host": backup_host,
            "resolved_at": None,
            "outcome": None,
        }
        entry_box[0] = entry
        self.speculation_log.append(entry)
        if task_span is not None and spec_span_box is not None:
            # sibling of the primary's execute span under the task span
            spec_span_box[0] = self.spans.open(
                SpanKind.SPECULATE_BACKUP, self.afg.name, parent=task_span,
                source=f"app:{self.afg.name}", task=node.id,
                host=backup_host, primary_host=primary.host.name,
            )
        self.stats.speculative_launches += 1
        if self.sim.metrics.enabled:
            self.sim.metrics.counter(
                "vdce_speculative_launches_total",
                "speculative backup task copies launched",
            ).inc(host=backup_host)
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.SPECULATE, source=f"app:{self.afg.name}",
                task=node.id, primary_host=primary.host.name,
                backup_host=backup_host, threshold_s=threshold,
            )
        if self.runtime.health is not None:
            self.runtime.health.penalize(
                primary.host.name,
                self.runtime.health.policy.straggle_penalty,
                "straggle",
                origin=f"app:{self.afg.name}",
            )
        controller.watch(backup, node.id, lambda *args: None)
        self.sim.process(
            watcher("backup", backup),
            name=f"specwatch:{self.afg.name}:{node.id}:backup",
        )

    def _verify_speculative_outputs(self, node: TaskNode, inputs, outputs) -> None:
        """Cross-check a speculative winner against pure evaluation.

        Task implementations are pure, so whichever copy won, the
        outputs must hash identically to a fresh evaluation of the
        task's signature on the same inputs — a free Byzantine /
        corruption check (the same oracle checkpoint resume uses).
        """
        signature = self.runtime.registry.get(node.task_type)
        expected = signature.run(inputs, node.properties.workload_scale)
        got = [value_hash(v) for v in outputs]
        want = [value_hash(v) for v in expected]
        if got != want:
            raise ExecutionError(
                f"speculative output mismatch for task {node.id!r}: "
                f"{got} != {want}"
            )

    def _note_assignment_epochs(self, assignment: TaskAssignment) -> None:
        """Capture the membership epoch of every host in ``assignment``.

        Called at binding time (construction, rescheduling, speculative
        backup win) so :meth:`_stale_membership_hosts` can detect a
        depart/rejoin cycle that happened in between.  Hosts a
        checkpointed assignment names but no repository knows are left
        unstamped — the staleness check reports them as departed.
        """
        repo = self.runtime.repositories.get(assignment.site)
        if repo is None:
            return
        for h in assignment.hosts:
            if repo.resources.has_host(h):
                self._bound_epochs[h] = repo.resources.membership_epoch(h)

    def _stale_membership_hosts(self, assignment: TaskAssignment) -> List[str]:
        """Assigned hosts whose membership no longer supports placement.

        A host is stale when it departed the federation (no repository
        row), is not ACTIVE (draining hosts take no new attempts —
        that is the entire point of a graceful drain), or carries a
        different epoch than the one this placement was bound under
        (departed and rejoined in between: its dynamic state was
        discarded, so the old binding must not be trusted).  Fault-free
        runs see every host ACTIVE at epoch 0 and this returns [].
        """
        repo = self.runtime.repositories.get(assignment.site)
        if repo is None:
            return [f"{h} (site departed)" for h in assignment.hosts]
        stale: List[str] = []
        for h in assignment.hosts:
            if not repo.resources.has_host(h):
                stale.append(f"{h} (departed)")
                continue
            state = repo.resources.membership_state(h)
            if state != MembershipState.ACTIVE:
                stale.append(f"{h} ({state})")
                continue
            epoch = repo.resources.membership_epoch(h)
            if epoch != self._bound_epochs.get(h, epoch):
                stale.append(
                    f"{h} (epoch {self._bound_epochs[h]} -> {epoch})"
                )
        return stale

    def _believed_down_hosts(self, assignment: TaskAssignment) -> List[str]:
        """Assigned hosts believed down — repository or live manager view.

        The site repository is the durable view, but it goes stale while
        its Site Manager is crashed (reports are buffered), so the live
        Group Manager belief fills the gap when that manager is up.
        """
        repo = self.runtime.repositories[assignment.site]
        manager = self.runtime.site_managers[assignment.site]
        down: List[str] = []
        for h in assignment.hosts:
            if repo.resources.has_host(h) and not repo.resources.get(h).up:
                down.append(h)
                continue
            group = manager.site.group_of(h).name
            gm = manager.group_managers.get(group)
            if gm is not None and gm.alive and not gm.believes_up(h):
                down.append(h)
        return down

    def _site_reachable(self, site_name: str) -> bool:
        """Can the submitting site currently talk to ``site_name``?"""
        if site_name == self.submit_site:
            return True
        if site_name in self._unreachable_sites:
            return False
        return self.runtime.topology.network.reachable(self.submit_site, site_name)

    def _reschedule(self, node: TaskNode, record: TaskRecord, reason: str,
                    span=None, span_kind: SpanKind = SpanKind.RESCHEDULE):
        """Obtain a replacement placement and re-stage inputs onto it.

        ``span_kind`` selects the wait-state the re-placement is billed
        to: RESCHEDULE for failures/load, DRAIN when a membership
        transition (graceful drain, decommission, rejoin) invalidated
        the original binding.
        """
        resched_span = None
        if span is not None and self.spans.enabled:
            resched_span = self.spans.open(
                span_kind, self.afg.name, parent=span,
                source=f"app:{self.afg.name}", task=node.id, reason=reason,
            )
        self._reschedules += 1
        self.stats.reschedule_requests += 1
        if self.sim.metrics.enabled:
            self.sim.metrics.counter(
                "vdce_reschedules_total",
                "task rescheduling requests, by originating site",
            ).inc(site=self.assignment[node.id].site)
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.RESCHEDULE, source=f"app:{self.afg.name}",
                task=node.id, reason=reason,
                from_site=self.assignment[node.id].site,
                from_hosts=self.assignment[node.id].hosts,
            )
        excluded = self._excluded_hosts.setdefault(node.id, set())
        excluded.update(self.assignment[node.id].hosts)
        record.reschedule_reasons.append(reason)
        if "down" in reason.lower() or "unreachable" in reason.lower():
            self.stats.failure_restarts += 1

        # Ask sites in locality order: current site, submit site, neighbours
        # — skipping any the submitting site cannot currently reach.
        current = self.assignment[node.id].site
        order = [current, self.submit_site] + [
            s for s in self.runtime.neighbor_order(self.submit_site)
        ]
        seen = set()
        replacement = None
        for site_name in order:
            if site_name in seen:
                continue
            seen.add(site_name)
            if not self._site_reachable(site_name):
                continue
            manager = self.runtime.site_managers[site_name]
            bid = manager.reselect_host(
                self.afg, node.id, frozenset(excluded), self.runtime.model
            )
            if bid is not None:
                replacement = bid
                break
        if replacement is None:
            raise ExecutionError(
                f"no replacement host for task {node.id!r} "
                f"(excluded: {sorted(excluded)}; reason: {reason})"
            )

        new_assignment = TaskAssignment(
            task_id=node.id,
            site=replacement.site,
            hosts=replacement.hosts,
            predicted_time=replacement.predicted_time,
        )
        self.assignment[node.id] = new_assignment
        record.site = new_assignment.site
        record.hosts = new_assignment.hosts
        self._note_assignment_epochs(new_assignment)
        self._journal_append(
            "reschedule", task=node.id, reason=reason,
            site=new_assignment.site, hosts=list(new_assignment.hosts),
        )

        # Re-stage inputs onto the new primary host (link-outage safe).
        new_primary = new_assignment.primary_host
        for edge in self.afg.in_edges(node.id):
            src_host = self.assignment[edge.src].primary_host
            yield from self._transfer_with_retry(
                src_host, new_primary, edge.size_mb,
                label=f"restage:{edge.src}->{edge.dst}", record=record,
                reason="restage",
            )
        src_server = self.runtime.topology.site(self.submit_site).server_host.name
        for binding in node.properties.file_inputs():
            yield from self._stage_with_retry(
                binding.file, src_server, new_primary, record
            )
        if resched_span is not None:
            self.spans.close(
                resched_span, source=f"app:{self.afg.name}",
                site=new_assignment.site,
            )

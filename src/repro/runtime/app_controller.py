"""Application Controllers — one per machine (paper §4.1).

"The Application Controller sets up the execution environment and
manages the services provided by interacting with the Data Manager. ...
The Application Controller monitors the application execution on the
assigned machines.  If the current load on any of these machines is
more than a predefined threshold value, the Application Controller
terminates the task execution on the machine and sends a task
rescheduling request to the Group Manager."

In this codebase the controller watches its host's load while task
slices run; crossing ``load_threshold`` cancels the slice and raises a
reschedule request toward the coordinator (which consults the Site
Manager for a replacement placement).  The check period matches the
monitor daemon's period — the controller reads the same measurement
stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Set

from repro.sim.host import Host, TaskExecution
from repro.sim.kernel import Process, Simulator, Timeout
from repro.runtime.stats import RuntimeStats
from repro.trace.events import EventKind
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = ["AppController"]

#: reschedule callback: (task_id, host_name, reason) -> None
RescheduleRequest = Callable[[str, str, str], None]


class AppController:
    """Per-host execution agent."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        stats: RuntimeStats,
        load_threshold: float = 4.0,
        check_period_s: float = 2.0,
        tracer: Tracer = NULL_TRACER,
    ):
        if load_threshold <= 0:
            raise ValueError("load_threshold must be positive")
        if check_period_s <= 0:
            raise ValueError("check_period_s must be positive")
        self.sim = sim
        self.host = host
        self.stats = stats
        self.tracer = tracer
        self.load_threshold = float(load_threshold)
        self.check_period_s = float(check_period_s)
        #: applications whose execution request has arrived
        self.active_applications: Set[str] = set()
        self.requests_received = 0

    def receive_execution_request(self, application: str) -> None:
        """Group Manager delivery of the allocation-table portion."""
        self.active_applications.add(application)
        self.requests_received += 1

    def release(self, application: str) -> None:
        self.active_applications.discard(application)

    # -- guarded execution ---------------------------------------------------

    def start_slice(self, work: float, memory_mb: int, label: str) -> TaskExecution:
        """Begin one task slice on this controller's host."""
        return self.host.execute(work=work, memory_mb=memory_mb, label=label)

    def watch(
        self,
        execution: TaskExecution,
        task_id: str,
        on_reschedule: RescheduleRequest,
    ) -> Process:
        """Spawn the load watchdog for a running slice.

        Checks the host's load every ``check_period_s`` while the slice
        runs.  The *background* load is what triggers rescheduling — a
        busy VDCE task itself must not count against its own host, so
        the controller subtracts resident VDCE slices from the measured
        run-queue length.
        """

        def loop():
            while not execution.done.triggered:
                yield Timeout(self.check_period_s)
                if execution.done.triggered:
                    return
                background = self.host.bg_load
                if background > self.load_threshold:
                    if self.tracer.enabled:
                        self.tracer.emit(
                            EventKind.LOAD_CANCEL, source=f"ac:{self.host.name}",
                            task=task_id, host=self.host.name, load=background,
                            threshold=self.load_threshold,
                        )
                    self.host.cancel(execution, cause=f"load>{self.load_threshold}")
                    on_reschedule(task_id, self.host.name,
                                  f"load {background:.2f} over threshold")
                    return

        return self.sim.process(loop(), name=f"watch:{self.host.name}:{task_id}")

"""Straggler defense: adaptive detection, speculation, quarantine.

Hosts that *die* are handled by the echo protocol, rescheduling and
manager failover (PRs 3–4).  Hosts that merely *slow down* — the
performance-fault model of :meth:`repro.sim.failures.FailureInjector.
schedule_host_slowdown` — need different machinery, because a straggler
still answers echoes and never raises :class:`HostDownError`:

* :class:`PhiAccrualDetector` — a deterministic phi-accrual failure
  detector (Hayashibara et al., SRDS 2004) over echo inter-arrival
  history.  Instead of a binary up/down flip after N missed echoes it
  yields a continuous suspicion level ``phi``; the Group Manager maps
  it to SUSPECT / TRUST transitions and only declares a host down at a
  much higher threshold, so *slow is not dead* and a flapping host does
  not trigger spurious failover.
* :class:`RatioTracker` — per-host quantiles of measured/predicted
  runtime ratios, so the speculation trigger adapts to hosts whose
  predictions are systematically optimistic.
* :class:`SpeculationPolicy` — the knobs of speculative re-execution
  (when the :class:`~repro.runtime.execution.ExecutionCoordinator`
  launches one backup copy of an overdue task; first completion wins).
* :class:`HealthPolicy` / :class:`HostHealth` — a decaying per-host
  health score fed by suspicion, declared failures and lost
  speculation races.  Host selection folds ``1 + score`` into
  ``Predict()`` as a multiplicative penalty and, past a threshold,
  quarantines the host for a probation window.

Everything here is driven by the virtual clock and draws **no RNG**:
with the default configuration (``detector="count"``,
``speculation=None``, ``health=None``) none of it is constructed and
existing seeded traces are byte-identical.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.sim.kernel import Simulator
from repro.trace.events import EventKind
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = [
    "HealthPolicy",
    "HostHealth",
    "PhiAccrualDetector",
    "RatioTracker",
    "SpeculationPolicy",
]

_LN10 = math.log(10.0)


class PhiAccrualDetector:
    """Suspicion level over heartbeat inter-arrival times.

    The classic phi-accrual detector models inter-arrival times and
    defines ``phi(t) = -log10 P(no arrival by t | history)``.  With an
    exponential arrival model this collapses to the closed form

        ``phi = elapsed / (mean_interval * ln 10)``

    which is what we compute: deterministic, cheap, and exactly the
    behaviour we need — ``phi`` grows *linearly* with silence, scaled
    by how regular the host's echoes have historically been.  A host
    answering every period sits near ``period / (period * ln 10) ≈
    0.43`` and is trusted; one that misses rounds accrues suspicion
    smoothly instead of flipping to "down" on a single tight timeout.

    Arrivals recorded *late* (a slowed host answering after the round's
    deadline) still enter the history, which is the crucial difference
    from the count detector: a straggler's mean interval stays near the
    echo period, so its phi stays low and it is never falsely declared
    down — merely SUSPECTed if it actually goes quiet.
    """

    def __init__(self, expected_interval_s: float, window: int = 16):
        if expected_interval_s <= 0:
            raise ValueError("expected_interval_s must be positive")
        if window < 2:
            raise ValueError("window must be >= 2")
        self.expected_interval_s = float(expected_interval_s)
        self._intervals: Deque[float] = deque(maxlen=int(window))
        self._last_arrival: Optional[float] = None

    def heartbeat(self, at: float) -> None:
        """Record one echo arrival at virtual time ``at``."""
        if self._last_arrival is not None and at > self._last_arrival:
            self._intervals.append(at - self._last_arrival)
        if self._last_arrival is None or at > self._last_arrival:
            self._last_arrival = at

    def mean_interval(self) -> float:
        """Mean observed inter-arrival; the expected period until the
        window has real samples."""
        if not self._intervals:
            return self.expected_interval_s
        return sum(self._intervals) / len(self._intervals)

    def phi(self, now: float) -> float:
        """Current suspicion level; 0 before the first arrival."""
        if self._last_arrival is None:
            return 0.0
        elapsed = now - self._last_arrival
        if elapsed <= 0:
            return 0.0
        return elapsed / (self.mean_interval() * _LN10)

    def reset(self) -> None:
        """Forget history (after a declared failure or a recovery)."""
        self._intervals.clear()
        self._last_arrival = None


class RatioTracker:
    """Per-host measured/predicted runtime ratios, with quantiles.

    The speculation trigger multiplies a task's predicted time by a
    high quantile of this distribution for its host, so hosts whose
    predictions run systematically long (calibration drift, contended
    sites) do not trip endless false speculations.
    """

    def __init__(self, window: int = 20):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._samples: Dict[str, Deque[float]] = {}

    def record(self, host: str, ratio: float) -> None:
        if ratio <= 0:
            return
        self._samples.setdefault(host, deque(maxlen=self.window)).append(
            float(ratio)
        )

    def quantile(self, host: str, q: float) -> Optional[float]:
        """The ``q``-quantile of the host's ratios; None with no samples."""
        samples = self._samples.get(host)
        if not samples:
            return None
        ordered = sorted(samples)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


@dataclass(frozen=True)
class SpeculationPolicy:
    """When and how the coordinator launches backup task copies."""

    #: launch a backup when elapsed > trigger_multiple × adjusted estimate
    trigger_multiple: float = 2.0
    #: how often the per-task speculation timer re-checks progress
    check_period_s: float = 1.0
    #: quantile of the host's measured/predicted ratios folded into the
    #: estimate (values < 1 are clamped to 1 — never speculate *earlier*
    #: than the raw prediction says)
    ratio_quantile: float = 0.75
    #: ratio history window per host
    ratio_window: int = 20
    #: never speculate before this much wall time has elapsed
    min_runtime_s: float = 0.0

    def __post_init__(self) -> None:
        if self.trigger_multiple <= 1.0:
            raise ValueError("trigger_multiple must exceed 1")
        if self.check_period_s <= 0:
            raise ValueError("check_period_s must be positive")
        if not (0.0 <= self.ratio_quantile <= 1.0):
            raise ValueError("ratio_quantile must be in [0, 1]")
        if self.ratio_window < 1:
            raise ValueError("ratio_window must be >= 1")
        if self.min_runtime_s < 0:
            raise ValueError("min_runtime_s must be non-negative")


@dataclass(frozen=True)
class HealthPolicy:
    """Scoring knobs for :class:`HostHealth`."""

    #: score halves every this many virtual seconds
    half_life_s: float = 120.0
    #: added when the detector SUSPECTs the host
    suspect_penalty: float = 0.5
    #: added when the host is declared down (echo failure detection)
    failure_penalty: float = 1.0
    #: added when a speculative backup is launched against the host
    straggle_penalty: float = 1.0
    #: decayed score at/above this quarantines the host
    quarantine_threshold: float = 3.0
    #: how long a quarantined host is excluded from selection
    probation_s: float = 300.0

    def __post_init__(self) -> None:
        if self.half_life_s <= 0:
            raise ValueError("half_life_s must be positive")
        if min(self.suspect_penalty, self.failure_penalty,
               self.straggle_penalty) < 0:
            raise ValueError("penalties must be non-negative")
        if self.quarantine_threshold <= 0:
            raise ValueError("quarantine_threshold must be positive")
        if self.probation_s <= 0:
            raise ValueError("probation_s must be positive")


class HostHealth:
    """Decaying per-host health scores with quarantine.

    ``score`` starts at 0 (healthy) and decays exponentially with the
    policy's half-life; penalties add to the decayed value.  Host
    selection asks :meth:`factor_of`: ``None`` means quarantined
    (exclude the host), otherwise ``1 + score`` multiplies the
    ``Predict()`` value, steering work away from flaky hosts in
    proportion to how recently they misbehaved.
    """

    def __init__(
        self,
        sim: Simulator,
        policy: HealthPolicy = HealthPolicy(),
        tracer: Tracer = NULL_TRACER,
    ):
        self.sim = sim
        self.policy = policy
        self.tracer = tracer
        self._score: Dict[str, float] = {}
        self._updated: Dict[str, float] = {}
        self._quarantined_until: Dict[str, float] = {}

    # -- scoring ----------------------------------------------------------

    def score_of(self, host: str) -> float:
        """The host's decayed score right now (0 = healthy)."""
        score = self._score.get(host, 0.0)
        if score <= 0.0:
            return 0.0
        dt = self.sim.now - self._updated.get(host, self.sim.now)
        if dt > 0:
            score *= 0.5 ** (dt / self.policy.half_life_s)
        return score

    def penalize(
        self, host: str, amount: float, reason: str = "", origin: str = ""
    ) -> None:
        """Fold one penalty into the host's decayed score.

        ``origin`` names who reported the misbehaviour (``app:<name>``
        or ``gm:<name>``), so a QUARANTINE event is attributable to the
        application or manager whose penalty tipped the score.
        """
        if amount <= 0:
            return
        score = self.score_of(host) + float(amount)
        self._score[host] = score
        self._updated[host] = self.sim.now
        if (
            score >= self.policy.quarantine_threshold
            and host not in self._quarantined_until
        ):
            self._quarantined_until[host] = (
                self.sim.now + self.policy.probation_s
            )
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.QUARANTINE, source="health",
                    host=host, score=score, reason=reason,
                    origin=origin or "health",
                    until=self._quarantined_until[host],
                )
            self._export_gauge()

    # -- selection interface ----------------------------------------------

    def factor_of(self, host: str) -> Optional[float]:
        """Prediction multiplier for ``host``; None while quarantined.

        Expired quarantines are released lazily here (the first
        selection that reconsiders the host), with a PROBATION trace
        event; the score restarts at half the quarantine threshold so
        one further incident re-quarantines but clean behaviour decays
        back to healthy.
        """
        until = self._quarantined_until.get(host)
        if until is not None:
            if self.sim.now < until:
                return None
            del self._quarantined_until[host]
            self._score[host] = self.policy.quarantine_threshold / 2.0
            self._updated[host] = self.sim.now
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.PROBATION, source="health",
                    host=host, score=self._score[host],
                )
            self._export_gauge()
        return 1.0 + self.score_of(host)

    def is_quarantined(self, host: str) -> bool:
        until = self._quarantined_until.get(host)
        return until is not None and self.sim.now < until

    def quarantined_hosts(self) -> List[str]:
        return sorted(
            h for h, until in self._quarantined_until.items()
            if self.sim.now < until
        )

    def _export_gauge(self) -> None:
        metrics = self.sim.metrics
        if metrics.enabled:
            metrics.gauge(
                "vdce_quarantined_hosts",
                "hosts currently excluded from selection by quarantine",
            ).set(float(len(self.quarantined_hosts())))

"""Backpressure and brownout: graceful degradation under federation load.

The paper promises QoS management over shared resources (§1), but its
prototype control plane had no notion of *too much work*: every AFG
multicast got a bid, every submission got a slot eventually.  This
module adds the missing degradation ladder, modelled on how the grid
systems that followed VDCE (and every modern admission-controlled
service) survive arrival storms:

* Group Managers fold their echo round's per-host run-queue lengths
  into a per-group **occupancy** signal (load relative to the
  saturation threshold) that rides the existing echo bookkeeping — zero
  extra messages, zero RNG draws.
* Site Managers aggregate group occupancy and **exclude themselves
  from bidding** once saturated (:class:`SiteOverloaded`), so remote
  schedulers stop routing new work at a sick site instead of timing
  out against it.
* The federation-wide :class:`BrownoutController` maps mean occupancy
  onto a **brownout level** that progressively sheds optional work
  before refusing any:

  ========  ==========================  =================================
  level     trigger (mean occupancy)    effect
  ========  ==========================  =================================
  0 normal  below ``brownout_degraded`` none
  1 degraded ``>= brownout_degraded``   speculation disabled
  2 severe  ``>= brownout_severe``      + admission concurrency shrunk
  3 critical ``>= brownout_critical``   + new submissions refused
  ========  ==========================  =================================

Everything here is pure bookkeeping on the virtual clock — no RNG, no
yields — and defaults off (``RuntimeConfig.overload is None``), so
existing traces, metrics snapshots and benchmark hashes are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.net.rpc import RpcError
from repro.trace.events import EventKind
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = ["BrownoutController", "OverloadPolicy", "SiteOverloaded"]


class SiteOverloaded(RpcError):
    """A saturated site declined to bid (backpressure, not failure).

    Raised by :meth:`~repro.runtime.site_manager.SiteManager.
    handle_scheduling_request` when the site's occupancy crosses the
    bid-exclusion threshold; the scheduling exchange treats it like an
    unreachable site (placement proceeds with whoever answered).
    """

    def __init__(self, site: str, occupancy: float):
        super().__init__(
            f"site {site!r} is overloaded (occupancy {occupancy:.2f})"
        )
        self.site = site
        self.occupancy = occupancy


@dataclass(frozen=True)
class OverloadPolicy:
    """Thresholds of the degradation ladder (all occupancy fractions)."""

    #: run-queue length at which one host counts as fully occupied
    saturation_load: float = 4.0
    #: site occupancy at which the site stops answering bid requests
    bid_exclusion_occupancy: float = 1.0
    #: mean federation occupancy entering brownout level 1 (degraded)
    brownout_degraded: float = 0.7
    #: level 2 (severe): admission concurrency shrinks
    brownout_severe: float = 0.85
    #: level 3 (critical): new submissions are refused
    brownout_critical: float = 0.95
    #: multiplier applied to admission ``max_concurrent`` at level >= 2
    concurrency_shrink: float = 0.5

    def __post_init__(self) -> None:
        if self.saturation_load <= 0:
            raise ValueError("saturation_load must be positive")
        if self.bid_exclusion_occupancy <= 0:
            raise ValueError("bid_exclusion_occupancy must be positive")
        if not (0.0 < self.brownout_degraded < self.brownout_severe
                < self.brownout_critical):
            raise ValueError(
                "need 0 < brownout_degraded < brownout_severe "
                "< brownout_critical"
            )
        if not (0.0 < self.concurrency_shrink <= 1.0):
            raise ValueError("concurrency_shrink must be in (0, 1]")


class BrownoutController:
    """Federation brownout level from per-group occupancy reports.

    Site Managers feed :meth:`update` from their Group Managers' echo
    rounds; the controller recomputes the mean occupancy and walks the
    level up or down, emitting one ``brownout`` trace event (and gauge
    update) per level change — never per report, so the signal stays
    cheap and the trace readable.
    """

    def __init__(self, sim, policy: OverloadPolicy,
                 tracer: Tracer = NULL_TRACER):
        self.sim = sim
        self.policy = policy
        self.tracer = tracer
        #: latest occupancy per (site, group)
        self._occupancy: Dict[Tuple[str, str], float] = {}
        self.level = 0
        #: (time, old_level, new_level) per transition
        self.shifts: List[Tuple[float, int, int]] = []

    # -- inputs ------------------------------------------------------------

    def update(self, site: str, group: str, occupancy: float) -> None:
        self._occupancy[(site, group)] = float(occupancy)
        new_level = self._level_for(self.federation_occupancy())
        if new_level == self.level:
            return
        old, self.level = self.level, new_level
        self.shifts.append((self.sim.now, old, new_level))
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.BROWNOUT, source="brownout",
                level=new_level, previous=old,
                occupancy=round(self.federation_occupancy(), 9),
            )
        metrics = self.sim.metrics
        if metrics.enabled:
            metrics.gauge(
                "vdce_brownout_level",
                "federation brownout level (0 normal .. 3 critical)",
            ).set(float(new_level))

    # -- readouts ----------------------------------------------------------

    def federation_occupancy(self) -> float:
        if not self._occupancy:
            return 0.0
        return sum(self._occupancy.values()) / len(self._occupancy)

    def occupancy_of_site(self, site: str) -> float:
        values = [v for (s, _g), v in self._occupancy.items() if s == site]
        return sum(values) / len(values) if values else 0.0

    def _level_for(self, occupancy: float) -> int:
        if occupancy >= self.policy.brownout_critical:
            return 3
        if occupancy >= self.policy.brownout_severe:
            return 2
        if occupancy >= self.policy.brownout_degraded:
            return 1
        return 0

    # -- the degradation ladder --------------------------------------------

    def speculation_allowed(self) -> bool:
        """Level >= 1: backup copies are optional work — shed them first."""
        return self.level < 1

    def concurrency_limit(self, base: int) -> int:
        """Level >= 2: shrink admission concurrency (never below 1)."""
        if self.level < 2:
            return base
        return max(1, int(base * self.policy.concurrency_shrink))

    def refuse_new_work(self) -> bool:
        """Level 3: admission refuses new submissions outright."""
        return self.level >= 3

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BrownoutController(level={self.level}, "
            f"occupancy={self.federation_occupancy():.2f})"
        )

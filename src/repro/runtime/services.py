"""User-requested runtime services (paper §4.2).

"The VDCE Runtime System provides several user-requested services such
as I/O service, console service, and visualization service."

* :class:`IOService` — "provides either file I/O or URL I/O for the
  inputs of the application tasks": stages a file/URL input onto the
  task's host (a real simulated transfer from the submitting site's
  server) and resolves its contents through registered loaders;
* :class:`ConsoleService` — "the user can suspend and restart the
  application execution": a per-application gate the execution
  coordinator checks before launching each task;
* the visualisation service lives in :mod:`repro.viz` and renders
  :class:`~repro.runtime.execution.ApplicationResult` timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.afg.properties import FileSpec
from repro.errors import CorruptPayloadError
from repro.runtime.stats import RuntimeStats
from repro.sim.kernel import Signal, Simulator
from repro.sim.network import Network
from repro.trace.events import EventKind
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = ["ConsoleService", "IOService", "StagedFile"]


@dataclass(frozen=True)
class StagedFile:
    """Opaque handle for a staged input with no registered loader."""

    path: str
    size_mb: float

    @property
    def is_url(self) -> bool:
        """URL I/O vs file I/O — the two §4.2 input flavours."""
        return "://" in self.path


class IOService:
    """File/URL input staging for application tasks.

    "I/O Service provides either file I/O or URL I/O for the inputs of
    the application tasks" — both flavours stage through the same
    transfer machinery; URLs are distinguished for accounting.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        stats: RuntimeStats,
        tracer: Tracer = NULL_TRACER,
        integrity=None,
    ):
        self.sim = sim
        self.network = network
        self.stats = stats
        self.tracer = tracer
        #: data-integrity manager; None = staged bytes are trusted as-is
        self.integrity = integrity
        self._loaders: Dict[str, Callable[[FileSpec], Any]] = {}
        self.staged_count = 0
        self.staged_mb = 0.0
        self.url_staged_count = 0

    def register_loader(self, path: str, loader: Callable[[FileSpec], Any]) -> None:
        """Map a path (or URL) to a function producing its contents."""
        if path in self._loaders:
            raise ValueError(f"loader for {path!r} already registered")
        self._loaders[path] = loader

    def stage(self, spec: FileSpec, src_host: str, dst_host: str):
        """Generator: move the file to ``dst_host`` and resolve its value.

        Use as ``value = yield from io.stage(spec, src, dst)`` inside a
        kernel process; the transfer rides the real (contended) links.
        """
        if spec.size_mb > 0 or src_host != dst_host:
            transfer = self.network.transfer(
                src_host, dst_host, spec.size_mb, label=f"io:{spec.path}"
            )
            self.stats.data_transfers += 1
            self.stats.data_transferred_mb += spec.size_mb
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.DATA_TRANSFER, source="io",
                    src=src_host, dst=dst_host, size_mb=spec.size_mb,
                    reason="stage",
                )
            yield transfer.done
            if self.integrity is not None and transfer.corruption is not None:
                # stage-in verification: damaged file payloads never
                # reach a task; _stage_with_retry owns the refetch budget
                self.integrity.note_corruption(
                    "io", f"stage:{spec.path}", transfer.corruption, None
                )
                raise CorruptPayloadError(
                    f"staged file {spec.path!r} arrived {transfer.corruption}"
                    f"-damaged on {dst_host}"
                )
        self.staged_count += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.FILE_STAGE, source="io",
                path=spec.path, dst=dst_host, size_mb=spec.size_mb,
                url="://" in spec.path,
            )
        self.staged_mb += spec.size_mb
        if "://" in spec.path:
            self.url_staged_count += 1
        loader = self._loaders.get(spec.path)
        return loader(spec) if loader is not None else StagedFile(spec.path, spec.size_mb)


class ConsoleService:
    """Suspend/restart gate, per application."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._resume_signals: Dict[str, Signal] = {}
        self.suspend_count = 0

    def suspend(self, application: str) -> None:
        if application in self._resume_signals:
            return  # already suspended
        self._resume_signals[application] = self.sim.signal(
            f"console:resume:{application}"
        )
        self.suspend_count += 1

    def resume(self, application: str) -> None:
        signal = self._resume_signals.pop(application, None)
        if signal is not None:
            signal.succeed()

    def is_suspended(self, application: str) -> bool:
        return application in self._resume_signals

    def wait_if_suspended(self, application: str):
        """Generator: block while the application is suspended.

        Loops because the user may suspend again between resume and the
        waiter actually running.
        """
        while True:
            signal = self._resume_signals.get(application)
            if signal is None:
                return
            yield signal

"""The VDCE Runtime System (paper §4).

"The VDCE Runtime System separates control and data functions by
allocating them to the Control Manager and Data Manager, respectively."

Control plane (§4.1):

* :class:`~repro.runtime.monitor.MonitorDaemon` — per-host load/memory
  measurement on a period;
* :class:`~repro.runtime.group_manager.GroupManager` — per-group
  significant-change filtering of workload reports + echo-packet
  failure detection;
* :class:`~repro.runtime.site_manager.SiteManager` — repository
  updates, allocation-table multicast, inter-site coordination,
  post-execution task-performance refinement;
* :class:`~repro.runtime.app_controller.AppController` — execution
  environment setup and load-threshold task rescheduling.

Data plane (§4.2):

* :class:`~repro.runtime.execution.ExecutionCoordinator` — the
  simulated Data Manager protocol: channel setup, acknowledgements,
  the execution startup signal, inter-task transfers, and task
  (re)execution (:mod:`repro.runtime.execution`);
* the real-socket Data Manager lives in :mod:`repro.net` /
  :mod:`repro.runtime.data_manager`.

User services (§4.2): :mod:`repro.runtime.services` (I/O, console,
visualisation).  :class:`~repro.runtime.vdce_runtime.VDCERuntime` wires
a whole deployment together.
"""

from repro.runtime.stats import RuntimeStats
from repro.runtime.monitor import MonitorDaemon
from repro.runtime.group_manager import GroupManager
from repro.runtime.site_manager import SiteManager
from repro.runtime.app_controller import AppController
from repro.runtime.execution import (
    ApplicationResult,
    ExecutionCoordinator,
    ExecutionError,
    TaskRecord,
)
from repro.runtime.services import ConsoleService, IOService, StagedFile
from repro.runtime.vdce_runtime import RuntimeConfig, VDCERuntime
from repro.runtime.dsm import DSM, DSMError
from repro.runtime.admission import (
    AdmissionExpired,
    AdmissionPolicy,
    AdmissionQueue,
    AdmissionRejected,
)
from repro.runtime.overload import (
    BrownoutController,
    OverloadPolicy,
    SiteOverloaded,
)
from repro.runtime.data_manager import LocalDataManager, RealExecutionReport
from repro.runtime.straggler import (
    HealthPolicy,
    HostHealth,
    PhiAccrualDetector,
    RatioTracker,
    SpeculationPolicy,
)

__all__ = [
    "AdmissionExpired",
    "AdmissionPolicy",
    "AdmissionQueue",
    "AdmissionRejected",
    "AppController",
    "ApplicationResult",
    "BrownoutController",
    "ConsoleService",
    "DSM",
    "DSMError",
    "ExecutionCoordinator",
    "ExecutionError",
    "GroupManager",
    "HealthPolicy",
    "HostHealth",
    "IOService",
    "LocalDataManager",
    "MonitorDaemon",
    "OverloadPolicy",
    "PhiAccrualDetector",
    "RatioTracker",
    "RealExecutionReport",
    "RuntimeConfig",
    "RuntimeStats",
    "SiteManager",
    "SiteOverloaded",
    "SpeculationPolicy",
    "StagedFile",
    "TaskRecord",
    "VDCERuntime",
]

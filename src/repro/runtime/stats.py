"""Runtime message/event counters, shared across one deployment.

Experiments E5-E8 are statements about these counters (monitoring
message volume, failure-detection latency, rescheduling events, channel
setup counts), so they are first-class rather than scattered ad-hoc.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["RuntimeStats"]


@dataclass
class RuntimeStats:
    """Counters for every message class the paper's runtime exchanges."""

    #: Monitor daemon -> Group Manager workload measurements
    monitor_reports: int = 0
    #: Group Manager -> Site Manager forwarded (significant) measurements
    workload_forwards: int = 0
    #: measurements suppressed by the significant-change filter
    workload_suppressed: int = 0
    #: echo packets sent by Group Managers
    echo_packets: int = 0
    #: failure notifications Group Manager -> Site Manager
    failure_notifications: int = 0
    #: recovery notifications Group Manager -> Site Manager
    recovery_notifications: int = 0
    #: allocation-table portions multicast by Site Managers
    allocation_messages: int = 0
    #: execution requests Group Manager -> Application Controller
    execution_requests: int = 0
    #: Data Manager channel setups
    channel_setups: int = 0
    #: channel acknowledgements received
    channel_acks: int = 0
    #: execution startup signals sent
    startup_signals: int = 0
    #: inter-task data transfers performed
    data_transfers: int = 0
    #: MB moved by inter-task transfers
    data_transferred_mb: float = 0.0
    #: task rescheduling requests (load threshold or failure)
    reschedule_requests: int = 0
    #: tasks restarted after a host failure
    failure_restarts: int = 0
    #: inter-site scheduler messages (AFG multicast + bid replies)
    scheduler_messages: int = 0
    #: control-plane RPC attempts that failed and were retried
    rpc_retries: int = 0
    #: control-plane RPCs abandoned after exhausting every attempt
    rpc_timeouts: int = 0
    #: payload transfers retried after a link outage killed them
    transfer_retries: int = 0
    #: inter-task channels re-established after a mid-flight failure
    channel_reestablishes: int = 0
    #: task-performance DB refinements recorded after completion
    taskperf_updates: int = 0
    #: manager failovers completed (Group Manager deputy promotions)
    failovers: int = 0
    #: records appended to application checkpoint journals
    checkpoint_records: int = 0
    #: bytes appended to application checkpoint journals
    checkpoint_bytes: float = 0.0
    #: applications resumed from a checkpoint journal
    resumes: int = 0
    #: speculative backup task copies launched
    speculative_launches: int = 0
    #: speculation races won by the backup copy
    speculative_wins: int = 0
    #: virtual seconds of work discarded with cancelled race losers
    speculative_wasted_s: float = 0.0
    #: virtual seconds applications spent queued before admission
    queue_wait_s: float = 0.0
    #: (virtual time, host, event) failure-detection log for E6
    detection_log: List[Tuple[float, str, str]] = field(default_factory=list)
    #: per-application queue wait (admission control), excluded from as_dict
    queue_waits: Dict[str, float] = field(default_factory=dict)

    def record_detection(self, time: float, host: str, event: str) -> None:
        self.detection_log.append((time, host, event))

    def total_control_messages(self) -> int:
        """Everything except payload data transfers.

        Both sides of the failure path are summed: the rescheduling
        *request* (Application Controller -> Site Manager) and the
        restart message the replacement host receives.  Historically
        only ``reschedule_requests`` was counted, understating control
        traffic in faulty runs; the composition is pinned by a
        regression test.
        """
        return (
            self.monitor_reports
            + self.workload_forwards
            + self.echo_packets
            + self.failure_notifications
            + self.recovery_notifications
            + self.allocation_messages
            + self.execution_requests
            + self.channel_setups
            + self.channel_acks
            + self.startup_signals
            + self.reschedule_requests
            + self.failure_restarts
            + self.scheduler_messages
        )

    def export_to(self, registry) -> None:
        """Back every counter field by a registry counter.

        Each field becomes ``vdce_<field>_total`` in the given
        :class:`~repro.metrics.registry.MetricsRegistry`, written with
        ``set_total`` so repeated exports stay idempotent.  The
        dataclass API stays the in-run source (cheap increments on hot
        paths); the registry becomes the queryable mirror — ``vdce
        metrics`` and experiment assertions read the same numbers.
        """
        if not registry.enabled:
            return
        for field_name, value in self.as_dict().items():
            registry.counter(
                f"vdce_{field_name}_total",
                f"RuntimeStats.{field_name} (runtime message counter)",
            ).set_total(float(value))

    def as_dict(self) -> Dict[str, float]:
        return {
            "monitor_reports": self.monitor_reports,
            "workload_forwards": self.workload_forwards,
            "workload_suppressed": self.workload_suppressed,
            "echo_packets": self.echo_packets,
            "failure_notifications": self.failure_notifications,
            "recovery_notifications": self.recovery_notifications,
            "allocation_messages": self.allocation_messages,
            "execution_requests": self.execution_requests,
            "channel_setups": self.channel_setups,
            "channel_acks": self.channel_acks,
            "startup_signals": self.startup_signals,
            "data_transfers": self.data_transfers,
            "data_transferred_mb": self.data_transferred_mb,
            "reschedule_requests": self.reschedule_requests,
            "failure_restarts": self.failure_restarts,
            "scheduler_messages": self.scheduler_messages,
            "rpc_retries": self.rpc_retries,
            "rpc_timeouts": self.rpc_timeouts,
            "transfer_retries": self.transfer_retries,
            "channel_reestablishes": self.channel_reestablishes,
            "taskperf_updates": self.taskperf_updates,
            "failovers": self.failovers,
            "checkpoint_records": self.checkpoint_records,
            "checkpoint_bytes": self.checkpoint_bytes,
            "resumes": self.resumes,
            "speculative_launches": self.speculative_launches,
            "speculative_wins": self.speculative_wins,
            "speculative_wasted_s": self.speculative_wasted_s,
            "queue_wait_s": self.queue_wait_s,
            "total_control_messages": self.total_control_messages(),
        }

"""Distributed shared memory — the paper's §5 future work, implemented.

"We are also implementing a distributed shared memory model that will
allow VDCE users to describe their applications using a shared memory
paradigm."

This module provides that model over the same simulated network the
Data Manager uses: a home-based, write-invalidate protocol with
sequential consistency.

* Every variable has a *home host* (chosen at allocation).
* A read from a host with a valid cached copy is free; otherwise the
  value is fetched from the home (one transfer) and cached.
* A write goes to the home (one transfer), which invalidates every
  other cached copy (one control message each) **before** the write
  completes — writes are totally ordered at the home and no stale copy
  survives a write, which yields sequential consistency.

Reads and writes are generator methods to be driven from kernel
processes (``value = yield from dsm.read("x", host)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

from repro.errors import CorruptPayloadError
from repro.sim.kernel import AllOf, Simulator, Timeout
from repro.sim.network import Network

__all__ = ["DSM", "DSMError", "DSMStats"]

#: wire size of one DSM value/control message (MB); small control traffic
_VALUE_MB = 0.001
_CONTROL_MB = 0.0001


class DSMError(RuntimeError):
    """Unknown variable or misuse of the DSM API."""


@dataclass
class DSMStats:
    reads: int = 0
    read_hits: int = 0
    read_misses: int = 0
    writes: int = 0
    invalidations: int = 0
    #: hash-mismatched fetches re-fetched from the home (integrity on)
    refetches: int = 0

    def hit_rate(self) -> float:
        return self.read_hits / self.reads if self.reads else 0.0


@dataclass
class _Variable:
    name: str
    home_host: str
    value: Any
    #: hosts (other than home) holding a valid cached copy
    copies: Set[str] = field(default_factory=set)
    version: int = 0


class DSM:
    """One shared-memory space spanning a deployment's hosts."""

    def __init__(self, sim: Simulator, network: Network, integrity=None):
        self.sim = sim
        self.network = network
        #: data-integrity manager (hash-checked remote fetches with a
        #: bounded refetch budget); None = fetched bytes trusted as-is
        self.integrity = integrity
        self._variables: Dict[str, _Variable] = {}
        #: per-host caches: host -> {var: (version, value)}
        self._cache: Dict[str, Dict[str, tuple]] = {}
        self.stats = DSMStats()

    def _verified(self, transfer_factory, label: str):
        """Generator: run a transfer, hash-checked with bounded refetch.

        The home always holds the authoritative value, so DSM repair
        never needs lineage: a damaged fetch is simply re-fetched.  An
        exhausted budget raises the typed :class:`CorruptPayloadError`
        (invariant I13's typed-termination arm).
        """
        integrity = self.integrity
        budget = (
            integrity.policy.max_refetches
            if integrity is not None and integrity.policy.verify_dsm
            else 0
        )
        for attempt in range(1 + budget):
            transfer = transfer_factory()
            yield transfer.done
            if (integrity is None or not integrity.policy.verify_dsm
                    or transfer.corruption is None):
                return
            integrity.note_corruption("dsm", label, transfer.corruption, None)
            if attempt < budget:
                self.stats.refetches += 1
                integrity.note_refetch("dsm", label, attempt + 1)
        raise CorruptPayloadError(
            f"DSM transfer {label!r} still corrupt after {budget} refetch(es)"
        )

    # -- allocation ----------------------------------------------------------

    def allocate(self, name: str, home_host: str, initial: Any = None) -> None:
        """Create a shared variable homed at ``home_host``."""
        if name in self._variables:
            raise DSMError(f"variable {name!r} already allocated")
        self.network.site_of(home_host)  # validates the host exists
        self._variables[name] = _Variable(name=name, home_host=home_host,
                                          value=initial)

    def variables(self) -> list:
        return sorted(self._variables)

    def _get(self, name: str) -> _Variable:
        try:
            return self._variables[name]
        except KeyError:
            raise DSMError(f"unknown shared variable {name!r}") from None

    # -- reads ------------------------------------------------------------------

    def read(self, name: str, host: str):
        """Generator: read ``name`` from ``host`` (cache hit = free)."""
        variable = self._get(name)
        self.stats.reads += 1
        cached = self._cache.get(host, {}).get(name)
        if host == variable.home_host:
            self.stats.read_hits += 1
            return variable.value
        if cached is not None and cached[0] == variable.version:
            self.stats.read_hits += 1
            return cached[1]
        # miss: fetch from home
        self.stats.read_misses += 1
        yield from self._verified(
            lambda: self.network.transfer(
                variable.home_host, host, _VALUE_MB, label=f"dsm-read:{name}"
            ),
            f"dsm-read:{name}",
        )
        value, version = variable.value, variable.version
        self._cache.setdefault(host, {})[name] = (version, value)
        variable.copies.add(host)
        return value

    # -- writes ------------------------------------------------------------------

    def write(self, name: str, value: Any, host: str):
        """Generator: write ``name`` from ``host`` (sequentially consistent).

        The new value travels to the home; every other cached copy is
        invalidated before the write returns.
        """
        variable = self._get(name)
        self.stats.writes += 1
        if host != variable.home_host:
            yield from self._verified(
                lambda: self.network.transfer(
                    host, variable.home_host, _VALUE_MB,
                    label=f"dsm-write:{name}",
                ),
                f"dsm-write:{name}",
            )
        # invalidate all copies except the writer's own (which we refresh)
        victims = sorted(variable.copies - {host})
        invalidations = []
        for victim in victims:
            self.stats.invalidations += 1
            cache = self._cache.get(victim, {})
            cache.pop(name, None)
            invalidations.append(
                self.network.transfer(
                    variable.home_host, victim, _CONTROL_MB,
                    label=f"dsm-inval:{name}",
                ).done
            )
        if invalidations:
            yield AllOf(invalidations)
        variable.copies = {host} if host != variable.home_host else set()
        variable.value = value
        variable.version += 1
        if host != variable.home_host:
            self._cache.setdefault(host, {})[name] = (variable.version, value)

    # -- read-modify-write convenience ------------------------------------------------

    def fetch_add(self, name: str, delta: float, host: str):
        """Generator: atomic increment (runs entirely at the home)."""
        variable = self._get(name)
        if host != variable.home_host:
            transfer = self.network.transfer(
                host, variable.home_host, _CONTROL_MB,
                label=f"dsm-rmw:{name}",
            )
            yield transfer.done
        new_value = (variable.value or 0) + delta
        yield from self.write(name, new_value, variable.home_host)
        if host != variable.home_host:
            back = self.network.transfer(
                variable.home_host, host, _CONTROL_MB,
                label=f"dsm-rmw-reply:{name}",
            )
            yield back.done
        return new_value

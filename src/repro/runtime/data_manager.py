"""LocalDataManager: execute an AFG over *real* TCP sockets (paper §4.2).

Where :mod:`repro.runtime.execution` simulates the Data Manager on
virtual time, this module runs the identical protocol for real on one
machine: every logical host gets a :class:`~repro.net.proxy.CommunicationProxy`
listening on a localhost port, every AFG edge becomes a genuine TCP
channel (setup message, acknowledgment), the startup signal is a
:class:`threading.Event` raised only after all acks arrive, each task
runs in its own thread, and payloads move as pickled frames through the
sockets.  Task implementations execute for real, so results are
numerically identical to the simulated path — the cross-check tests
rely on that.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.afg.graph import ApplicationFlowGraph, Edge
from repro.errors import AggregateExecutionError
from repro.metrics.registry import MetricsRegistry, NULL_METRICS
from repro.net.messages import EdgeKey
from repro.net.proxy import CommunicationProxy, ProxyAborted, ProxyError
from repro.scheduler.allocation import AllocationTable
from repro.tasklib.registry import TaskRegistry, default_registry
from repro.trace.events import EventKind
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = ["LocalDataManager", "RealExecutionReport", "RealTaskRecord"]


def _edge_key(edge: Edge) -> EdgeKey:
    return (edge.src, edge.dst, edge.src_port, edge.dst_port)


@dataclass
class RealTaskRecord:
    """Wall-clock telemetry for one task thread."""

    task_id: str
    host: str
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class RealExecutionReport:
    """Outcome of one real-socket application run."""

    application: str
    startup_wall_s: float  # channel setup -> startup signal
    makespan_wall_s: float  # startup -> last task finish
    records: Dict[str, RealTaskRecord]
    outputs: Dict[str, List[Any]]
    channels: int
    acks: int
    payloads: int
    bytes_sent: int


class LocalDataManager:
    """Run small AFGs for real over localhost sockets."""

    def __init__(
        self,
        registry: Optional[TaskRegistry] = None,
        timeout_s: float = 30.0,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_METRICS,
        verify_hashes: bool = False,
    ):
        """``tracer`` records the real run on the wall clock — construct
        it as ``Tracer(clock=time.monotonic)``.  Real-path traces are
        *not* deterministic (wall times vary); they exist for debugging
        and for comparing event **counts** against the simulated path.
        ``metrics`` likewise measures the real path on the wall clock;
        real-path snapshots are comparison aids, not oracles.
        ``verify_hashes`` stamps every Data frame with the payload's
        canonical content hash and verifies it on receive — the real
        half of DESIGN §16's end-to-end integrity protocol."""
        self.registry = registry or default_registry()
        self.timeout_s = timeout_s
        self.tracer = tracer
        self.metrics = metrics
        self.verify_hashes = verify_hashes

    def execute(
        self, afg: ApplicationFlowGraph, table: AllocationTable
    ) -> RealExecutionReport:
        """Execute ``afg`` as placed by ``table``; blocks until done."""
        table.validate_against(afg)
        hosts = sorted({h for a in table.assignments.values() for h in a.hosts})
        proxies: Dict[str, CommunicationProxy] = {
            h: CommunicationProxy(h, timeout_s=self.timeout_s) for h in hosts
        }
        try:
            return self._execute_with_proxies(afg, table, proxies)
        finally:
            for proxy in proxies.values():
                proxy.close()

    def _execute_with_proxies(
        self,
        afg: ApplicationFlowGraph,
        table: AllocationTable,
        proxies: Dict[str, CommunicationProxy],
    ) -> RealExecutionReport:
        setup_started = time.monotonic()

        # Channel setup: source host's proxy connects to destination host's
        # proxy for every edge; the Ack is the §4.2 acknowledgment.
        channels: Dict[EdgeKey, Any] = {}
        for edge in afg.edges:
            key = _edge_key(edge)
            src_host = table.get(edge.src).primary_host
            dst_host = table.get(edge.dst).primary_host
            channels[key] = proxies[src_host].open_channel(
                afg.name, key, proxies[dst_host].address, dst_host,
                verify_hashes=self.verify_hashes,
            )
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.CHANNEL_SETUP, source=f"dm:{afg.name}",
                    edge=[edge.src, edge.dst], src_host=src_host,
                    dst_host=dst_host, real=True,
                )

        # "When all the required acknowledgments are received an execution
        # startup signal is sent to start the application execution."
        startup = threading.Event()
        startup_wall = time.monotonic() - setup_started

        records: Dict[str, RealTaskRecord] = {}
        outputs: Dict[str, List[Any]] = {}
        errors: List[BaseException] = []
        lock = threading.Lock()
        #: raised when any task fails: dependents blocked in receive()
        #: unblock within one poll slice instead of the full timeout
        abort = threading.Event()

        def task_body(task_id: str) -> None:
            try:
                node = afg.task(task_id)
                signature = self.registry.get(node.task_type)
                assignment = table.get(task_id)
                host = assignment.primary_host
                record = RealTaskRecord(task_id=task_id, host=host)
                with lock:
                    records[task_id] = record

                startup.wait(self.timeout_s)

                port_values: Dict[int, Any] = {}
                for edge in sorted(afg.in_edges(task_id), key=lambda e: e.dst_port):
                    value = proxies[host].receive(_edge_key(edge), abort=abort)
                    port_values[edge.dst_port] = value
                inputs = [port_values.get(p) for p in range(node.n_in_ports)]

                record.started_at = time.monotonic()
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.TASK_START, source=f"dm:{afg.name}",
                        task=task_id, host=host, real=True,
                    )
                result = signature.run(inputs, node.properties.workload_scale)
                record.finished_at = time.monotonic()
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.TASK_FINISH, source=f"dm:{afg.name}",
                        task=task_id, host=host, real=True,
                        measured_time=record.elapsed,
                    )

                for edge in afg.out_edges(task_id):
                    channels[_edge_key(edge)].send(result[edge.src_port])
                if not afg.out_edges(task_id):
                    with lock:
                        outputs[task_id] = result
            except ProxyAborted:
                # secondary casualty of a sibling's failure: the root
                # cause is already in ``errors``, don't bury it
                return
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                with lock:
                    errors.append(exc)
                abort.set()

        threads = [
            threading.Thread(target=task_body, args=(t,), name=f"task:{t}")
            for t in afg.topological_order()
        ]
        run_started = time.monotonic()
        for thread in threads:
            thread.start()
        startup.set()
        if self.tracer.enabled:
            self.tracer.emit(EventKind.STARTUP_SIGNAL, source=f"dm:{afg.name}",
                             real=True)
        for thread in threads:
            thread.join(self.timeout_s)
            if thread.is_alive():
                errors.append(ProxyError(f"task thread {thread.name} hung"))
        makespan_wall = time.monotonic() - run_started

        for channel in channels.values():
            channel.close()

        if self.metrics.enabled:
            self.metrics.counter(
                "vdce_real_channels_total", "TCP channels opened (real path)"
            ).inc(len(channels))
            self.metrics.counter(
                "vdce_real_payload_bytes_total",
                "pickled payload bytes sent through real sockets",
            ).inc(sum(c.bytes_sent for c in channels.values()))
            runtime_hist = self.metrics.histogram(
                "vdce_real_task_wall_seconds",
                "wall-clock task execution time (real path)",
            )
            for record in records.values():
                if record.finished_at > 0:
                    runtime_hist.observe(record.elapsed, host=record.host)

        if errors:
            raise AggregateExecutionError(errors)

        return RealExecutionReport(
            application=afg.name,
            startup_wall_s=startup_wall,
            makespan_wall_s=makespan_wall,
            records=records,
            outputs=outputs,
            channels=len(channels),
            acks=sum(p.acks_sent for p in proxies.values()),
            payloads=sum(p.payloads_received for p in proxies.values()),
            bytes_sent=sum(c.bytes_sent for c in channels.values()),
        )

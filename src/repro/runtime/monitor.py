"""Monitor daemons — one per VDCE resource (paper §4.1, Fig. 4).

"The Monitor daemon periodically measures the up-to-date resource
parameters, i.e., CPU load and memory availability and sends the values
to the Group Manager."

A monitor is attached to exactly one host; it reads the host's ground
truth (run-queue length, available memory) every ``period_s`` and sends
a measurement message to its Group Manager.  Delivery rides the site
LAN (latency charged); measurements from a down host simply stop, which
is what the Group Manager's echo protocol exists to notice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import repro.perf as perf
from repro.sim.host import Host
from repro.sim.kernel import Process, Simulator, Timeout
from repro.runtime.stats import RuntimeStats
from repro.trace.events import EventKind
from repro.trace.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.group_manager import GroupManager

__all__ = ["MonitorDaemon", "Measurement"]


@dataclass(frozen=True)
class Measurement:
    """One workload report."""

    host: str
    load: float
    available_memory_mb: int
    measured_at: float


class MonitorDaemon:
    """Periodic load/memory reporter for one host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        group_manager: "GroupManager",
        stats: RuntimeStats,
        period_s: float = 2.0,
        lan_latency_s: float = 0.0005,
        tracer: Tracer = NULL_TRACER,
    ):
        if period_s <= 0:
            raise ValueError("monitor period must be positive")
        self.sim = sim
        self.host = host
        self.group_manager = group_manager
        self.stats = stats
        self.period_s = float(period_s)
        self.lan_latency_s = float(lan_latency_s)
        self.tracer = tracer
        self._process: Optional[Process] = None
        self._stopped = False

    def start(self) -> Process:
        if self._process is not None and self._process.alive:
            raise RuntimeError(f"monitor for {self.host.name} already running")
        self._stopped = False
        self._process = self.sim.process(
            self._run(), name=f"monitor:{self.host.name}"
        )
        return self._process

    def stop(self) -> None:
        """Retire this monitor: the loop exits at its next tick.

        Used when the host leaves the federation (graceful drain or
        decommission); no further measurements are taken or sent.
        """
        self._stopped = True

    def measure(self) -> Measurement:
        """Take one measurement of the host's current state."""
        return Measurement(
            host=self.host.name,
            load=self.host.load_average(),
            available_memory_mb=self.host.available_memory_mb(),
            measured_at=self.sim.now,
        )

    def _run(self):
        # Pre-labelled instrument handles, resolved at the *first* report
        # (same instant the reference path would register the families,
        # so snapshots agree) and reused every period thereafter — the
        # batched-bookkeeping flag's answer to three family lookups plus
        # three label-key builds per host per period.
        reports_child = load_child = mem_child = None
        while True:
            if self._stopped:
                return
            if self.host.is_up():
                if not self.group_manager.alive:
                    # the manager stopped answering: this monitor's next
                    # report would vanish anyway, so instead it votes to
                    # promote a deputy (first caller wins the election)
                    self.group_manager.request_failover(self.host)
                    yield Timeout(self.period_s)
                    continue
                measurement = self.measure()
                self.stats.monitor_reports += 1
                metrics = self.sim.metrics
                if metrics.enabled:
                    if perf.FLAGS.batched_bookkeeping:
                        if reports_child is None:
                            reports_child = metrics.counter(
                                "vdce_monitor_reports_by_host_total",
                                "monitor measurements taken, per host",
                            ).child(host=self.host.name)
                            load_child = metrics.series(
                                "vdce_host_load",
                                "run-queue length sampled by the monitor daemon",
                            ).child(host=self.host.name)
                            mem_child = metrics.series(
                                "vdce_host_available_memory_mb",
                                "available memory sampled by the monitor daemon",
                            ).child(host=self.host.name)
                        reports_child.inc()
                        load_child.observe(measurement.load)
                        mem_child.observe(measurement.available_memory_mb)
                    else:
                        metrics.counter(
                            "vdce_monitor_reports_by_host_total",
                            "monitor measurements taken, per host",
                        ).inc(host=measurement.host)
                        metrics.series(
                            "vdce_host_load",
                            "run-queue length sampled by the monitor daemon",
                        ).observe(measurement.load, host=measurement.host)
                        metrics.series(
                            "vdce_host_available_memory_mb",
                            "available memory sampled by the monitor daemon",
                        ).observe(
                            measurement.available_memory_mb, host=measurement.host
                        )
                if self.tracer.enabled:
                    self.tracer.emit(
                        EventKind.MONITOR_REPORT,
                        source=f"monitor:{self.host.name}",
                        host=measurement.host,
                        load=measurement.load,
                        available_memory_mb=measurement.available_memory_mb,
                    )
                # delivery after LAN latency; a monitor on a host that
                # dies in flight still delivers (packet already sent).
                # A degraded host's daemon is itself slowed, so its
                # report leaves late by the same factor.
                self.sim.call_after(
                    self.lan_latency_s * max(1.0, self.host.slowdown),
                    lambda m=measurement: self.group_manager.receive_measurement(m),
                )
            yield Timeout(self.period_s)

"""Typed data-plane errors, shared across layers.

These live at the package root because both the ``net`` layer (which
must not import ``runtime``) and the runtime raise them.  The chaos
harness treats every :class:`DataIntegrityError` subclass as a *typed*
failure: invariant I13 requires that a corrupted or lost artifact is
either repaired or surfaces to its consumers as one of these — never
as a silent wrong answer or an anonymous crash.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = [
    "AggregateExecutionError",
    "CorruptPayloadError",
    "DataIntegrityError",
    "JournalCorruptError",
    "MissingArtifactError",
    "PoisonedArtifactError",
]


class DataIntegrityError(RuntimeError):
    """Base class for every data-plane integrity failure."""


class CorruptPayloadError(DataIntegrityError):
    """A received payload's content hash mismatches the producer's.

    Raised on receive/stage-in, before the bytes reach any task: the
    integrity layer's contract is that a task either consumes bytes
    matching the producer's recorded hash or does not consume at all.
    """

    def __init__(
        self,
        message: str,
        *,
        expected_hash: Optional[str] = None,
        actual_hash: Optional[str] = None,
    ):
        super().__init__(message)
        self.expected_hash = expected_hash
        self.actual_hash = actual_hash


class MissingArtifactError(DataIntegrityError):
    """A staged artifact vanished from the host that held it."""


class PoisonedArtifactError(DataIntegrityError):
    """An artifact exhausted its repair budget and is quarantined.

    After ``max_regenerations`` failed lineage re-executions the
    integrity layer stops looping and fails every consumer with this
    error instead (I13's typed-termination arm).
    """


class JournalCorruptError(DataIntegrityError):
    """A checkpoint journal has a corrupt *interior* record.

    A torn tail (crash mid-append) is recoverable by truncation; a
    CRC-failing record with valid records after it means the file was
    damaged in place, and resuming from the surviving prefix would
    silently forget completed work — so recovery aborts loudly.
    """

    def __init__(self, message: str, *, record_index: Optional[int] = None):
        super().__init__(message)
        self.record_index = record_index


class AggregateExecutionError(RuntimeError):
    """Several task threads failed; carries *all* collected exceptions.

    ``LocalDataManager`` runs one thread per task; when an upstream
    task dies its dependents are aborted and every real (non-abort)
    exception is preserved here, not just whichever thread happened to
    fail first.
    """

    def __init__(self, errors: Sequence[BaseException]):
        self.errors: List[BaseException] = list(errors)
        lines = [f"{len(self.errors)} task(s) failed:"]
        for err in self.errors:
            lines.append(f"  - {type(err).__name__}: {err}")
        super().__init__("\n".join(lines))

"""User-accounts database: authentication for the Application Editor.

Paper §3: "A user-accounts database is used to handle user
authentication.  In [the] user-accounts database, each VDCE user
account is represented by a 5-tuple: user name, password, user ID,
priority, and access domain type."

Passwords are stored salted-and-hashed (the paper predates that being
table stakes; a credible release cannot store plaintext).  Priority
feeds the Site Manager's admission queue; access domain controls which
sites a user's applications may be scheduled onto.
"""

from __future__ import annotations

import enum
import hashlib
import hmac
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "AccessDomain",
    "AuthenticationError",
    "UnknownUserError",
    "UserAccount",
    "UserAccountsDB",
]


class AuthenticationError(RuntimeError):
    """Bad user name or password (message does not say which)."""


class UnknownUserError(KeyError):
    """No account with that user name exists.

    Subclasses :class:`KeyError` so existing ``except KeyError`` sites
    (and tests pinning that contract) keep working, while admission and
    the web editor can map it to a typed rejection instead of crashing.
    """

    def __init__(self, user_name: str):
        super().__init__(f"unknown user {user_name!r}")
        self.user_name = user_name

    def __str__(self) -> str:
        return f"unknown user {self.user_name!r}"


class AccessDomain(enum.Enum):
    """Which resources an account may schedule onto."""

    LOCAL = "local"       # local site only
    CAMPUS = "campus"     # local + nearest-neighbour sites
    GLOBAL = "global"     # any VDCE site


def _hash_password(password: str, salt: bytes) -> bytes:
    return hashlib.pbkdf2_hmac("sha256", password.encode("utf-8"), salt, 10_000)


#: bring-up cache: password -> (salt, hash).  Federation bootstrap
#: creates the same admin account at every site, and PBKDF2 (by design)
#: dominated deployment construction in the benchmarks.  Reusing one
#: salted hash per unique password makes an n-site bring-up pay the key
#: derivation once; verification and authentication are unchanged.
_BRINGUP_HASHES: Dict[str, tuple] = {}


def _salted_hash(password: str) -> tuple:
    cached = _BRINGUP_HASHES.get(password)
    if cached is None:
        salt = os.urandom(16)
        cached = _BRINGUP_HASHES[password] = (salt, _hash_password(password, salt))
    return cached


@dataclass(frozen=True)
class UserAccount:
    """The paper's 5-tuple (password kept only as salt+hash)."""

    user_name: str
    user_id: int
    priority: int
    access_domain: AccessDomain
    salt: bytes = field(repr=False)
    password_hash: bytes = field(repr=False)

    def verify(self, password: str) -> bool:
        return hmac.compare_digest(
            self.password_hash, _hash_password(password, self.salt)
        )


class UserAccountsDB:
    """Per-site account store with deterministic user-id allocation."""

    def __init__(self) -> None:
        self._accounts: Dict[str, UserAccount] = {}
        self._next_uid = 1000

    def add_user(
        self,
        user_name: str,
        password: str,
        priority: int = 1,
        access_domain: AccessDomain = AccessDomain.LOCAL,
        user_id: Optional[int] = None,
    ) -> UserAccount:
        if not user_name:
            raise ValueError("user name must be non-empty")
        if user_name in self._accounts:
            raise ValueError(f"user {user_name!r} already exists")
        if not password:
            raise ValueError("password must be non-empty")
        if priority < 0:
            raise ValueError("priority must be non-negative")
        if user_id is None:
            user_id = self._next_uid
            self._next_uid += 1
        salt, password_hash = _salted_hash(password)
        account = UserAccount(
            user_name=user_name,
            user_id=user_id,
            priority=priority,
            access_domain=access_domain,
            salt=salt,
            password_hash=password_hash,
        )
        self._accounts[user_name] = account
        return account

    def authenticate(self, user_name: str, password: str) -> UserAccount:
        """Return the account or raise :class:`AuthenticationError`."""
        account = self._accounts.get(user_name)
        if account is None or not account.verify(password):
            raise AuthenticationError("invalid user name or password")
        return account

    def get(self, user_name: str) -> UserAccount:
        try:
            return self._accounts[user_name]
        except KeyError:
            raise UnknownUserError(user_name) from None

    def remove(self, user_name: str) -> None:
        if user_name not in self._accounts:
            raise UnknownUserError(user_name)
        del self._accounts[user_name]

    def set_priority(self, user_name: str, priority: int) -> UserAccount:
        if priority < 0:
            raise ValueError("priority must be non-negative")
        old = self.get(user_name)
        updated = UserAccount(
            user_name=old.user_name,
            user_id=old.user_id,
            priority=priority,
            access_domain=old.access_domain,
            salt=old.salt,
            password_hash=old.password_hash,
        )
        self._accounts[user_name] = updated
        return updated

    def __len__(self) -> int:
        return len(self._accounts)

    def __contains__(self, user_name: str) -> bool:
        return user_name in self._accounts

"""Memoized ``Predict(task, R)`` with explicit invalidation.

Host selection evaluates the prediction model for every (task, host)
pair per scheduling round, and the federation runs that round at every
site.  Between monitor reports a host's reported ``load`` and
``available_memory_mb`` are piecewise-constant, and a bag of similar
tasks asks the model the *same question* thousands of times — the
profile shows ``PredictionModel.predict`` as the single hottest frame
on bench_scalability.

:class:`PredictCache` memoizes on the **exact** prediction inputs:

``(model, task_type, scale, n_nodes, host name, reported load,
available memory, memory_mb, extra_load)``

Exact keys, never quantized buckets: a hit returns the float the model
itself computed for identical inputs, so results are bit-identical by
construction and the determinism oracles cannot tell the cache was
there.  The model object participates in the key (it is a frozen,
hashable dataclass), so noise/ablation variants never collide.  A
host's static spec cannot change under a fixed name (re-registration
raises), so the name stands in for the spec.

Invalidation is a version check against
:attr:`~repro.repository.taskperf.TaskPerformanceDB.version`, which the
database bumps on registration *and* on every post-execution
calibration refinement — the only prediction inputs not present in the
key.  Slowdown/quarantine penalties from the straggler defense are
applied by the caller *after* prediction, so health-score updates need
no invalidation here (pinned by the predict-cache tests).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.repository.resources import HostRecord
from repro.repository.taskperf import TaskPerformanceDB

if TYPE_CHECKING:  # pragma: no cover - avoid repository -> scheduler cycle
    from repro.scheduler.prediction import PredictionModel

__all__ = ["PredictCache"]


class PredictCache:
    """Exact-key memo over ``PredictionModel.predict``.

    The memo is two-level: an outer table per *model value* (frozen
    dataclass equality), an inner table on the primitive inputs.  The
    outer lookup is short-circuited by an ``is`` check on the last
    model seen — schedulers pass the same model object for thousands of
    consecutive predictions, and hashing a five-field dataclass twice
    per lookup was itself a hot frame in the profile.
    """

    def __init__(self, task_perf: TaskPerformanceDB):
        self._task_perf = task_perf
        self._version = -1
        #: model -> inner memo table (exact model equality)
        self._tables: Dict["PredictionModel", Dict[Tuple, float]] = {}
        self._model: Optional["PredictionModel"] = None
        self._table: Dict[Tuple, float] = {}
        self.hits = 0
        self.misses = 0

    def table(
        self,
        model: "PredictionModel",
        task_type: str,
        scale: float,
        n_nodes: int,
        memory_mb: Optional[int],
    ) -> Dict[Tuple, float]:
        """The memo table for one prediction context, version-checked.

        A *context* is everything constant across one bid's candidate
        scan (model, task type, scale, node count, memory requirement);
        the returned dict maps the per-host remainder of the exact key
        — ``(host name, reported load, available memory, extra_load)``
        — to the model's float.  Callers on the hot path look up and
        fill this dict inline, paying the context hash once per bid
        instead of once per candidate.
        """
        if self._task_perf.version != self._version:
            self._tables.clear()
            self._model = None
            self._version = self._task_perf.version
        if model is self._model:
            outer = self._table
        else:
            outer = self._tables.get(model)
            if outer is None:
                outer = self._tables[model] = {}
            self._model = model
            self._table = outer
        ctx = (task_type, scale, n_nodes, memory_mb)
        inner = outer.get(ctx)
        if inner is None:
            inner = outer[ctx] = {}
        return inner

    def predict(
        self,
        model: "PredictionModel",
        task_type: str,
        scale: float,
        n_nodes: int,
        host: HostRecord,
        memory_mb: Optional[int],
        extra_load: float,
    ) -> float:
        table = self.table(model, task_type, scale, n_nodes, memory_mb)
        key = (host.spec.name, host.load, host.available_memory_mb, extra_load)
        value = table.get(key)
        if value is not None:
            self.hits += 1
            return value
        value = model.predict(
            task_type,
            scale,
            n_nodes,
            host,
            self._task_perf,
            memory_mb=memory_mb,
            extra_load=extra_load,
        )
        table[key] = value
        self.misses += 1
        return value

    def clear(self) -> None:
        self._tables.clear()
        self._model = None
        self._version = -1

    def __len__(self) -> int:
        return sum(
            len(inner)
            for outer in self._tables.values()
            for inner in outer.values()
        )

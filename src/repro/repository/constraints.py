"""Task-constraints database: where each task's executable lives.

Paper §3: "A task constraints database is used to store the location
information of each task (i.e., the absolute path of the task
executable) for each host."

The host-selection algorithm may only place a task on hosts that have
an executable registered; this is how heterogeneous sites (different
arch/OS per host) constrain placement.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.repository.resources import RegistrationSyncError

__all__ = ["TaskConstraintsDB"]


class TaskConstraintsDB:
    """(task_type, host) -> absolute executable path."""

    def __init__(self, site_name: str):
        self.site_name = site_name
        self._paths: Dict[Tuple[str, str], str] = {}
        self._hosts_by_task: Dict[str, List[str]] = {}
        #: bumped on any registration change (the host index watches it)
        self.version = 0
        #: optional guard wired by the site repository: called with a
        #: host name, True means the host is still *actively* registered
        #: in the resource DB (removing its constraints then would leave
        #: the two databases silently diverged)
        self._registration_check: Optional[Callable[[str], bool]] = None

    def register(self, task_type: str, host: str, path: str) -> None:
        if not path.startswith("/"):
            raise ValueError(
                f"executable path must be absolute, got {path!r}"
            )
        key = (task_type, host)
        if key in self._paths:
            raise ValueError(
                f"executable for {task_type!r} on {host!r} already registered"
            )
        self._paths[key] = path
        self._hosts_by_task.setdefault(task_type, []).append(host)
        self.version += 1

    def install_everywhere(
        self, task_types: Iterable[str], hosts: Iterable[str],
        prefix: str = "/usr/local/vdce/tasks",
    ) -> int:
        """Bring-up helper: register every task on every host.

        Returns the number of (task, host) pairs added.  Pairs already
        registered are skipped so per-host overrides survive.
        """
        count = 0
        host_list = list(hosts)
        for task_type in task_types:
            for host in host_list:
                if (task_type, host) in self._paths:
                    continue
                self.register(task_type, host, f"{prefix}/{task_type}/bin")
                count += 1
        return count

    def executable_path(self, task_type: str, host: str) -> str:
        try:
            return self._paths[(task_type, host)]
        except KeyError:
            raise KeyError(
                f"no executable for {task_type!r} on host {host!r} "
                f"(site {self.site_name!r})"
            ) from None

    def is_runnable(self, task_type: str, host: str) -> bool:
        return (task_type, host) in self._paths

    def hosts_supporting(self, task_type: str) -> List[str]:
        return list(self._hosts_by_task.get(task_type, []))

    def remove_host(self, host: str, deregistering: bool = False) -> int:
        """Drop all registrations for a decommissioned host.

        Raises :class:`~repro.repository.resources.RegistrationSyncError`
        when the host is still actively registered in the resource DB
        (per the wired registration check) — except with
        ``deregistering=True``, the flag the site repository's symmetric
        ``deregister_host`` sets while it removes both sides atomically.
        """
        if (
            not deregistering
            and self._registration_check is not None
            and self._registration_check(host)
        ):
            raise RegistrationSyncError(
                f"cannot remove constraints for {host!r}: it is still "
                f"actively registered in the resource DB of site "
                f"{self.site_name!r}"
            )
        doomed = [key for key in self._paths if key[1] == host]
        for key in doomed:
            del self._paths[key]
            self._hosts_by_task[key[0]].remove(host)
        if doomed:
            self.version += 1
        return len(doomed)

    def references_host(self, host: str) -> bool:
        """True when any (task, host) registration names ``host``."""
        return any(key[1] == host for key in self._paths)

    def set_registration_check(self, check: Callable[[str], bool]) -> None:
        self._registration_check = check

    def __len__(self) -> int:
        return len(self._paths)

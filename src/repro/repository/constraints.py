"""Task-constraints database: where each task's executable lives.

Paper §3: "A task constraints database is used to store the location
information of each task (i.e., the absolute path of the task
executable) for each host."

The host-selection algorithm may only place a task on hosts that have
an executable registered; this is how heterogeneous sites (different
arch/OS per host) constrain placement.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

__all__ = ["TaskConstraintsDB"]


class TaskConstraintsDB:
    """(task_type, host) -> absolute executable path."""

    def __init__(self, site_name: str):
        self.site_name = site_name
        self._paths: Dict[Tuple[str, str], str] = {}
        self._hosts_by_task: Dict[str, List[str]] = {}
        #: bumped on any registration change (the host index watches it)
        self.version = 0

    def register(self, task_type: str, host: str, path: str) -> None:
        if not path.startswith("/"):
            raise ValueError(
                f"executable path must be absolute, got {path!r}"
            )
        key = (task_type, host)
        if key in self._paths:
            raise ValueError(
                f"executable for {task_type!r} on {host!r} already registered"
            )
        self._paths[key] = path
        self._hosts_by_task.setdefault(task_type, []).append(host)
        self.version += 1

    def install_everywhere(
        self, task_types: Iterable[str], hosts: Iterable[str],
        prefix: str = "/usr/local/vdce/tasks",
    ) -> int:
        """Bring-up helper: register every task on every host.

        Returns the number of (task, host) pairs added.  Pairs already
        registered are skipped so per-host overrides survive.
        """
        count = 0
        host_list = list(hosts)
        for task_type in task_types:
            for host in host_list:
                if (task_type, host) in self._paths:
                    continue
                self.register(task_type, host, f"{prefix}/{task_type}/bin")
                count += 1
        return count

    def executable_path(self, task_type: str, host: str) -> str:
        try:
            return self._paths[(task_type, host)]
        except KeyError:
            raise KeyError(
                f"no executable for {task_type!r} on host {host!r} "
                f"(site {self.site_name!r})"
            ) from None

    def is_runnable(self, task_type: str, host: str) -> bool:
        return (task_type, host) in self._paths

    def hosts_supporting(self, task_type: str) -> List[str]:
        return list(self._hosts_by_task.get(task_type, []))

    def remove_host(self, host: str) -> int:
        """Drop all registrations for a decommissioned host."""
        doomed = [key for key in self._paths if key[1] == host]
        for key in doomed:
            del self._paths[key]
            self._hosts_by_task[key[0]].remove(host)
        if doomed:
            self.version += 1
        return len(doomed)

    def __len__(self) -> int:
        return len(self._paths)

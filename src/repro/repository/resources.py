"""Resource-performance database: host attributes + live workload view.

Paper §3: "A resource performance database provides resource (machine
and network) attributes or parameters such as host name, IP address,
architecture type, OS type, total memory size of the machine, recent
workload measurements, and available memory size."

Crucially this database holds the *scheduler's belief*, not ground
truth: entries are only as fresh as the last Monitor -> Group Manager
-> Site Manager update (paper §4.1), and experiment E5 measures exactly
that staleness.  ``mark_down`` realises "the host is then marked as
'down' at the site's resource-performance database".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.sim.host import HostSpec
from repro.sim.network import LinkSpec

__all__ = ["HostRecord", "ResourcePerformanceDB"]


@dataclass(frozen=True)
class HostRecord:
    """One host's row: static spec + last-reported dynamic state."""

    spec: HostSpec
    site: str
    group: str = ""
    up: bool = True
    #: last reported run-queue length (recent workload measurement)
    load: float = 0.0
    available_memory_mb: int = 0
    #: virtual time of the last workload update (-inf = never reported)
    updated_at: float = float("-inf")

    @property
    def name(self) -> str:
        return self.spec.name


class ResourcePerformanceDB:
    """Host rows plus the network attributes of the site's links."""

    def __init__(self, site_name: str):
        self.site_name = site_name
        self._hosts: Dict[str, HostRecord] = {}
        #: network attributes: link name -> spec (LAN + WANs to neighbours)
        self._links: Dict[str, LinkSpec] = {}
        self.workload_updates = 0
        self.status_updates = 0
        #: bumped when the host *population* changes (registrations);
        #: the host index's name tables only rebuild on this counter
        self.registration_version = 0
        #: bumped on every dynamic write (workload report, up/down
        #: transition) — keys the host index's record-list cache, which
        #: is valid precisely while no host row changed
        self.state_version = 0

    # -- host registration --------------------------------------------------

    def register_host(self, spec: HostSpec, group: str = "") -> HostRecord:
        if spec.name in self._hosts:
            raise ValueError(f"host {spec.name!r} already registered")
        record = HostRecord(
            spec=spec,
            site=self.site_name,
            group=group,
            available_memory_mb=spec.memory_mb,
        )
        self._hosts[spec.name] = record
        self.registration_version += 1
        return record

    def has_host(self, name: str) -> bool:
        return name in self._hosts

    def get(self, name: str) -> HostRecord:
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(
                f"host {name!r} not in resource DB of site {self.site_name!r}"
            ) from None

    # -- dynamic updates (written by the Site Manager) -----------------------

    def update_workload(
        self, name: str, load: float, available_memory_mb: int, time: float
    ) -> HostRecord:
        if load < 0:
            raise ValueError(f"negative load for {name!r}")
        if available_memory_mb < 0:
            raise ValueError(f"negative available memory for {name!r}")
        record = replace(
            self.get(name),
            load=load,
            available_memory_mb=available_memory_mb,
            updated_at=time,
        )
        self._hosts[name] = record
        self.workload_updates += 1
        self.state_version += 1
        return record

    def mark_down(self, name: str, time: float) -> HostRecord:
        record = replace(self.get(name), up=False, updated_at=time)
        self._hosts[name] = record
        self.status_updates += 1
        self.state_version += 1
        return record

    def mark_up(self, name: str, time: float) -> HostRecord:
        record = replace(self.get(name), up=True, updated_at=time)
        self._hosts[name] = record
        self.status_updates += 1
        self.state_version += 1
        return record

    # -- queries (read by the scheduler) ---------------------------------------

    def all_hosts(self) -> List[HostRecord]:
        return list(self._hosts.values())

    def up_hosts(self) -> List[HostRecord]:
        return [r for r in self._hosts.values() if r.up]

    def host_names(self) -> List[str]:
        return list(self._hosts)

    def staleness(self, name: str, now: float) -> float:
        """Age of the last workload report for ``name`` at time ``now``."""
        return now - self.get(name).updated_at

    # -- network attributes ------------------------------------------------------

    def set_link(self, name: str, spec: LinkSpec) -> None:
        self._links[name] = spec

    def get_link(self, name: str) -> LinkSpec:
        try:
            return self._links[name]
        except KeyError:
            raise KeyError(f"unknown link {name!r}") from None

    def links(self) -> Dict[str, LinkSpec]:
        return dict(self._links)

    def __len__(self) -> int:
        return len(self._hosts)

"""Resource-performance database: host attributes + live workload view.

Paper §3: "A resource performance database provides resource (machine
and network) attributes or parameters such as host name, IP address,
architecture type, OS type, total memory size of the machine, recent
workload measurements, and available memory size."

Crucially this database holds the *scheduler's belief*, not ground
truth: entries are only as fresh as the last Monitor -> Group Manager
-> Site Manager update (paper §4.1), and experiment E5 measures exactly
that staleness.  ``mark_down`` realises "the host is then marked as
'down' at the site's resource-performance database".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.sim.host import HostSpec
from repro.sim.network import LinkSpec

__all__ = [
    "HostRecord",
    "MembershipError",
    "MembershipState",
    "RegistrationSyncError",
    "ResourcePerformanceDB",
]


class MembershipState:
    """Per-host membership states (elastic federation roster).

    The legal transitions form a small epoch-stamped state machine::

        JOINING ----> ACTIVE ----> DRAINING ----> DEPARTED
                        ^                            |
                        |                            v
                        +------- REJOINING <---------+  (epoch + 1)

    ``DEPARTED`` is a tombstone: the row is deregistered but the host's
    last epoch is remembered, so a later rejoin under the same name gets
    a *higher* epoch and any placement stamped with the old epoch is
    recognisably stale.  Hard decommission skips DRAINING (ACTIVE ->
    DEPARTED directly).
    """

    JOINING = "joining"
    ACTIVE = "active"
    DRAINING = "draining"
    DEPARTED = "departed"
    REJOINING = "rejoining"

    #: states in which the row exists in the database
    LIVE = frozenset({JOINING, ACTIVE, DRAINING, REJOINING})


class MembershipError(RuntimeError):
    """An illegal membership operation (bad transition, unknown host)."""


class RegistrationSyncError(MembershipError):
    """Constraint and resource registrations would silently diverge.

    Raised when one side of a host's registration (executable
    constraints vs resource row) is removed while the other still
    actively references the host — the typed alternative to the silent
    divergence that used to be possible (issue 10, satellite 1).
    """


@dataclass(frozen=True)
class HostRecord:
    """One host's row: static spec + last-reported dynamic state."""

    spec: HostSpec
    site: str
    group: str = ""
    up: bool = True
    #: last reported run-queue length (recent workload measurement)
    load: float = 0.0
    available_memory_mb: int = 0
    #: virtual time of the last workload update (-inf = never reported)
    updated_at: float = float("-inf")
    #: membership state (see :class:`MembershipState`); only ACTIVE
    #: hosts are ever scored by host selection
    state: str = MembershipState.ACTIVE
    #: membership epoch: 0 on first registration, +1 per rejoin — a
    #: placement stamped with an older epoch is stale by definition
    epoch: int = 0

    @property
    def name(self) -> str:
        return self.spec.name


class ResourcePerformanceDB:
    """Host rows plus the network attributes of the site's links."""

    def __init__(self, site_name: str):
        self.site_name = site_name
        self._hosts: Dict[str, HostRecord] = {}
        #: network attributes: link name -> spec (LAN + WANs to neighbours)
        self._links: Dict[str, LinkSpec] = {}
        self.workload_updates = 0
        self.status_updates = 0
        #: bumped when the host *population* changes (registrations);
        #: the host index's name tables only rebuild on this counter
        self.registration_version = 0
        #: bumped on every dynamic write (workload report, up/down
        #: transition) — keys the host index's record-list cache, which
        #: is valid precisely while no host row changed
        self.state_version = 0
        #: tombstones: departed host name -> its epoch at departure,
        #: consulted by :meth:`rejoin_host` to stamp the next epoch
        self._departed: Dict[str, int] = {}
        #: optional guard wired by :class:`~repro.repository.store.SiteRepository`:
        #: called with a host name, True means executable constraints
        #: still reference it (deregistering then would diverge)
        self._constraint_check: Optional[Callable[[str], bool]] = None
        #: observers notified as ``fn(host_name, new_state)`` after every
        #: membership transition — the site repository hangs cache
        #: invalidation (predict cache) off this
        self._membership_listeners: List[Callable[[str, str], None]] = []

    # -- host registration --------------------------------------------------

    def register_host(
        self,
        spec: HostSpec,
        group: str = "",
        state: str = MembershipState.ACTIVE,
        epoch: int = 0,
    ) -> HostRecord:
        if spec.name in self._hosts:
            raise ValueError(f"host {spec.name!r} already registered")
        if spec.name in self._departed:
            raise MembershipError(
                f"host {spec.name!r} departed this site (epoch "
                f"{self._departed[spec.name]}); use rejoin_host"
            )
        if state not in MembershipState.LIVE:
            raise MembershipError(
                f"cannot register {spec.name!r} in state {state!r}"
            )
        record = HostRecord(
            spec=spec,
            site=self.site_name,
            group=group,
            available_memory_mb=spec.memory_mb,
            state=state,
            epoch=epoch,
        )
        self._hosts[spec.name] = record
        self.registration_version += 1
        self._notify_membership(spec.name, state)
        return record

    def deregister_host(self, name: str) -> HostRecord:
        """Remove a host's row (symmetric to :meth:`register_host`).

        The departed host leaves a tombstone carrying its epoch.  Raises
        :class:`RegistrationSyncError` if executable constraints still
        reference the host — remove those first (the site repository's
        ``deregister_host`` does both sides in one step).
        """
        record = self.get(name)
        if self._constraint_check is not None and self._constraint_check(name):
            raise RegistrationSyncError(
                f"cannot deregister {name!r}: executable constraints still "
                f"reference it"
            )
        del self._hosts[name]
        self._departed[name] = record.epoch
        self.registration_version += 1
        self._notify_membership(name, MembershipState.DEPARTED)
        return record

    def rejoin_host(
        self, spec: HostSpec, group: str = "", time: float = float("-inf")
    ) -> HostRecord:
        """Re-register a previously departed host under a fresh epoch.

        Stale-record reconciliation: the dynamic state the old row
        carried (load, available memory, up/down) is *discarded* — the
        new row starts unreported, exactly like a fresh registration —
        while calibration held elsewhere (the task-performance database)
        is deliberately untouched and carries over.  The epoch is the
        departed epoch + 1, so anything stamped with the old epoch is
        recognisably stale.
        """
        if spec.name in self._hosts:
            raise MembershipError(f"host {spec.name!r} is already registered")
        if spec.name not in self._departed:
            raise MembershipError(
                f"host {spec.name!r} never departed; use register_host"
            )
        epoch = self._departed.pop(spec.name) + 1
        record = HostRecord(
            spec=spec,
            site=self.site_name,
            group=group,
            available_memory_mb=spec.memory_mb,
            state=MembershipState.REJOINING,
            epoch=epoch,
        )
        self._hosts[spec.name] = record
        self.registration_version += 1
        self._notify_membership(spec.name, MembershipState.REJOINING)
        return record

    # -- membership transitions ----------------------------------------------

    def begin_draining(self, name: str, time: float) -> HostRecord:
        """ACTIVE -> DRAINING: stop scoring the host, keep it running."""
        return self._transition(
            name, MembershipState.DRAINING, time, {MembershipState.ACTIVE}
        )

    def activate_host(self, name: str, time: float) -> HostRecord:
        """JOINING/REJOINING -> ACTIVE: the host becomes schedulable."""
        return self._transition(
            name,
            MembershipState.ACTIVE,
            time,
            {MembershipState.JOINING, MembershipState.REJOINING},
        )

    def _transition(
        self, name: str, state: str, time: float, allowed_from: frozenset
    ) -> HostRecord:
        record = self.get(name)
        if record.state not in allowed_from:
            raise MembershipError(
                f"host {name!r}: illegal transition {record.state!r} -> "
                f"{state!r}"
            )
        record = replace(record, state=state, updated_at=time)
        self._hosts[name] = record
        self.state_version += 1
        self._notify_membership(name, state)
        return record

    def membership_state(self, name: str) -> str:
        """The host's state; DEPARTED for tombstoned names."""
        if name in self._hosts:
            return self._hosts[name].state
        if name in self._departed:
            return MembershipState.DEPARTED
        raise MembershipError(
            f"host {name!r} was never a member of site {self.site_name!r}"
        )

    def membership_epoch(self, name: str) -> int:
        if name in self._hosts:
            return self._hosts[name].epoch
        if name in self._departed:
            return self._departed[name]
        raise MembershipError(
            f"host {name!r} was never a member of site {self.site_name!r}"
        )

    def departed_hosts(self) -> Dict[str, int]:
        """Tombstones: departed host name -> epoch at departure."""
        return dict(self._departed)

    def restore_departed(self, name: str, epoch: int) -> None:
        """Persistence hook: re-seed a departure tombstone on load."""
        if name in self._hosts:
            raise MembershipError(
                f"host {name!r} is registered; cannot tombstone it"
            )
        self._departed[name] = epoch

    def set_constraint_check(self, check: Callable[[str], bool]) -> None:
        self._constraint_check = check

    def add_membership_listener(self, fn: Callable[[str, str], None]) -> None:
        self._membership_listeners.append(fn)

    def _notify_membership(self, name: str, state: str) -> None:
        for fn in self._membership_listeners:
            fn(name, state)

    def has_host(self, name: str) -> bool:
        return name in self._hosts

    def get(self, name: str) -> HostRecord:
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(
                f"host {name!r} not in resource DB of site {self.site_name!r}"
            ) from None

    # -- dynamic updates (written by the Site Manager) -----------------------

    def update_workload(
        self, name: str, load: float, available_memory_mb: int, time: float
    ) -> HostRecord:
        if load < 0:
            raise ValueError(f"negative load for {name!r}")
        if available_memory_mb < 0:
            raise ValueError(f"negative available memory for {name!r}")
        record = replace(
            self.get(name),
            load=load,
            available_memory_mb=available_memory_mb,
            updated_at=time,
        )
        self._hosts[name] = record
        self.workload_updates += 1
        self.state_version += 1
        return record

    def mark_down(self, name: str, time: float) -> HostRecord:
        record = replace(self.get(name), up=False, updated_at=time)
        self._hosts[name] = record
        self.status_updates += 1
        self.state_version += 1
        return record

    def mark_up(self, name: str, time: float) -> HostRecord:
        record = replace(self.get(name), up=True, updated_at=time)
        self._hosts[name] = record
        self.status_updates += 1
        self.state_version += 1
        return record

    # -- queries (read by the scheduler) ---------------------------------------

    def all_hosts(self) -> List[HostRecord]:
        return list(self._hosts.values())

    def up_hosts(self) -> List[HostRecord]:
        return [r for r in self._hosts.values() if r.up]

    def host_names(self) -> List[str]:
        return list(self._hosts)

    def staleness(self, name: str, now: float) -> float:
        """Age of the last workload report for ``name`` at time ``now``."""
        return now - self.get(name).updated_at

    # -- network attributes ------------------------------------------------------

    def set_link(self, name: str, spec: LinkSpec) -> None:
        self._links[name] = spec

    def get_link(self, name: str) -> LinkSpec:
        try:
            return self._links[name]
        except KeyError:
            raise KeyError(f"unknown link {name!r}") from None

    def links(self) -> Dict[str, LinkSpec]:
        return dict(self._links)

    def __len__(self) -> int:
        return len(self._hosts)

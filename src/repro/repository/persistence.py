"""Site-repository persistence: snapshot/restore the four databases.

A real VDCE server survives restarts; its repository is durable state.
This module serialises a :class:`~repro.repository.store.SiteRepository`
to a JSON-safe dict (and back), covering all four databases:

* user accounts (salt + PBKDF2 hash, base64 — never plaintext);
* resource-performance rows (static spec + last dynamic state);
* task-performance records and learned (task, host) calibrations;
* task-constraints executable paths.

Round-trip fidelity is exact: ``restore(snapshot(repo))`` reproduces
every row, and restored repositories authenticate the same passwords.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Dict

from repro.repository.store import SiteRepository
from repro.repository.users import AccessDomain, UserAccount
from repro.repository.resources import HostRecord, MembershipState
from repro.repository.taskperf import TaskPerfRecord
from repro.sim.host import HostSpec
from repro.tasklib.base import ParallelModel

__all__ = ["restore_repository", "snapshot_repository",
           "load_repository", "save_repository"]

_FORMAT = 1


def snapshot_repository(repo: SiteRepository) -> Dict[str, Any]:
    """Serialise all four databases to a JSON-safe dict."""
    users = []
    for name in sorted(repo.users._accounts):  # noqa: SLF001 - owning module
        account = repo.users._accounts[name]
        users.append(
            {
                "user_name": account.user_name,
                "user_id": account.user_id,
                "priority": account.priority,
                "access_domain": account.access_domain.value,
                "salt": base64.b64encode(account.salt).decode("ascii"),
                "password_hash": base64.b64encode(
                    account.password_hash
                ).decode("ascii"),
            }
        )

    hosts = []
    for record in repo.resources.all_hosts():
        row = {
            "spec": {
                "name": record.spec.name,
                "speed": record.spec.speed,
                "memory_mb": record.spec.memory_mb,
                "arch": record.spec.arch,
                "os": record.spec.os,
                "ip": record.spec.ip,
                "thrash_factor": record.spec.thrash_factor,
            },
            "group": record.group,
            "up": record.up,
            "load": record.load,
            "available_memory_mb": record.available_memory_mb,
            "updated_at": record.updated_at
            if record.updated_at != float("-inf")
            else None,
        }
        # Membership keys are emitted only when non-default so
        # pre-membership snapshots and fault-free snapshots are
        # byte-identical to what format 1 always produced.
        if record.state != MembershipState.ACTIVE:
            row["state"] = record.state
        if record.epoch != 0:
            row["epoch"] = record.epoch
        hosts.append(row)

    tasks = []
    for task_type in repo.task_perf.task_types():
        record = repo.task_perf.get(task_type)
        tasks.append(
            {
                "task_type": record.task_type,
                "computation_size": record.computation_size,
                "communication_size_mb": record.communication_size_mb,
                "required_memory_mb": record.required_memory_mb,
                "parallel_overhead": (
                    record.parallel.overhead if record.parallel else None
                ),
            }
        )
    calibrations = [
        {"task_type": t, "host": h, "ratio": ratio}
        for (t, h), ratio in sorted(
            repo.task_perf._host_ratio.items()  # noqa: SLF001
        )
    ]

    constraints = [
        {"task_type": t, "host": h, "path": path}
        for (t, h), path in sorted(repo.constraints._paths.items())  # noqa: SLF001
    ]

    snapshot = {
        "format": _FORMAT,
        "site_name": repo.site_name,
        "users": users,
        "hosts": hosts,
        "tasks": tasks,
        "calibrations": calibrations,
        "constraints": constraints,
    }
    departed = repo.resources.departed_hosts()
    if departed:
        # Tombstones carry the epoch a rejoin must exceed; omitted when
        # empty so pre-membership snapshots are unchanged.
        snapshot["departed"] = {
            name: departed[name] for name in sorted(departed)
        }
    return snapshot


def restore_repository(data: Dict[str, Any]) -> SiteRepository:
    """Rebuild a repository from a snapshot dict."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"unsupported snapshot format {data.get('format')!r}")
    repo = SiteRepository(data["site_name"])

    for u in data["users"]:
        account = UserAccount(
            user_name=u["user_name"],
            user_id=u["user_id"],
            priority=u["priority"],
            access_domain=AccessDomain(u["access_domain"]),
            salt=base64.b64decode(u["salt"]),
            password_hash=base64.b64decode(u["password_hash"]),
        )
        repo.users._accounts[account.user_name] = account  # noqa: SLF001
        repo.users._next_uid = max(  # noqa: SLF001
            repo.users._next_uid, account.user_id + 1  # noqa: SLF001
        )

    for h in data["hosts"]:
        spec = HostSpec(**h["spec"])
        repo.resources.register_host(
            spec,
            group=h["group"],
            state=h.get("state", MembershipState.ACTIVE),
            epoch=h.get("epoch", 0),
        )
        updated_at = h["updated_at"]
        if updated_at is not None:
            repo.resources.update_workload(
                spec.name, load=h["load"],
                available_memory_mb=h["available_memory_mb"],
                time=updated_at,
            )
        if not h["up"]:
            repo.resources.mark_down(
                spec.name,
                time=updated_at if updated_at is not None else 0.0,
            )
    for name, epoch in data.get("departed", {}).items():
        repo.resources.restore_departed(name, epoch)

    for t in data["tasks"]:
        repo.task_perf.register(
            TaskPerfRecord(
                task_type=t["task_type"],
                computation_size=t["computation_size"],
                communication_size_mb=t["communication_size_mb"],
                required_memory_mb=t["required_memory_mb"],
                parallel=(
                    ParallelModel(overhead=t["parallel_overhead"])
                    if t["parallel_overhead"] is not None
                    else None
                ),
            )
        )
    for c in data["calibrations"]:
        repo.task_perf._host_ratio[(c["task_type"], c["host"])] = c["ratio"]  # noqa: SLF001

    for c in data["constraints"]:
        repo.constraints.register(c["task_type"], c["host"], c["path"])

    return repo


def save_repository(repo: SiteRepository, path: str) -> None:
    """Write a snapshot to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot_repository(repo), fh, indent=1, sort_keys=True)


def load_repository(path: str) -> SiteRepository:
    """Read a snapshot back from a JSON file."""
    with open(path, encoding="utf-8") as fh:
        return restore_repository(json.load(fh))

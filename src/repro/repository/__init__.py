"""Site repositories — the four per-site databases of paper §3.

"Each site has a site repository for storing user-accounts information,
task and resource parameters that are used by the scheduler."  The four
databases are:

* :class:`~repro.repository.users.UserAccountsDB` — authentication
  (5-tuple: user name, password, user ID, priority, access domain);
* :class:`~repro.repository.resources.ResourcePerformanceDB` — host and
  network attributes plus recent workload measurements and up/down
  status (maintained by the Resource Controller);
* :class:`~repro.repository.taskperf.TaskPerformanceDB` — per-task
  performance characteristics used by prediction, refined with measured
  execution times after each run;
* :class:`~repro.repository.constraints.TaskConstraintsDB` — where each
  task's executable lives on each host.

:class:`~repro.repository.store.SiteRepository` bundles the four.
"""

from repro.repository.users import (
    AccessDomain,
    AuthenticationError,
    UnknownUserError,
    UserAccount,
    UserAccountsDB,
)
from repro.repository.resources import HostRecord, ResourcePerformanceDB
from repro.repository.taskperf import TaskPerfRecord, TaskPerformanceDB
from repro.repository.constraints import TaskConstraintsDB
from repro.repository.store import SiteRepository
from repro.repository.persistence import (
    load_repository,
    restore_repository,
    save_repository,
    snapshot_repository,
)

__all__ = [
    "AccessDomain",
    "AuthenticationError",
    "HostRecord",
    "ResourcePerformanceDB",
    "SiteRepository",
    "TaskConstraintsDB",
    "TaskPerfRecord",
    "TaskPerformanceDB",
    "UnknownUserError",
    "UserAccount",
    "UserAccountsDB",
    "load_repository",
    "restore_repository",
    "save_repository",
    "snapshot_repository",
]

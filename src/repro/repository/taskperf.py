"""Task-performance database: the prediction model's inputs.

Paper §3: "A task performance database provides performance
characteristics for each task in the system and is used to predict the
performance of a task on a given resource.  Each task implementation is
specified by several parameters such as computation size, communication
size, required memory size, etc."

Paper §4.1: the Site Manager "updates the task-performance database
with the execution time after an application execution is completed" —
implemented here as an exponentially weighted moving average over
normalised measurements, so predictions improve as the site runs more
applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.tasklib.base import ParallelModel, TaskSignature
from repro.tasklib.registry import TaskRegistry

__all__ = ["TaskPerfRecord", "TaskPerformanceDB"]


@dataclass(frozen=True)
class TaskPerfRecord:
    """Per-task-type parameters (the paper's "several parameters")."""

    task_type: str
    #: measured execution time on the base processor at scale 1.0
    computation_size: float
    #: output volume per port at scale 1.0 (MB)
    communication_size_mb: float
    #: resident memory requirement at scale 1.0 (MB)
    required_memory_mb: int
    parallel: Optional[ParallelModel] = None

    @property
    def parallelizable(self) -> bool:
        return self.parallel is not None


class TaskPerformanceDB:
    """Task parameters + per-(task, host) measured-time refinement."""

    #: EWMA weight for new measurements
    ALPHA = 0.3

    def __init__(self, site_name: str):
        self.site_name = site_name
        self._records: Dict[str, TaskPerfRecord] = {}
        #: (task_type, host) -> EWMA of measured/expected ratio
        self._host_ratio: Dict[Tuple[str, str], float] = {}
        self.measurements_recorded = 0
        #: bumped whenever a prediction input changes (registration or
        #: calibration refinement) — the Predict cache's invalidator
        self.version = 0

    # -- population --------------------------------------------------------

    def register(self, record: TaskPerfRecord) -> TaskPerfRecord:
        if record.task_type in self._records:
            raise ValueError(f"task {record.task_type!r} already registered")
        if record.computation_size < 0:
            raise ValueError(f"task {record.task_type!r}: negative computation size")
        self._records[record.task_type] = record
        self.version += 1
        return record

    def load_from_registry(self, registry: TaskRegistry) -> int:
        """Seed the database from library signatures (site bring-up)."""
        count = 0
        for name in registry.names():
            if name in self._records:
                continue
            sig = registry.get(name)
            self.register(
                TaskPerfRecord(
                    task_type=sig.qualified_name,
                    computation_size=sig.base_comp_size,
                    communication_size_mb=sig.comm_size_mb,
                    required_memory_mb=sig.base_memory_mb,
                    parallel=sig.parallel,
                )
            )
            count += 1
        return count

    # -- queries ----------------------------------------------------------------

    def has(self, task_type: str) -> bool:
        return task_type in self._records

    def get(self, task_type: str) -> TaskPerfRecord:
        try:
            return self._records[task_type]
        except KeyError:
            raise KeyError(
                f"task {task_type!r} not in task-performance DB of "
                f"{self.site_name!r}"
            ) from None

    def base_cost(self, task_type: str, scale: float = 1.0) -> float:
        """Computation cost on the base processor — the level metric input."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return self.get(task_type).computation_size * scale

    def host_calibration(self, task_type: str, host: str) -> float:
        """Learned measured/expected ratio for this (task, host); 1.0 if unseen."""
        return self._host_ratio.get((task_type, host), 1.0)

    def task_types(self) -> List[str]:
        return sorted(self._records)

    # -- refinement (Site Manager, after application completion) -----------------

    def record_execution(
        self,
        task_type: str,
        host: str,
        expected_s: float,
        measured_s: float,
    ) -> float:
        """Fold one measured execution time into the (task, host) calibration.

        ``expected_s`` is what prediction said *including the current
        calibration*; ``measured_s`` what the runtime observed.  The
        EWMA therefore updates on the implied **raw** ratio
        ``(measured / expected) x current_calibration`` — updating on
        the calibrated ratio directly would drag a correct calibration
        back toward 1.0 on every accurate run.  Returns the updated
        calibration ratio.
        """
        if expected_s <= 0 or measured_s < 0:
            raise ValueError("expected must be positive, measured non-negative")
        self.get(task_type)  # validate task exists
        key = (task_type, host)
        old = self._host_ratio.get(key)
        current = 1.0 if old is None else old
        raw_ratio = (measured_s / expected_s) * current
        new = raw_ratio if old is None else (
            (1 - self.ALPHA) * old + self.ALPHA * raw_ratio
        )
        self._host_ratio[key] = new
        self.measurements_recorded += 1
        self.version += 1
        return new

    def __len__(self) -> int:
        return len(self._records)

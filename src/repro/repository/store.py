"""SiteRepository: the four databases of one site, bundled.

The Site Manager "bridges the VDCE modules to the site databases"
(paper §1); in this codebase every module that the paper routes through
the Site Manager takes a :class:`SiteRepository` and reads/writes the
appropriate member database.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.repository.constraints import TaskConstraintsDB
from repro.repository.host_index import HostIndex
from repro.repository.predict_cache import PredictCache
from repro.repository.resources import (
    MembershipError,
    MembershipState,
    ResourcePerformanceDB,
)
from repro.repository.taskperf import TaskPerformanceDB
from repro.repository.users import AccessDomain, UserAccountsDB
from repro.sim.site import Site
from repro.tasklib.registry import TaskRegistry

__all__ = ["SiteRepository"]


class SiteRepository:
    """User accounts + resource performance + task performance + constraints."""

    def __init__(self, site_name: str):
        self.site_name = site_name
        self.users = UserAccountsDB()
        self.resources = ResourcePerformanceDB(site_name)
        self.task_perf = TaskPerformanceDB(site_name)
        self.constraints = TaskConstraintsDB(site_name)
        #: perf-layer accessories (see repro.perf): version-invalidated,
        #: derived state only — never serialized, rebuilt on restore
        self.host_index = HostIndex(self.resources, self.constraints)
        self.predict_cache = PredictCache(self.task_perf)
        # Symmetry guards (issue 10): removing one side of a host's
        # registration while the other still references it is a typed
        # error, not silent divergence.  "Actively registered" excludes
        # DRAINING — the sanctioned drain->retire sequence removes
        # constraints while the resource row is still draining.
        self.resources.set_constraint_check(self.constraints.references_host)
        self.constraints.set_registration_check(self._actively_registered)
        # Every membership transition invalidates the prediction memo:
        # the host index re-keys itself off the version counters, but the
        # predict cache keys only on task-perf versions and host names —
        # a rejoined host may carry a new spec under an old name.
        self.resources.add_membership_listener(self._on_membership_change)

    def _actively_registered(self, name: str) -> bool:
        if not self.resources.has_host(name):
            return False
        return self.resources.get(name).state in (
            MembershipState.ACTIVE,
            MembershipState.JOINING,
            MembershipState.REJOINING,
        )

    def _on_membership_change(self, name: str, state: str) -> None:
        self.predict_cache.clear()

    def deregister_host(self, name: str) -> None:
        """Symmetric removal of a host: constraints *and* resource row.

        The sanctioned way to fully decommission a host at this layer —
        both databases change in one step, so the cross-checks that
        guard the individual ``remove_host``/``deregister_host`` calls
        can never observe a diverged intermediate state.
        """
        if not self.resources.has_host(name):
            raise MembershipError(
                f"host {name!r} is not registered at site {self.site_name!r}"
            )
        self.constraints.remove_host(name, deregistering=True)
        self.resources.deregister_host(name)

    @classmethod
    def bootstrap(
        cls,
        site: Site,
        registry: TaskRegistry,
        admin_password: str = "vdce-admin",
    ) -> "SiteRepository":
        """Bring up a repository for a simulated site.

        Registers every site host in the resource DB (with its group),
        seeds the task-performance DB from the library registry,
        installs every task executable on every host, and creates an
        ``admin`` account — the state a freshly deployed VDCE server
        would have after its install scripts ran.
        """
        repo = cls(site.name)
        for group in site.groups.values():
            for host in group:
                repo.resources.register_host(host.spec, group=group.name)
        repo.task_perf.load_from_registry(registry)
        repo.constraints.install_everywhere(
            registry.names(), (h.name for h in site)
        )
        repo.users.add_user(
            "admin",
            admin_password,
            priority=10,
            access_domain=AccessDomain.GLOBAL,
        )
        return repo

    def runnable_up_hosts(self, task_type: str) -> list:
        """Hosts that are up, ACTIVE members, and have the executable.

        The intersection the host-selection algorithm iterates over.
        Non-ACTIVE membership states (joining, draining, rejoining) are
        excluded here — the reference semantics the host index must
        reproduce — so a draining host stops attracting placements the
        instant its transition is recorded.
        """
        return [
            record
            for record in self.resources.up_hosts()
            if record.state == MembershipState.ACTIVE
            and self.constraints.is_runnable(task_type, record.name)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SiteRepository({self.site_name!r}, hosts={len(self.resources)}, "
            f"tasks={len(self.task_perf)}, users={len(self.users)})"
        )

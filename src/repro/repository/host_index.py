"""Per-site indexed host tables for the host-selection hot path.

The reference path (:meth:`~repro.repository.store.SiteRepository.
runnable_up_hosts` + the name sort in :func:`~repro.scheduler.
host_selection.candidate_hosts`) walks every registered host and
re-sorts the survivors on **every** ``Predict`` round — O(hosts log
hosts) per task per site.  The populations those scans iterate over
change only on registration events (host or executable registered,
host decommissioned), which both member databases already version.

:class:`HostIndex` therefore caches, per task type, the name-sorted
list of hosts with that executable installed, keyed by the pair
``(resources.registration_version, constraints.version)``.  Dynamic
state — up/down status and membership state — is read per query from
the live :class:`~repro.repository.resources.HostRecord`, so a host
marked down (or draining) between monitor reports disappears from the
very next query without any rebuild.  Membership transitions bump one
of the two version counters (population changes bump
``registration_version``, in-place drains bump ``state_version``), so
every join/drain/depart/rejoin invalidates the cache by construction.

Equivalence argument (pinned by ``tests/scheduler/test_host_index.py``):
filtering commutes with sorting, so
``sorted(filter(up, runnable)) == filter(up, sorted(runnable))`` — the
index returns exactly the reference answer in exactly the reference
order.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.repository.constraints import TaskConstraintsDB
from repro.repository.resources import (
    HostRecord,
    MembershipState,
    ResourcePerformanceDB,
)

__all__ = ["HostIndex"]


class HostIndex:
    """Name-sorted runnable-host tables, rebuilt only on registration."""

    def __init__(
        self, resources: ResourcePerformanceDB, constraints: TaskConstraintsDB
    ):
        self._resources = resources
        self._constraints = constraints
        self._key: Tuple[int, int] = (-1, -1)
        #: task_type -> name-sorted hosts with the executable installed
        self._tables: Dict[str, List[str]] = {}
        #: task_type -> materialised up-host record list, valid only for
        #: the exact (registration, constraints, state) version triple
        self._record_key: Tuple[int, int, int] = (-1, -1, -1)
        self._record_lists: Dict[str, List[HostRecord]] = {}
        self.rebuilds = 0

    def _table(self, task_type: str) -> List[str]:
        key = (self._resources.registration_version, self._constraints.version)
        if key != self._key:
            self._tables.clear()
            self._key = key
        table = self._tables.get(task_type)
        if table is None:
            is_runnable = self._constraints.is_runnable
            table = sorted(
                name
                for name in self._resources.host_names()
                if is_runnable(task_type, name)
            )
            self._tables[task_type] = table
            self.rebuilds += 1
        return table

    def runnable_up_hosts(self, task_type: str) -> List[HostRecord]:
        """Up ACTIVE hosts with ``task_type`` installed, name-ordered.

        Same set and order as ``sorted(SiteRepository.runnable_up_hosts
        (task_type), key=name)``.  The materialised record list is
        reused verbatim while no host row has changed (rows are frozen
        and replaced on write, so ``state_version`` tells the whole
        truth); any dynamic write invalidates it.  The returned list is
        the cache itself and MUST be treated as read-only — callers
        that filter (preferences, quarantine) build new lists.
        """
        resources = self._resources
        key = (
            resources.registration_version,
            self._constraints.version,
            resources.state_version,
        )
        if key != self._record_key:
            self._record_lists.clear()
            self._record_key = key
        cached = self._record_lists.get(task_type)
        if cached is None:
            get = resources.get
            active = MembershipState.ACTIVE
            cached = [
                record
                for name in self._table(task_type)
                if (record := get(name)).up and record.state == active
            ]
            self._record_lists[task_type] = cached
        return cached

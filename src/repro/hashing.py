"""Canonical content hashing for task payloads.

One hash function shared by every layer that moves or stores task
output bytes: the checkpoint journal (``runtime/checkpoint.py``), the
simulated Data Manager path (``runtime/execution.py``), the DSM, and
the real-socket path (``net/proxy.py``).  Living at the package root
keeps the layering clean — ``net`` must not import ``runtime``, but
both need to agree byte-for-byte on what a payload hashes to, or the
end-to-end integrity checks of DESIGN §16 would desynchronise between
the simulated and real Data Manager paths.

Canonical across runs and processes: numpy arrays hash their dtype,
shape and raw bytes; floats their IEEE-754 encoding; dicts their
sorted items — never ``repr`` or pickle, whose output can vary.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any

import numpy as np

__all__ = ["value_hash"]


def _feed(h, value: Any) -> None:
    """Feed one value into a hash, type-tagged and representation-stable."""
    if value is None:
        h.update(b"N")
    elif isinstance(value, bool):
        h.update(b"B1" if value else b"B0")
    elif isinstance(value, (int, np.integer)):
        h.update(b"I" + str(int(value)).encode("ascii"))
    elif isinstance(value, (float, np.floating)):
        h.update(b"F" + struct.pack(">d", float(value)))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        h.update(b"S" + str(len(raw)).encode("ascii") + b":" + raw)
    elif isinstance(value, bytes):
        h.update(b"Y" + str(len(value)).encode("ascii") + b":" + value)
    elif isinstance(value, np.ndarray):
        h.update(b"A" + value.dtype.str.encode("ascii"))
        h.update(str(value.shape).encode("ascii"))
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (list, tuple)):
        h.update(b"L" + str(len(value)).encode("ascii"))
        for item in value:
            _feed(h, item)
    elif isinstance(value, dict):
        h.update(b"D" + str(len(value)).encode("ascii"))
        for key in sorted(value, key=str):
            _feed(h, str(key))
            _feed(h, value[key])
    else:
        # last resort for exotic payloads: a stable repr round
        h.update(b"R" + repr(value).encode("utf-8"))


def value_hash(value: Any) -> str:
    """Canonical sha256 content hash of one task output value."""
    h = hashlib.sha256()
    _feed(h, value)
    return h.hexdigest()

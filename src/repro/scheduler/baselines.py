"""Baseline schedulers for the comparison experiments (E2, E3, E9).

The paper positions its heuristic inside the list-scheduling family
(refs [2, 3, 4]) and builds on application-level scheduling ideas
(refs [1, 5]).  A credible reproduction therefore needs the standard
comparison points:

* :class:`RandomScheduler` / :class:`RoundRobinScheduler` — the naive
  floors any load-aware scheduler must beat;
* :class:`LocalOnlyScheduler` — VDCE with ``k = 0`` (no remote sites);
* :class:`LoadBlindScheduler` — VDCE whose prediction ignores measured
  load (isolates the value of the monitoring subsystem, E3);
* :class:`MinMinScheduler` / :class:`MaxMinScheduler` — the classic
  batch-mode heuristics;
* :class:`HEFTScheduler` — insertion-based Heterogeneous Earliest
  Finish Time (the strongest list scheduler of this family; notably,
  HEFT is Topcuoglu's own later algorithm).

All of them emit the same :class:`~repro.scheduler.allocation.AllocationTable`
the VDCE scheduler emits, so the runtime executes any of them unchanged.

Parallel tasks: baseline candidate sets treat each site's best
``n_nodes``-host group (as chosen by the Fig. 3 logic) as one candidate
"processor", which keeps the machinery uniform across schedulers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.afg.graph import ApplicationFlowGraph
from repro.afg.levels import compute_levels
from repro.afg.validate import validate_afg
from repro.scheduler.allocation import AllocationTable, TaskAssignment
from repro.scheduler.federation import FederationView
from repro.scheduler.host_selection import candidate_hosts
from repro.scheduler.prediction import PredictionModel
from repro.scheduler.site_scheduler import SchedulingError, SiteScheduler

__all__ = [
    "HEFTScheduler",
    "LoadBlindScheduler",
    "LocalOnlyScheduler",
    "MaxMinScheduler",
    "MinMinScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
]


@dataclass(frozen=True)
class _Candidate:
    """One placement option for one task."""

    site: str
    hosts: Tuple[str, ...]
    exec_time: float

    @property
    def primary_host(self) -> str:
        return self.hosts[0]


def _task_candidates(
    afg: ApplicationFlowGraph,
    view: FederationView,
    model: PredictionModel,
    sites: Sequence[str],
) -> Dict[str, List[_Candidate]]:
    """Feasible (site, host-group, predicted-time) options per task."""
    out: Dict[str, List[_Candidate]] = {}
    for task in afg:
        props = task.properties
        n_nodes = props.n_nodes if props.is_parallel else 1
        memory_mb = props.memory_mb if props.memory_mb > 0 else None
        options: List[_Candidate] = []
        for site in sites:
            repo = view.repository(site)
            records = candidate_hosts(task, repo)
            if len(records) < n_nodes:
                continue
            if n_nodes == 1:
                for record in records:
                    options.append(
                        _Candidate(
                            site=site,
                            hosts=(record.name,),
                            exec_time=model.predict(
                                task.task_type,
                                props.workload_scale,
                                1,
                                record,
                                repo.task_perf,
                                memory_mb=memory_mb,
                            ),
                        )
                    )
            else:
                predictions = sorted(
                    (
                        model.predict(
                            task.task_type,
                            props.workload_scale,
                            n_nodes,
                            record,
                            repo.task_perf,
                            memory_mb=memory_mb,
                        ),
                        record.name,
                    )
                    for record in records
                )
                chosen = predictions[:n_nodes]
                options.append(
                    _Candidate(
                        site=site,
                        hosts=tuple(name for _, name in chosen),
                        exec_time=chosen[-1][0],
                    )
                )
        if not options:
            raise SchedulingError(
                f"no site can run task {task.id!r} ({task.task_type})"
            )
        out[task.id] = options
    return out


def _transfer_between(
    view: FederationView,
    src: TaskAssignment | _Candidate,
    src_site: str,
    dst: _Candidate,
    size_mb: float,
) -> float:
    """Edge transfer estimate between two placements (0 if same host)."""
    src_hosts = src.hosts if hasattr(src, "hosts") else ()
    if dst.hosts and src_hosts and src_hosts[0] == dst.hosts[0]:
        return 0.0
    return view.site_transfer_time(src_site, dst.site, size_mb)


def _table_from_choices(
    afg: ApplicationFlowGraph,
    choices: Dict[str, _Candidate],
    name: str,
) -> AllocationTable:
    table = AllocationTable(afg.name, scheduler=name)
    for task_id, cand in choices.items():
        table.assign(
            TaskAssignment(
                task_id=task_id,
                site=cand.site,
                hosts=cand.hosts,
                predicted_time=cand.exec_time,
            )
        )
    table.validate_against(afg)
    return table


# ---------------------------------------------------------------------------
# Naive baselines
# ---------------------------------------------------------------------------


@dataclass
class RandomScheduler:
    """Uniform random feasible placement (seeded)."""

    seed: int = 0
    model: PredictionModel = field(default_factory=PredictionModel)
    name: str = "random"

    def schedule(self, afg: ApplicationFlowGraph, view: FederationView) -> AllocationTable:
        validate_afg(afg)
        rng = np.random.default_rng(self.seed)
        sites = view.participating_sites()
        candidates = _task_candidates(afg, view, self.model, sites)
        choices = {
            task_id: options[int(rng.integers(len(options)))]
            for task_id, options in sorted(candidates.items())
        }
        return _table_from_choices(afg, choices, self.name)


@dataclass
class RoundRobinScheduler:
    """Cycle through placement options in stable order, one per task."""

    model: PredictionModel = field(default_factory=PredictionModel)
    name: str = "round-robin"

    def schedule(self, afg: ApplicationFlowGraph, view: FederationView) -> AllocationTable:
        validate_afg(afg)
        sites = view.participating_sites()
        candidates = _task_candidates(afg, view, self.model, sites)
        counter = itertools.count()
        choices: Dict[str, _Candidate] = {}
        for task_id in afg.topological_order():
            options = sorted(candidates[task_id], key=lambda c: (c.site, c.hosts))
            choices[task_id] = options[next(counter) % len(options)]
        return _table_from_choices(afg, choices, self.name)


def LocalOnlyScheduler(model: Optional[PredictionModel] = None) -> SiteScheduler:
    """VDCE restricted to the local site (``k = 0``)."""
    return SiteScheduler(k=0, model=model or PredictionModel(), name="local-only")


def LoadBlindScheduler(k: int = 2, noise: float = 0.0) -> SiteScheduler:
    """VDCE whose prediction pretends every host is idle (E3 ablation)."""
    model = PredictionModel(ignore_load=True, noise=noise)
    return SiteScheduler(k=k, model=model, name="load-blind")


# ---------------------------------------------------------------------------
# Batch-mode heuristics: min-min / max-min
# ---------------------------------------------------------------------------


@dataclass
class _BatchModeScheduler:
    """Shared machinery for min-min / max-min (completion-time driven)."""

    k: Optional[int] = None  # None = all sites
    model: PredictionModel = field(default_factory=PredictionModel)
    name: str = "batch"
    pick_max: bool = False

    def schedule(self, afg: ApplicationFlowGraph, view: FederationView) -> AllocationTable:
        validate_afg(afg)
        sites = view.participating_sites(self.k)
        candidates = _task_candidates(afg, view, self.model, sites)

        host_free: Dict[str, float] = {}
        finish: Dict[str, float] = {}
        choices: Dict[str, _Candidate] = {}
        scheduled: set[str] = set()
        unscheduled = {t.id for t in afg}

        def completion(task_id: str, cand: _Candidate) -> float:
            ready = 0.0
            for edge in afg.in_edges(task_id):
                src = choices[edge.src]
                xfer = _transfer_between(view, src, src.site, cand, edge.size_mb)
                ready = max(ready, finish[edge.src] + xfer)
            start = max([ready] + [host_free.get(h, 0.0) for h in cand.hosts])
            return start + cand.exec_time

        while unscheduled:
            ready_tasks = sorted(
                t
                for t in unscheduled
                if all(p in scheduled for p in afg.parents(t))
            )
            # best candidate per ready task
            best: Dict[str, Tuple[float, _Candidate]] = {}
            for t in ready_tasks:
                options = candidates[t]
                times = [(completion(t, c), c) for c in options]
                times.sort(key=lambda pair: (pair[0], pair[1].site, pair[1].hosts))
                best[t] = times[0]
            # min-min picks the task with smallest best completion;
            # max-min the task with largest best completion.
            selector = max if self.pick_max else min
            chosen_task = selector(ready_tasks, key=lambda t: (best[t][0], t))
            ctime, cand = best[chosen_task]
            choices[chosen_task] = cand
            finish[chosen_task] = ctime
            for h in cand.hosts:
                host_free[h] = ctime
            scheduled.add(chosen_task)
            unscheduled.discard(chosen_task)

        return _table_from_choices(afg, choices, self.name)


def MinMinScheduler(k: Optional[int] = None,
                    model: Optional[PredictionModel] = None) -> _BatchModeScheduler:
    return _BatchModeScheduler(k=k, model=model or PredictionModel(),
                               name="min-min", pick_max=False)


def MaxMinScheduler(k: Optional[int] = None,
                    model: Optional[PredictionModel] = None) -> _BatchModeScheduler:
    return _BatchModeScheduler(k=k, model=model or PredictionModel(),
                               name="max-min", pick_max=True)


# ---------------------------------------------------------------------------
# HEFT
# ---------------------------------------------------------------------------


@dataclass
class HEFTScheduler:
    """Insertion-based Heterogeneous Earliest Finish Time.

    Upward ranks use the mean execution time over each task's candidate
    placements and the federation's mean per-MB transfer cost; placement
    walks tasks in descending rank, choosing the candidate with the
    earliest finish time, with insertion into idle gaps.
    """

    k: Optional[int] = None
    model: PredictionModel = field(default_factory=PredictionModel)
    name: str = "heft"

    def schedule(self, afg: ApplicationFlowGraph, view: FederationView) -> AllocationTable:
        validate_afg(afg)
        sites = view.participating_sites(self.k)
        candidates = _task_candidates(afg, view, self.model, sites)

        mean_exec = {
            t: sum(c.exec_time for c in opts) / len(opts)
            for t, opts in candidates.items()
        }
        per_mb = self._mean_transfer_per_mb(view, sites)

        # upward rank
        rank: Dict[str, float] = {}
        for task_id in reversed(afg.topological_order()):
            best_child = 0.0
            for edge in afg.out_edges(task_id):
                best_child = max(
                    best_child, edge.size_mb * per_mb + rank[edge.dst]
                )
            rank[task_id] = mean_exec[task_id] + best_child

        order = sorted(rank, key=lambda t: (-rank[t], t))

        busy: Dict[str, List[Tuple[float, float]]] = {}
        finish: Dict[str, float] = {}
        choices: Dict[str, _Candidate] = {}

        for task_id in order:
            best_cand = None
            best_fin = float("inf")
            best_start = 0.0
            for cand in sorted(candidates[task_id], key=lambda c: (c.site, c.hosts)):
                ready = 0.0
                for edge in afg.in_edges(task_id):
                    src = choices[edge.src]
                    xfer = _transfer_between(view, src, src.site, cand, edge.size_mb)
                    ready = max(ready, finish[edge.src] + xfer)
                start = self._earliest_slot(busy, cand.hosts, ready, cand.exec_time)
                fin = start + cand.exec_time
                if fin < best_fin:
                    best_fin, best_cand, best_start = fin, cand, start
            assert best_cand is not None  # candidates are never empty
            choices[task_id] = best_cand
            finish[task_id] = best_fin
            for h in best_cand.hosts:
                intervals = busy.setdefault(h, [])
                intervals.append((best_start, best_fin))
                intervals.sort()

        return _table_from_choices(afg, choices, self.name)

    @staticmethod
    def _mean_transfer_per_mb(view: FederationView, sites: Sequence[str]) -> float:
        pairs = [(a, b) for a in sites for b in sites]
        if not pairs:
            return 0.0
        total = sum(view.site_transfer_time(a, b, 1.0) for a, b in pairs)
        return total / len(pairs)

    @staticmethod
    def _earliest_slot(
        busy: Dict[str, List[Tuple[float, float]]],
        hosts: Tuple[str, ...],
        ready: float,
        duration: float,
    ) -> float:
        """Earliest time >= ready when all ``hosts`` are free for ``duration``.

        Insertion-based: scans the merged busy intervals of the host
        group for the first sufficient gap.
        """
        intervals = sorted(
            itertools.chain.from_iterable(busy.get(h, []) for h in hosts)
        )
        t = ready
        for start, end in intervals:
            if start - t >= duration:
                return t
            t = max(t, end)
        return t

"""The VDCE Application Scheduler (paper §3) and baseline schedulers.

"The main function of the Application Scheduler module in VDCE is to
interpret the application flow graph and to assign the most suitable
available resources for running the application tasks in order to
minimize the schedule length (total execution time) in a transparent
manner."

Layout:

* :mod:`prediction` — ``Predict(task, R)``, the "core of the given
  built-in scheduling algorithms";
* :mod:`host_selection` — Figure 3's within-site algorithm;
* :mod:`site_scheduler` — Figure 2's federated algorithm (k nearest
  sites, AFG multicast, ready-set walk in level-priority order);
* :mod:`allocation` — the resource allocation table handed to the Site
  Manager, plus the forward-pass schedule estimate;
* :mod:`federation` — the scheduler's read-only view of a deployment;
* :mod:`baselines` — comparison schedulers (random, round-robin,
  min-min, max-min, HEFT, local-only, load-blind) for experiment E2.
"""

from repro.scheduler.prediction import PredictionModel
from repro.scheduler.allocation import (
    AllocationTable,
    ScheduleEstimate,
    TaskAssignment,
    estimate_schedule,
)
from repro.scheduler.federation import FederationView
from repro.scheduler.host_selection import HostSelectionResult, select_hosts
from repro.scheduler.site_scheduler import SiteScheduler, SchedulingError
from repro.scheduler.baselines import (
    HEFTScheduler,
    LoadBlindScheduler,
    LocalOnlyScheduler,
    MaxMinScheduler,
    MinMinScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)

__all__ = [
    "AllocationTable",
    "FederationView",
    "HEFTScheduler",
    "HostSelectionResult",
    "LoadBlindScheduler",
    "LocalOnlyScheduler",
    "MaxMinScheduler",
    "MinMinScheduler",
    "PredictionModel",
    "RandomScheduler",
    "RoundRobinScheduler",
    "ScheduleEstimate",
    "SchedulingError",
    "SiteScheduler",
    "TaskAssignment",
    "estimate_schedule",
    "select_hosts",
]

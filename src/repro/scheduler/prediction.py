"""Performance prediction: ``Predict(task, R)``.

Paper §3: "The core of the given built-in scheduling algorithms is the
performance prediction [6] phase, which is provided by separate
function evaluations of each task on each resource."

Reference [6] (Yan & Zhang) predicts execution time on non-dedicated
heterogeneous workstations from the task's computation size and the
machine's speed and recent load.  Our model has the same inputs — all
drawn from the site repository, never from live hosts, because the
scheduler only sees the databases:

``time = span_work x (1 + load) / speed x calibration [x mem_penalty]``

where ``span_work`` is the task's base-processor time divided by the
parallel speedup (for parallel tasks), ``load`` is the host's last
reported run-queue length, ``calibration`` is the learned
measured/expected ratio for this (task, host) pair, and ``mem_penalty``
applies when the task's memory requirement exceeds the host's reported
available memory.

The optional ``noise`` knob perturbs predictions multiplicatively for
the sensitivity experiment (E10); noise is deterministic per
(task, host, seed) so experiments are reproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.repository.resources import HostRecord
from repro.repository.taskperf import TaskPerformanceDB

__all__ = ["PredictionModel"]


@dataclass(frozen=True)
class PredictionModel:
    """Tunable ``Predict(task, R)`` evaluator.

    Parameters
    ----------
    memory_penalty:
        Multiplier applied when the task's memory requirement exceeds
        the host's reported available memory (models thrashing).
    noise:
        Relative half-width of a uniform multiplicative perturbation,
        e.g. ``0.3`` draws factors in [0.7, 1.3].  Zero (default) is
        the oracle-parameter model.
    noise_seed:
        Seed mixed into the per-(task, host) noise hash.
    use_calibration:
        Whether to apply the task-performance DB's learned (task, host)
        ratio (paper §4.1's post-execution refinement loop).
    ignore_load:
        Predict as if every host were idle — the "load-blind" ablation
        of experiment E3.
    """

    memory_penalty: float = 4.0
    noise: float = 0.0
    noise_seed: int = 0
    use_calibration: bool = True
    ignore_load: bool = False

    def __post_init__(self) -> None:
        if self.memory_penalty < 1.0:
            raise ValueError("memory_penalty must be >= 1")
        if not (0.0 <= self.noise < 1.0):
            raise ValueError("noise must be in [0, 1)")

    # -- single host -------------------------------------------------------

    def predict(
        self,
        task_type: str,
        scale: float,
        n_nodes: int,
        host: HostRecord,
        task_perf: TaskPerformanceDB,
        memory_mb: Optional[int] = None,
        extra_load: float = 0.0,
    ) -> float:
        """Predicted execution time of one task slice on ``host``.

        For a parallel task (``n_nodes > 1``) this is the time of the
        per-node slice under the library's speedup model; the caller
        combines slices across the chosen host group via
        :meth:`predict_group`.

        ``extra_load`` is *scheduling-round* load: run-queue entries the
        caller has already committed to this host while placing the
        same application (see :mod:`repro.scheduler.host_selection`).
        It is deliberately unaffected by ``ignore_load``, which only
        blinds the model to the *measured background* load.
        """
        if extra_load < 0:
            raise ValueError("extra_load must be non-negative")
        record = task_perf.get(task_type)
        total_work = record.computation_size * scale
        if n_nodes > 1:
            if record.parallel is None:
                raise ValueError(
                    f"task {task_type!r} is not parallelizable but n_nodes={n_nodes}"
                )
            span_work = total_work / record.parallel.speedup(n_nodes)
        else:
            span_work = total_work

        load = 0.0 if self.ignore_load else max(0.0, host.load)
        time = span_work * (1.0 + load + extra_load) / host.spec.speed

        required_mb = memory_mb if memory_mb is not None else int(
            np.ceil(record.required_memory_mb * scale)
        )
        if required_mb > host.available_memory_mb:
            time *= self.memory_penalty

        if self.use_calibration:
            time *= task_perf.host_calibration(task_type, host.name)

        if self.noise > 0.0:
            time *= self._noise_factor(task_type, host.name)
        return time

    # -- host group (parallel tasks) ------------------------------------------

    def predict_group(
        self,
        task_type: str,
        scale: float,
        hosts: Sequence[HostRecord],
        task_perf: TaskPerformanceDB,
        memory_mb: Optional[int] = None,
    ) -> float:
        """Predicted span of a parallel task on a specific host group.

        Every node executes the per-node slice concurrently, so the
        group's time is the slowest member's predicted slice time.
        """
        if not hosts:
            raise ValueError("host group must be non-empty")
        n = len(hosts)
        return max(
            self.predict(task_type, scale, n, h, task_perf, memory_mb=memory_mb)
            for h in hosts
        )

    # -- internals ---------------------------------------------------------------

    def _noise_factor(self, task_type: str, host_name: str) -> float:
        """Deterministic multiplicative noise in [1-noise, 1+noise]."""
        key = f"{self.noise_seed}:{task_type}:{host_name}".encode("utf-8")
        rng = np.random.default_rng(zlib.crc32(key))
        return 1.0 + self.noise * float(rng.uniform(-1.0, 1.0))

"""Resource allocation tables and the forward-pass schedule estimate.

Paper §3: "After the best schedule of the whole application is
determined by the local site and a set of nearest remote sites, the
resource allocation table is generated and transferred to the Site
Manager running on the VDCE server."

The table is the sole interface between scheduler and runtime: any
scheduler (VDCE or baseline) that emits a valid table can be executed
by the same runtime, which is what makes experiment E2's comparisons
apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.afg.graph import ApplicationFlowGraph

__all__ = [
    "AllocationTable",
    "ScheduleEstimate",
    "TaskAssignment",
    "estimate_schedule",
]


@dataclass(frozen=True)
class TaskAssignment:
    """Where one task runs: a site and one host (or several if parallel).

    ``predicted_time`` is the scheduler's ``Predict`` figure — it is
    stored because the Site Manager compares it with the measured time
    to refine the task-performance database (paper §4.1).
    """

    task_id: str
    site: str
    hosts: Tuple[str, ...]
    predicted_time: float

    def __post_init__(self) -> None:
        if not self.hosts:
            raise ValueError(f"task {self.task_id!r}: empty host group")
        if len(set(self.hosts)) != len(self.hosts):
            raise ValueError(f"task {self.task_id!r}: duplicate hosts in group")
        if self.predicted_time < 0:
            raise ValueError(f"task {self.task_id!r}: negative predicted time")

    @property
    def primary_host(self) -> str:
        """The host that owns the task's I/O channels (first of the group)."""
        return self.hosts[0]


class AllocationTable:
    """task id -> :class:`TaskAssignment` for one application."""

    def __init__(self, application: str, scheduler: str = "vdce"):
        self.application = application
        self.scheduler = scheduler
        self._assignments: Dict[str, TaskAssignment] = {}

    def assign(self, assignment: TaskAssignment) -> TaskAssignment:
        if assignment.task_id in self._assignments:
            raise ValueError(f"task {assignment.task_id!r} already assigned")
        self._assignments[assignment.task_id] = assignment
        return assignment

    def get(self, task_id: str) -> TaskAssignment:
        try:
            return self._assignments[task_id]
        except KeyError:
            raise KeyError(f"task {task_id!r} has no assignment") from None

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._assignments

    def __len__(self) -> int:
        return len(self._assignments)

    @property
    def assignments(self) -> Dict[str, TaskAssignment]:
        return dict(self._assignments)

    def site_of(self, task_id: str) -> str:
        return self.get(task_id).site

    def hosts_of(self, task_id: str) -> Tuple[str, ...]:
        return self.get(task_id).hosts

    def sites_used(self) -> List[str]:
        return sorted({a.site for a in self._assignments.values()})

    def hosts_used(self) -> List[str]:
        return sorted({h for a in self._assignments.values() for h in a.hosts})

    def tasks_on_site(self, site: str) -> List[str]:
        """The "related portion of the resource allocation table" the
        Site Manager multicasts toward a site's Group Managers (§4.1)."""
        return sorted(
            t for t, a in self._assignments.items() if a.site == site
        )

    def is_complete_for(self, afg: ApplicationFlowGraph) -> bool:
        return all(t.id in self._assignments for t in afg)

    def validate_against(self, afg: ApplicationFlowGraph) -> None:
        missing = [t.id for t in afg if t.id not in self._assignments]
        if missing:
            raise ValueError(
                f"allocation table for {self.application!r} is missing tasks: "
                f"{missing}"
            )
        extra = [t for t in self._assignments if t not in afg]
        if extra:
            raise ValueError(
                f"allocation table for {self.application!r} has unknown tasks: "
                f"{extra}"
            )

    # -- wire format (Site Manager multicast) ------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "application": self.application,
            "scheduler": self.scheduler,
            "assignments": [
                {
                    "task_id": a.task_id,
                    "site": a.site,
                    "hosts": list(a.hosts),
                    "predicted_time": a.predicted_time,
                }
                for a in self._assignments.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AllocationTable":
        table = cls(data["application"], scheduler=data.get("scheduler", "vdce"))
        for item in data["assignments"]:
            table.assign(
                TaskAssignment(
                    task_id=item["task_id"],
                    site=item["site"],
                    hosts=tuple(item["hosts"]),
                    predicted_time=item["predicted_time"],
                )
            )
        return table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AllocationTable({self.application!r}, scheduler={self.scheduler!r}, "
            f"tasks={len(self._assignments)})"
        )


@dataclass(frozen=True)
class ScheduleEstimate:
    """Forward-pass prediction of the schedule, before execution."""

    makespan: float
    start: Dict[str, float]
    finish: Dict[str, float]
    comm_time: float  # total predicted transfer time across edges

    def slr(self, critical_path_cost: float) -> float:
        """Schedule length ratio vs the graph's computation-only critical path."""
        if critical_path_cost <= 0:
            raise ValueError("critical path cost must be positive")
        return self.makespan / critical_path_cost


def estimate_schedule(
    afg: ApplicationFlowGraph,
    table: AllocationTable,
    transfer_time,
) -> ScheduleEstimate:
    """Forward pass over the DAG: predicted start/finish per task.

    ``transfer_time(src_assignment, dst_assignment, size_mb)`` supplies
    edge transfer estimates (usually a closure over the network model).
    Host serialisation is modelled: tasks sharing a primary host run
    back-to-back in topological order, which is how the Data-Manager
    runtime actually executes co-located tasks.
    """
    table.validate_against(afg)
    start: Dict[str, float] = {}
    finish: Dict[str, float] = {}
    host_free: Dict[str, float] = {}
    comm_total = 0.0

    for task_id in afg.topological_order():
        assignment = table.get(task_id)
        ready = 0.0
        for edge in afg.in_edges(task_id):
            src_assignment = table.get(edge.src)
            xfer = transfer_time(src_assignment, assignment, edge.size_mb)
            comm_total += xfer
            ready = max(ready, finish[edge.src] + xfer)
        earliest = max(
            [ready] + [host_free.get(h, 0.0) for h in assignment.hosts]
        )
        start[task_id] = earliest
        finish[task_id] = earliest + assignment.predicted_time
        for h in assignment.hosts:
            host_free[h] = finish[task_id]

    makespan = max(finish.values(), default=0.0)
    return ScheduleEstimate(
        makespan=makespan, start=start, finish=finish, comm_time=comm_total
    )

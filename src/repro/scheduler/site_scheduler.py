"""The Site Scheduler Algorithm — paper Figure 2, step for step.

    1. Receive application flow graph from Application Editor.
    2. Select k nearest VDCE neighbor sites,
       Sremote = {S1, S2, ..., Sk}, for local site Slocal.
    3. Multicast application flow graph to each Si in Sremote.
    4. Call Host-Selection-Algorithm (local and remote sites).
    5. Receive the outputs of Host-Selection Algorithm from each Si.
    6. Initialize ready-tasks = {task_i | task_i is an entry node}.
    7. For each task_i in ready-tasks set:
         If task_i is an entry task or task_i does not require input:
             Assign task_i to Sj which minimizes Predict(task_i, Rj).
         Else:
             Determine the site(s), Sparent, assigned for one or more of
             the parent nodes of task_i.
             For each site Sj evaluate:
                 Timetotal(task_i, Sj) = transfer_time(Sparent, Sj)
                                         x file_size + Predict(task_i, Rj)
             Assign task_i to Sj which minimizes Timetotal(task_i, Sj).
         Store resource allocation information for task_i.
         Update the ready-tasks set by removing task_i, and adding
         children nodes of task_i.

Two faithful readings are worth noting:

* *Priorities.*  §3 says levels are "determined before the execution of
  the scheduling algorithm" and give the priority; the ready set is
  therefore processed in descending level order (highest level first),
  recomputed as children become ready.
* *Children become ready* only when **all** their parents are scheduled
  (a child with an unscheduled second parent has no complete
  ``Sparent`` set yet); this is the standard list-scheduling reading.

This module is pure: multicast latency and message counting belong to
the runtime (:mod:`repro.runtime`), which invokes the same functions
from inside simulated Site Manager processes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import repro.perf as perf
from repro.afg.graph import ApplicationFlowGraph
from repro.afg.levels import compute_levels
from repro.metrics.registry import MetricsRegistry, NULL_METRICS
from repro.afg.validate import validate_afg
from repro.scheduler.allocation import AllocationTable, TaskAssignment
from repro.scheduler.federation import FederationView
from repro.scheduler.host_selection import (
    CommitmentLedger,
    HostSelectionResult,
    _reachability,
    bid_for_task,
)
from repro.scheduler.prediction import PredictionModel
from repro.trace.events import EventKind
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = ["SiteScheduler", "SchedulingError"]


class SchedulingError(RuntimeError):
    """No feasible placement exists for some task."""


class _MaxStr(str):
    """String whose ordering is inverted, for max-heaps built on heapq.

    ``max(ready, key=lambda t: (levels[t], t))`` breaks level ties by
    the *largest* task id; a min-heap on ``(-level, _MaxStr(id))`` pops
    exactly that element.  Ids are unique, so the comparison never
    falls through to equality.
    """

    __slots__ = ()

    def __lt__(self, other) -> bool:  # pragma: no branch - trivial
        return str.__gt__(self, other)


@dataclass
class SiteScheduler:
    """VDCE's distributed scheduler, configured for one local site.

    Parameters
    ----------
    k:
        How many nearest remote sites join the schedule (Fig. 2 step 2).
        ``k=0`` degenerates to single-site scheduling.
    model:
        The ``Predict`` evaluator shared by all participating sites.
    name:
        Label recorded in the allocation table (used by experiments).
    use_level_priority:
        When False, the ready set is processed in FIFO/insertion order
        instead of level order — the E9 ablation.
    account_commitments:
        When False, ``Predict`` ignores tasks already placed in this
        round — the *literal* reading of Figures 2-3, in which every
        comparable task collapses onto the single fastest host.  The
        E13 ablation quantifies what the schedule-aware accounting
        (DESIGN.md §5) buys.
    """

    k: int = 2
    model: PredictionModel = field(default_factory=PredictionModel)
    name: str = "vdce"
    use_level_priority: bool = True
    account_commitments: bool = True

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError("k must be non-negative")

    # -- the algorithm ------------------------------------------------------

    def schedule(
        self,
        afg: ApplicationFlowGraph,
        view: FederationView,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_METRICS,
        health_of=None,
    ) -> AllocationTable:
        """Run Figure 2 and return the resource allocation table."""
        table, _ = self.schedule_with_trace(
            afg, view, tracer=tracer, metrics=metrics, health_of=health_of
        )
        return table

    def schedule_with_trace(
        self,
        afg: ApplicationFlowGraph,
        view: FederationView,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_METRICS,
        health_of=None,
    ) -> Tuple[AllocationTable, List[str]]:
        """As :meth:`schedule`, also returning the placement order.

        ``tracer`` records one ``schedule_decision`` event per placed
        task — the substrate for trace-diffing a scheduling change.
        ``health_of`` is the optional host-health penalty/quarantine
        hook threaded into every bid (see
        :func:`~repro.scheduler.host_selection.bid_for_task`).
        """
        validate_afg(afg)

        # Step 2: select the k nearest neighbour sites.
        sites = view.participating_sites(self.k)

        # Steps 3-5 (the AFG multicast and bid replies) are the *wire*
        # protocol, reproduced with real messages by
        # VDCERuntime.schedule_process; the information they move — each
        # remote site's resource/task parameters — reaches this pure
        # function through the FederationView.  Step 7's inner
        # "evaluate Predict(task_i, Rj)" is performed per ready task
        # against the sites' current in-round commitments (the
        # schedule-aware accounting documented in
        # repro.scheduler.host_selection), so independent tasks spread
        # over hosts *and* sites instead of collapsing onto the single
        # fastest machine.
        # Priorities: levels from base computation costs, computed once
        # "before the execution of the scheduling algorithm" (§3).
        local_perf = view.local_repository().task_perf

        def cost(task_id: str) -> float:
            node = afg.task(task_id)
            return local_perf.base_cost(node.task_type, node.properties.workload_scale)

        levels = compute_levels(afg, cost)
        related = _reachability(afg)
        #: federation-wide in-round commitments — an O(1)-query ledger
        #: on the optimized path, the reference host -> task-ids dict
        #: otherwise (the two agree bid for bid; see CommitmentLedger)
        ledger: Optional[CommitmentLedger] = (
            CommitmentLedger(related)
            if perf.FLAGS.commit_ledger and self.account_commitments
            else None
        )
        committed: Dict[str, List[str]] = {}

        table = AllocationTable(afg.name, scheduler=self.name)
        site_by_task: Dict[str, str] = {}
        placement_order: List[str] = []

        # Step 6: ready set starts with the entry nodes.
        scheduled: Set[str] = set()
        ready: List = sorted(afg.entry_tasks())
        # Heap-backed priority queue: each pop returns exactly
        # max(ready, key=(level, id)) without the O(n) scan per task.
        use_heap = self.use_level_priority and perf.FLAGS.commit_ledger
        if use_heap:
            ready_set: Set[str] = set(ready)
            ready = [(-levels[t], _MaxStr(t)) for t in ready]
            heapq.heapify(ready)

        # Step 7: walk the ready set in priority order.
        while ready:
            if use_heap:
                task_id = str(heapq.heappop(ready)[1])
                ready_set.discard(task_id)
            elif self.use_level_priority:
                task_id = max(ready, key=lambda t: (levels[t], t))
                ready.remove(task_id)
            else:
                task_id = ready.pop(0)  # FIFO ablation (E9)
            assignment = self._place_task(
                afg, task_id, sites, view, site_by_task, committed, related,
                health_of, ledger,
            )
            if tracer.enabled:
                tracer.emit(
                    EventKind.SCHEDULE_DECISION, source=f"sched:{self.name}",
                    application=afg.name, task=task_id,
                    site=assignment.site, hosts=assignment.hosts,
                    predicted_time=assignment.predicted_time,
                    level=levels[task_id],
                )
            if metrics.enabled:
                metrics.counter(
                    "vdce_schedule_decisions_total",
                    "tasks placed by the site scheduler, per chosen site",
                ).inc(site=assignment.site)
                metrics.histogram(
                    "vdce_predicted_task_seconds",
                    "Predict(task, R) of the winning bid",
                ).observe(assignment.predicted_time)
            table.assign(assignment)
            if ledger is not None:
                ledger.commit(task_id, assignment.hosts)
            else:
                for host_name in assignment.hosts:
                    committed.setdefault(host_name, []).append(task_id)
            site_by_task[task_id] = assignment.site
            placement_order.append(task_id)
            scheduled.add(task_id)
            for child in afg.children(task_id):
                if (
                    child not in scheduled
                    and (child not in ready_set if use_heap else child not in ready)
                    and all(p in scheduled for p in afg.parents(child))
                ):
                    if use_heap:
                        ready_set.add(child)
                        heapq.heappush(ready, (-levels[child], _MaxStr(child)))
                    else:
                        ready.append(child)

        table.validate_against(afg)
        return table, placement_order

    # -- placement of one task ------------------------------------------------

    def _place_task(
        self,
        afg: ApplicationFlowGraph,
        task_id: str,
        sites: List[str],
        view: FederationView,
        site_by_task: Dict[str, str],
        committed: Dict[str, List[str]],
        related: Dict[str, Set[str]],
        health_of=None,
        ledger: Optional[CommitmentLedger] = None,
    ) -> TaskAssignment:
        task = afg.task(task_id)

        if ledger is not None:
            extra_load_of = ledger.extra_load_fn(task_id)
        else:
            def extra_load_of(host_name: str) -> float:
                if not self.account_commitments:
                    return 0.0
                others = committed.get(host_name, ())
                return float(
                    sum(1 for other in others if other not in related[task_id])
                )

        bids: Dict[str, HostSelectionResult] = {}
        for site in sites:
            bid = bid_for_task(
                task, view.repository(site), self.model, extra_load_of,
                health_of,
            )
            if bid is not None:
                bids[site] = bid
        if not bids:
            raise SchedulingError(
                f"no site can run task {task_id!r} ({task.task_type})"
            )

        if not afg.requires_input_transfer(task_id):
            # Entry / no-input rule: minimise Predict alone.
            best = min(bids, key=lambda s: (bids[s].predicted_time, s))
        else:
            # Dataflow rule: Timetotal = parent-site transfers + Predict.
            def time_total(site: str) -> float:
                transfer = 0.0
                for parent in afg.parents(task_id):
                    parent_site = site_by_task[parent]
                    size_mb = afg.edge_size_between(parent, task_id)
                    transfer += view.site_transfer_time(parent_site, site, size_mb)
                # explicit file inputs are staged from the submitting site
                file_mb = task.properties.total_input_size_mb()
                if file_mb > 0:
                    transfer += view.site_transfer_time(
                        view.local_site, site, file_mb
                    )
                return transfer + bids[site].predicted_time

            best = min(bids, key=lambda s: (time_total(s), s))

        bid = bids[best]
        return TaskAssignment(
            task_id=task_id,
            site=bid.site,
            hosts=bid.hosts,
            predicted_time=bid.predicted_time,
        )

"""The Host Selection Algorithm — paper Figure 3, step for step.

    1. Retrieve task-specific parameters of AFG tasks from the
       task-performance database.
    2. Retrieve resource-specific parameters of a set of resources,
       Rset = {R1, R2, ..., Rm}, from the resource-performance database.
    3. Set task-queue = {task_i | task_i in AFG}.
    4. For each task_i in task-queue:
         - Evaluate the performance prediction time of task_i,
           Predict(task_i, Rj), for all Rj in Rset.
         - Assign task_i to Rj, which minimizes the performance
           prediction time Predict(task_i, Rj).

Each site runs this independently on the multicast AFG and reports
"the mapping information of each task, i.e., machine name and predicted
execution time, to the local site" — that report is the
:class:`HostSelectionResult` returned here.

The paper's parallel-task extension ("the host selection algorithm is
updated to select the number of machines required within the site") is
implemented by choosing the ``n_nodes`` hosts with the smallest
predicted slice times; the bid's time is the slowest chosen slice.

**One documented deviation (schedule-aware load accounting).**  Read
literally, step 4 predicts every task against the *same* repository
load values, so all comparable tasks collapse onto the single
fastest host — for a bag of independent tasks this is catastrophically
worse than random placement, which cannot be the algorithm behind a
scheduler whose stated objective is "to minimize the schedule length".
The refs the paper builds on ([2, 4], and the federated model of [5])
all account for the processor's committed work.  We therefore walk the
task queue in level-priority order and, when predicting ``task_i`` on
host ``R``, add one run-queue entry for every task *already assigned to
``R`` in this round that can execute concurrently with ``task_i``*
(i.e. is neither its ancestor nor descendant in the AFG).  Chains keep
preferring the fastest host (their stages never overlap); independent
bags spread.  DESIGN.md §5 records this as the reproduction's only
algorithmic interpolation.

Candidate filtering honours, in order: host up-status, the
task-constraints database (executable present), the user's preferred
machine, and the preferred machine type (matched against the host's
``arch``/``os`` attributes).  A task with no feasible candidate at this
site (including tasks absent from the site's task-performance DB) is
simply absent from the result — the site declines to bid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import repro.perf as perf
from repro.afg.graph import ApplicationFlowGraph
from repro.afg.task import TaskNode
from repro.metrics.registry import MetricsRegistry, NULL_METRICS
from repro.repository.resources import HostRecord
from repro.repository.store import SiteRepository
from repro.scheduler.prediction import PredictionModel
from repro.trace.events import EventKind
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = [
    "CommitmentLedger",
    "HostSelectionResult",
    "bid_for_task",
    "candidate_hosts",
    "select_hosts",
]


@dataclass(frozen=True)
class HostSelectionResult:
    """One site's bid for one task: machine name(s) + predicted time."""

    task_id: str
    site: str
    hosts: Tuple[str, ...]
    predicted_time: float

    @property
    def primary_host(self) -> str:
        return self.hosts[0]


def _matches_machine_type(record: HostRecord, machine_type: str) -> bool:
    """Case-insensitive match against the host's arch/OS attributes.

    Figure 1 writes types like ``<SUN solaris>``; we accept any
    whitespace-separated tokens all matching the host's arch or OS.
    """
    tokens = machine_type.lower().split()
    attrs = {record.spec.arch.lower(), record.spec.os.lower()}
    # vendor aliases seen in the paper's examples ("SUN solaris")
    aliases = {"sun": "sparc"}
    normalized = {aliases.get(t, t) for t in tokens}
    return normalized <= attrs


def candidate_hosts(task: TaskNode, repo: SiteRepository) -> List[HostRecord]:
    """Feasible hosts for ``task`` at this site, in stable name order.

    The sorted order is a repository invariant the rest of host
    selection depends on (bids are built positionally from it); the
    indexed and reference paths both uphold it, and
    ``tests/scheduler/test_host_index.py`` pins the two paths to the
    same answer.  Preference filters preserve relative order, so
    filtering the index's pre-sorted table equals sorting the filtered
    reference scan.
    """
    if perf.FLAGS.host_index:
        records = repo.host_index.runnable_up_hosts(task.task_type)
        presorted = True
    else:
        records = repo.runnable_up_hosts(task.task_type)
        presorted = False
    props = task.properties
    if props.preferred_machine is not None:
        records = [r for r in records if r.name == props.preferred_machine]
    if props.preferred_machine_type is not None:
        records = [
            r for r in records if _matches_machine_type(r, props.preferred_machine_type)
        ]
    if presorted:
        return records
    return sorted(records, key=lambda r: r.name)


def _reachability(afg: ApplicationFlowGraph) -> Dict[str, Set[str]]:
    """task -> set of tasks ordered with it (ancestors + descendants).

    Memoized on the graph object against its ``structure_version``:
    every participating site computes reachability for the *same*
    multicast AFG, and the sets depend only on graph structure.  The
    cached dict is shared read-only by all callers.
    """
    cached = getattr(afg, "_reachability_cache", None)
    version = afg.structure_version
    if cached is not None and cached[0] == version:
        return cached[1]
    order = afg.topological_order()
    ancestors: Dict[str, Set[str]] = {}
    for task_id in order:
        acc: Set[str] = set()
        for parent in afg.parents(task_id):
            acc.add(parent)
            acc |= ancestors[parent]
        ancestors[task_id] = acc
    related: Dict[str, Set[str]] = {t: set(ancestors[t]) for t in order}
    for task_id in order:
        for ancestor in ancestors[task_id]:
            related[ancestor].add(task_id)
    afg._reachability_cache = (version, related)
    return related


class CommitmentLedger:
    """In-round commitment accounting with O(|related|) queries.

    The reference path answers "how many tasks already placed on host
    ``R`` can run concurrently with ``task_i``?" by rescanning *every*
    commitment on ``R`` for every (task, host) prediction — O(total
    commitments) per pair, quadratic over a large bag.  The ledger
    keeps per-host totals and, once per queried task, a per-host count
    of that task's *related* (ordered) placements; the concurrent count
    is then ``total[R] - related_on[R]`` in O(1).

    Equivalence: every committed task appears at most once per host
    (bid host groups are duplicate-free), and relatedness is symmetric,
    so subtracting the related placements from the total is exactly the
    reference's "count others not in related[task]" — same float, every
    query.
    """

    def __init__(self, related: Dict[str, Set[str]]):
        self._related = related
        self._total: Dict[str, int] = {}
        self._placed_on: Dict[str, Tuple[str, ...]] = {}
        self._for_task: Optional[str] = None
        self._related_on: Dict[str, int] = {}

    def commit(self, task_id: str, hosts: Tuple[str, ...]) -> None:
        """Record ``task_id`` as placed on ``hosts`` this round."""
        self._placed_on[task_id] = tuple(hosts)
        total = self._total
        for host in hosts:
            total[host] = total.get(host, 0) + 1
        self._for_task = None  # per-task overlap is stale now

    def extra_load(self, task_id: str, host_name: str) -> float:
        """Concurrent in-round commitments on ``host_name`` vs ``task_id``."""
        if task_id != self._for_task:
            self._begin(task_id)
        return float(
            self._total.get(host_name, 0) - self._related_on.get(host_name, 0)
        )

    def extra_load_fn(self, task_id: str):
        """A one-argument ``extra_load_of`` bound to ``task_id``.

        Precomputes the related-placement overlay now and returns a
        flat closure — one call per host query instead of the
        closure -> method trampoline, which the profile showed costing
        as much as the arithmetic it wrapped.
        """
        if task_id != self._for_task:
            self._begin(task_id)
        total_get = self._total.get
        related_on = self._related_on
        if not related_on:
            # bag-of-tasks / entry-wave common case: nothing placed so
            # far is ordered with this task, the count is the raw total
            # (an int — exact under IEEE promotion, and int and float
            # loads hash to the same memo key)
            def extra_load_of(host_name: str) -> float:
                return total_get(host_name, 0)

            return extra_load_of
        related_get = related_on.get

        def extra_load_of(host_name: str) -> float:
            return float(total_get(host_name, 0) - related_get(host_name, 0))

        return extra_load_of

    def _begin(self, task_id: str) -> None:
        related_on: Dict[str, int] = {}
        placed_on = self._placed_on
        for other in self._related[task_id]:
            hosts = placed_on.get(other)
            if hosts:
                for host in hosts:
                    related_on[host] = related_on.get(host, 0) + 1
        self._related_on = related_on
        self._for_task = task_id


def bid_for_task(
    task: TaskNode,
    repo: SiteRepository,
    model: PredictionModel,
    extra_load_of,
    health_of=None,
) -> Optional[HostSelectionResult]:
    """Figure 3's inner step for one task at one site.

    Evaluates ``Predict(task, Rj)`` over every feasible host (with the
    caller-supplied in-round load ``extra_load_of(host_name)`` added)
    and returns the minimising host group, or ``None`` when the site
    cannot run the task (no feasible hosts, task unknown to its DBs).

    ``health_of`` (optional, from :class:`~repro.runtime.straggler.
    HostHealth`) maps a host name to a multiplicative prediction
    penalty, or ``None`` for a quarantined host, which is excluded from
    the candidate set entirely.
    """
    props = task.properties
    candidates = candidate_hosts(task, repo)
    n_nodes = props.n_nodes if props.is_parallel else 1
    if not repo.task_perf.has(task.task_type):
        return None
    factors: Dict[str, float] = {}
    if health_of is not None:
        # rebuild rather than remove-in-place: candidate lists may be
        # the host index's cached table, which is shared and read-only
        kept = []
        for record in candidates:
            factor = health_of(record.name)
            if factor is not None:  # None = quarantined, excluded
                factors[record.name] = factor
                kept.append(record)
        candidates = kept
    if len(candidates) < n_nodes:
        return None
    memory_mb = props.memory_mb if props.memory_mb > 0 else None
    task_type = task.task_type
    scale = props.workload_scale
    if perf.FLAGS.predict_cache and n_nodes == 1:
        # The hot case (every sequential task, every site, every round):
        # an explicit min-loop with hoisted locals.  Equivalent to
        # ``min((time, name) for ...)``: the smallest time wins, a time
        # tie breaks to the smaller name, and names are unique so the
        # tuple comparison never ties out.  ``x * 1.0`` is bit-exact
        # ``x`` for finite predictions, so the factor multiply is
        # skipped entirely when no health hook supplied one.
        table = repo.predict_cache.table(model, task_type, scale, 1, memory_mb)
        table_get = table.get
        model_predict = model.predict
        task_perf = repo.task_perf
        factor_get = factors.get if factors else None
        best_time = best_name = None
        for record in candidates:
            name = record.spec.name
            extra = extra_load_of(name)
            key = (name, record.load, record.available_memory_mb, extra)
            t = table_get(key)
            if t is None:
                t = model_predict(
                    task_type, scale, 1, record, task_perf,
                    memory_mb=memory_mb, extra_load=extra,
                )
                table[key] = t
            if factor_get is not None:
                t *= factor_get(name, 1.0)
            if (
                best_name is None
                or t < best_time
                or (t == best_time and name < best_name)
            ):
                best_time, best_name = t, name
        return HostSelectionResult(
            task_id=task.id,
            site=repo.site_name,
            hosts=(best_name,),
            predicted_time=best_time,
        )
    if perf.FLAGS.predict_cache:
        cache = repo.predict_cache
        pairs = (
            (
                cache.predict(
                    model,
                    task_type,
                    scale,
                    n_nodes,
                    record,
                    memory_mb,
                    float(extra_load_of(record.name)),
                )
                * factors.get(record.name, 1.0),
                record.name,
            )
            for record in candidates
        )
    else:
        pairs = (
            (
                model.predict(
                    task_type,
                    scale,
                    n_nodes,
                    record,
                    repo.task_perf,
                    memory_mb=memory_mb,
                    extra_load=float(extra_load_of(record.name)),
                )
                * factors.get(record.name, 1.0),
                record.name,
            )
            for record in candidates
        )
    if n_nodes == 1:
        # min over (time, name) tuples is sorted(...)[0]: same winner,
        # same tie-break, no O(m log m) sort for the common case
        best_time, best_name = min(pairs)
        chosen_hosts: Tuple[str, ...] = (best_name,)
        predicted_time = best_time
    else:
        chosen = sorted(pairs)[:n_nodes]
        chosen_hosts = tuple(name for _, name in chosen)
        # parallel slices run concurrently; the group finishes with its
        # slowest member (the largest selected prediction)
        predicted_time = chosen[-1][0]
    return HostSelectionResult(
        task_id=task.id,
        site=repo.site_name,
        hosts=chosen_hosts,
        predicted_time=predicted_time,
    )


def select_hosts(
    afg: ApplicationFlowGraph,
    repo: SiteRepository,
    model: Optional[PredictionModel] = None,
    order: Optional[List[str]] = None,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
    health_of=None,
) -> Dict[str, HostSelectionResult]:
    """Run Figure 3 at one site; return this site's bids, keyed by task id.

    ``order`` overrides the queue order (default: level priority); the
    E9 ablation passes a FIFO/topological order here.  ``tracer``
    records one :data:`~repro.trace.events.EventKind.HOST_BID` event
    per bid produced; ``metrics`` counts bids and declines per site.
    ``health_of`` is the optional host-health penalty/quarantine hook
    (see :func:`bid_for_task`).
    """
    model = model or PredictionModel()
    results: Dict[str, HostSelectionResult] = {}

    # Step 3: every AFG task goes in the queue.  The queue is walked in
    # level-priority order (§3: levels are computed before scheduling);
    # tasks whose type the site's task-performance DB lacks cost 0 for
    # ordering purposes and will produce no bid below.
    def base_cost(task_id: str) -> float:
        node = afg.task(task_id)
        try:
            return repo.task_perf.base_cost(
                node.task_type, node.properties.workload_scale
            )
        except KeyError:
            return 0.0

    if order is None:
        from repro.afg.levels import compute_levels

        levels = compute_levels(afg, base_cost)
        queue = sorted(levels, key=lambda t: (-levels[t], t))
    else:
        if sorted(order) != sorted(t.id for t in afg):
            raise ValueError("order must be a permutation of the AFG's tasks")
        queue = list(order)

    related = _reachability(afg)
    ledger = CommitmentLedger(related) if perf.FLAGS.commit_ledger else None
    #: in-round commitments: host -> task ids assigned there (reference)
    committed: Dict[str, List[str]] = {}

    for task_id in queue:
        task = afg.task(task_id)

        if ledger is not None:
            concurrent_commitments = ledger.extra_load_fn(task_id)
        else:
            def concurrent_commitments(host_name: str, task_id=task_id) -> float:
                others = committed.get(host_name, ())
                return float(
                    sum(1 for other in others if other not in related[task_id])
                )

        # Step 4: Predict(task, Rj) for every feasible Rj, with the
        # in-round load of concurrent commitments added.
        bid = bid_for_task(task, repo, model, concurrent_commitments, health_of)
        if bid is None:
            if metrics.enabled:
                metrics.counter(
                    "vdce_host_bid_declines_total",
                    "tasks a site could not bid on (no feasible host)",
                ).inc(site=repo.site_name)
            continue  # site cannot run this task; no bid
        if metrics.enabled:
            metrics.counter(
                "vdce_host_bids_total",
                "host-selection bids produced, per site",
            ).inc(site=repo.site_name)
        if tracer.enabled:
            tracer.emit(
                EventKind.HOST_BID, source=f"hostsel:{repo.site_name}",
                task=task.id, site=bid.site, hosts=bid.hosts,
                predicted_time=bid.predicted_time,
            )
        if ledger is not None:
            ledger.commit(task_id, bid.hosts)
        else:
            for host_name in bid.hosts:
                committed.setdefault(host_name, []).append(task_id)
        results[task.id] = bid
    return results

"""FederationView: what a scheduler is allowed to see.

The paper's scheduler reads exactly three things: the site repositories
(its own plus those of the k nearest remote sites, reached via the AFG
multicast), the network attributes between sites, and the AFG itself.
This class packages the first two so schedulers stay pure functions —
the runtime layer is responsible for the message passing that, on the
real system, moves this information around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

#: (site_a, site_b, size_mb) -> seconds
TransferEstimator = Callable[[str, str, float], float]

from repro.repository.store import SiteRepository
from repro.sim.topology import Topology

__all__ = ["FederationView"]


@dataclass
class FederationView:
    """Read-only federation snapshot for one scheduling decision.

    ``neighbor_order`` lists remote sites from nearest to farthest (the
    paper's "k nearest VDCE neighbor sites" are its first k entries).
    ``site_transfer_time(site_a, site_b, size_mb)`` estimates inter-site
    transfer times from the repository's network attributes.
    """

    local_site: str
    repositories: Dict[str, SiteRepository]
    neighbor_order: List[str]
    site_transfer_time: TransferEstimator

    def __post_init__(self) -> None:
        if self.local_site not in self.repositories:
            raise ValueError(
                f"local site {self.local_site!r} has no repository"
            )
        for name in self.neighbor_order:
            if name not in self.repositories:
                raise ValueError(f"neighbor {name!r} has no repository")
            if name == self.local_site:
                raise ValueError("local site cannot be its own neighbor")

    # -- construction -----------------------------------------------------

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        repositories: Mapping[str, SiteRepository],
        local_site: str,
    ) -> "FederationView":
        """Build a view over a simulated deployment."""
        missing = [s for s in topology.site_names if s not in repositories]
        if missing:
            raise ValueError(f"sites without repositories: {missing}")
        return cls(
            local_site=local_site,
            repositories=dict(repositories),
            neighbor_order=topology.neighbor_sites(local_site),
            site_transfer_time=topology.network.site_transfer_time_estimate,
        )

    # -- queries --------------------------------------------------------------

    def local_repository(self) -> SiteRepository:
        return self.repositories[self.local_site]

    def repository(self, site: str) -> SiteRepository:
        try:
            return self.repositories[site]
        except KeyError:
            raise KeyError(f"no repository for site {site!r}") from None

    def restricted(self, responsive: "set[str] | frozenset[str]") -> "FederationView":
        """A copy whose neighbours are limited to ``responsive`` sites.

        The runtime uses this when some of the k nearest sites fail to
        answer the AFG multicast within the bid deadline: scheduling
        proceeds over whoever answered (the local site always
        participates), degrading to local-only under a full partition.
        """
        return FederationView(
            local_site=self.local_site,
            repositories=self.repositories,
            neighbor_order=[s for s in self.neighbor_order if s in responsive],
            site_transfer_time=self.site_transfer_time,
        )

    def remote_sites(self, k: Optional[int] = None) -> List[str]:
        """The k nearest remote sites (Fig. 2 step 2); all if k is None."""
        if k is None:
            return list(self.neighbor_order)
        if k < 0:
            raise ValueError("k must be non-negative")
        return self.neighbor_order[:k]

    def participating_sites(self, k: Optional[int] = None) -> List[str]:
        """Local site + the selected remote sites, local first."""
        return [self.local_site] + self.remote_sites(k)

    def site_of_host(self, host_name: str) -> str:
        for site, repo in self.repositories.items():
            if repo.resources.has_host(host_name):
                return site
        raise KeyError(f"host {host_name!r} not found in any repository")

"""Network substrate: LAN/WAN links with latency, bandwidth and sharing.

VDCE's site scheduler charges a task placed away from its parents an
*inter-task transfer time* — "based on the network transfer time
between a site and the parent's site, and the size of the transfer"
(paper §3).  This module provides both faces of that quantity:

* :meth:`Network.transfer_time_estimate` — the analytic
  ``latency + size / bandwidth`` figure the *scheduler* uses (it only
  has database parameters, not live link state);
* :meth:`Network.transfer` — an actual simulated transfer on a
  fair-share link, which is what the *runtime* (Data Manager) incurs.
  Concurrent transfers on one link share its bandwidth equally, so the
  estimate and the realised time diverge under contention exactly as
  they would on the paper's campus network.

Intra-host moves are free bar a tiny constant; intra-site moves use the
site's LAN link; inter-site moves use the WAN link for that site pair.

Links can also *fail*: :meth:`Link.fail` takes a link down (killing any
in-flight transfer with :class:`LinkDownError`) and :meth:`Link.recover`
brings it back.  :meth:`Network.partition` expresses a WAN partition as
the set of cross-group links being down, and per-link ``loss_prob`` /
``extra_delay_s`` knobs model lossy or slow *control-plane* messaging
(read by :mod:`repro.net.rpc`; bulk data transfers are unaffected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.kernel import Signal, SimulationError, Simulator

__all__ = [
    "Link",
    "LinkDownError",
    "LinkSpec",
    "Network",
    "TransferModel",
    "Transfer",
]

#: time charged for a "transfer" between two tasks on the same host
LOCAL_COPY_TIME = 1e-6

_MIN_RATE = 1e-12


class LinkDownError(SimulationError):
    """A transfer (or message) died because its link went down."""

    def __init__(self, link_name: str, label: str = ""):
        detail = f" carrying {label!r}" if label else ""
        super().__init__(f"link {link_name!r} went down{detail}")
        self.link_name = link_name
        self.label = label


@dataclass(frozen=True)
class LinkSpec:
    """Static link parameters (what the resource-performance DB stores).

    ``bandwidth_mbps`` is megabytes per second to keep workload file
    sizes (expressed in MB, as in the paper's SIZE= properties) simple.
    """

    latency_s: float = 0.001
    bandwidth_mbps: float = 10.0
    name: str = "link"

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"link {self.name!r}: negative latency")
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"link {self.name!r}: bandwidth must be positive")

    def transfer_time(self, size_mb: float) -> float:
        """Analytic un-contended transfer time for ``size_mb`` megabytes."""
        if size_mb < 0:
            raise ValueError(f"negative transfer size: {size_mb}")
        return self.latency_s + size_mb / self.bandwidth_mbps


class Transfer:
    """One in-flight transfer on a fair-share :class:`Link`."""

    def __init__(self, link: "Link", size_mb: float, label: str):
        self.link = link
        self.size_mb = float(size_mb)
        self.remaining_mb = float(size_mb)
        self.label = label
        self.started_at = link.sim.now
        self.finished_at: Optional[float] = None
        self.done: Signal = link.sim.signal(f"{link.spec.name}:{label}:done")
        #: payload damage drawn at completion on an armed link:
        #: None (clean) | "bitflip" | "truncation".  The simulated value
        #: itself is never mangled (the pure-evaluation oracle must
        #: hold); receivers with integrity checking enabled treat a
        #: non-None marker as a content-hash mismatch.
        self.corruption: Optional[str] = None

    @property
    def elapsed(self) -> float:
        end = self.finished_at if self.finished_at is not None else self.link.sim.now
        return end - self.started_at


class Link:
    """A shared link: concurrent transfers split bandwidth equally.

    The same settle/reschedule machinery as :class:`repro.sim.host.Host`
    (a processor-sharing server over megabytes instead of work units).
    Latency is applied up front as a fixed delay before the transfer
    joins the bandwidth-sharing phase.
    """

    def __init__(self, sim: Simulator, spec: LinkSpec):
        self.sim = sim
        self.spec = spec
        self._active: list[Transfer] = []
        self._last_settle = sim.now
        self._completion_call = None
        self.bytes_carried_mb = 0.0
        self.transfer_count = 0
        #: liveness: a down link kills in-flight transfers and rejects new ones
        self.up = True
        self.failures = 0
        #: probability a single control-plane message on this link is lost
        #: (read by repro.net.rpc; bulk transfers are not affected)
        self.loss_prob = 0.0
        #: additional one-way control-message delay (congestion, long routes)
        self.extra_delay_s = 0.0
        #: per-transfer payload damage probabilities (data plane).  Drawn
        #: once per completed transfer from the link's own
        #: ``corrupt:<name>`` RNG stream, and only when armed — an
        #: unarmed link draws nothing, so fault-free runs are
        #: byte-identical with or without the integrity machinery.
        self.corrupt_prob = 0.0
        self.truncate_prob = 0.0
        self.corruptions = 0
        #: ground truth for the chaos auditor: (time, label, mode)
        self.corruption_log: List[Tuple[float, str, str]] = []

    @property
    def n_active(self) -> int:
        return len(self._active)

    def per_transfer_rate(self) -> float:
        if not self._active:
            return 0.0
        return self.spec.bandwidth_mbps / len(self._active)

    def fail(self) -> None:
        """Take the link down, killing every in-flight transfer.

        Idempotent.  Transfers still in their latency phase die when the
        latency timer expires and finds the link down.
        """
        if not self.up:
            return
        self._settle()
        self.up = False
        self.failures += 1
        victims, self._active = list(self._active), []
        if self._completion_call is not None:
            self._completion_call.cancelled = True
            self._completion_call = None
        self.sim.trace("net.link.down", link=self.spec.name, victims=len(victims))
        for t in victims:
            t.finished_at = self.sim.now
            t.done.fail(LinkDownError(self.spec.name, t.label))

    def recover(self) -> None:
        """Bring the link back up.  Idempotent."""
        if self.up:
            return
        self.up = True
        self._last_settle = self.sim.now
        self.sim.trace("net.link.up", link=self.spec.name)

    def transfer(self, size_mb: float, label: str = "xfer") -> Transfer:
        """Start a transfer; its ``done`` signal fires on completion.

        On a down link — at start, or by the end of the latency phase —
        ``done`` fails with :class:`LinkDownError` instead.
        """
        if size_mb < 0:
            raise SimulationError(f"negative transfer size: {size_mb}")
        t = Transfer(self, size_mb, label)
        self.transfer_count += 1
        self.bytes_carried_mb += size_mb

        def begin_bandwidth_phase() -> None:
            if not self.up:
                t.finished_at = self.sim.now
                t.done.fail(LinkDownError(self.spec.name, t.label))
                return
            self._settle()
            if t.remaining_mb <= 0.0:
                t.finished_at = self.sim.now
                self._maybe_corrupt(t)
                self.sim.call_at(self.sim.now, lambda: t.done.succeed(t))
                return
            self._active.append(t)
            self._reschedule_completion()

        if not self.up:
            # fail asynchronously so callers can always yield t.done
            def reject() -> None:
                t.finished_at = self.sim.now
                t.done.fail(LinkDownError(self.spec.name, t.label))

            self.sim.call_at(self.sim.now, reject)
            return t
        # latency phase first, then join the shared-bandwidth phase
        self.sim.call_after(self.spec.latency_s, begin_bandwidth_phase)
        self.sim.trace("net.xfer.start", link=self.spec.name, label=label, mb=size_mb)
        return t

    def _settle(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_settle
        self._last_settle = now
        if elapsed <= 0 or not self._active:
            return
        credit = elapsed * self.per_transfer_rate()
        for t in self._active:
            t.remaining_mb = max(0.0, t.remaining_mb - credit)

    def _reschedule_completion(self) -> None:
        if self._completion_call is not None:
            self._completion_call.cancelled = True
            self._completion_call = None
        if not self._active:
            return
        rate = self.per_transfer_rate()
        if rate <= _MIN_RATE:
            return
        soonest = min(t.remaining_mb for t in self._active)
        self._completion_call = self.sim.call_after(soonest / rate, self._tick)

    def _tick(self) -> None:
        self._completion_call = None
        self._settle()
        finished = [t for t in self._active if t.remaining_mb <= 1e-12]
        if not finished and self._active:
            # Float-stall guard: at large virtual times a tiny residual's
            # ETA can be below the clock's ulp, so the next tick would
            # land on the same instant, settle zero progress, and loop
            # forever.  Such residuals are complete by construction.
            rate = self.per_transfer_rate()
            if rate > _MIN_RATE:
                soonest = min(t.remaining_mb for t in self._active)
                if self.sim.now + soonest / rate <= self.sim.now:
                    finished = [
                        t for t in self._active if t.remaining_mb <= soonest
                    ]
        for t in finished:
            self._active.remove(t)
            t.finished_at = self.sim.now
            self._maybe_corrupt(t)
            self.sim.trace(
                "net.xfer.done", link=self.spec.name, label=t.label, elapsed=t.elapsed
            )
            t.done.succeed(t)
        self._reschedule_completion()

    def _maybe_corrupt(self, t: Transfer) -> None:
        """Draw payload damage for one completing transfer.

        One uniform per transfer, from this link's own RNG stream, only
        while armed: completion *order* on a link is deterministic, so
        the draw sequence — and with it the whole campaign — is too.
        """
        if self.corrupt_prob <= 0.0 and self.truncate_prob <= 0.0:
            return
        u = float(self.sim.rng(f"corrupt:{self.spec.name}").random())
        if u < self.corrupt_prob:
            t.corruption = "bitflip"
        elif u < self.corrupt_prob + self.truncate_prob:
            t.corruption = "truncation"
        else:
            return
        self.corruptions += 1
        self.corruption_log.append((self.sim.now, t.label, t.corruption))
        self.sim.trace(
            "net.xfer.corrupt", link=self.spec.name, label=t.label, mode=t.corruption
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.spec.name!r}, active={len(self._active)})"


@dataclass(frozen=True)
class TransferModel:
    """Analytic view of the network used by schedulers.

    Built from the same :class:`LinkSpec` parameters, independent of the
    live :class:`Network`, because the paper's scheduler works off the
    site repository, not live links.
    """

    local_copy_time: float = LOCAL_COPY_TIME
    lan: LinkSpec = LinkSpec(name="lan")
    wan: LinkSpec = LinkSpec(latency_s=0.05, bandwidth_mbps=1.0, name="wan")

    def estimate(self, same_host: bool, same_site: bool, size_mb: float) -> float:
        if same_host:
            return self.local_copy_time
        if same_site:
            return self.lan.transfer_time(size_mb)
        return self.wan.transfer_time(size_mb)


class Network:
    """Topology-wide link registry: per-site LANs, per-pair WAN links."""

    def __init__(self, sim: Simulator, default_lan: LinkSpec | None = None,
                 default_wan: LinkSpec | None = None):
        self.sim = sim
        self.default_lan = default_lan or LinkSpec(
            latency_s=0.0005, bandwidth_mbps=10.0, name="lan-default"
        )
        self.default_wan = default_wan or LinkSpec(
            latency_s=0.05, bandwidth_mbps=1.0, name="wan-default"
        )
        self._lans: Dict[str, Link] = {}
        self._wans: Dict[Tuple[str, str], Link] = {}
        self._host_sites: Dict[str, str] = {}
        #: site -> partition group id while a partition is active
        self._partition_group: Dict[str, int] = {}
        #: WAN keys this partition took down (recovered on heal)
        self._partition_links: Set[Tuple[str, str]] = set()

    # -- construction ----------------------------------------------------

    def register_host(self, host_name: str, site_name: str) -> None:
        if host_name in self._host_sites:
            raise SimulationError(f"host {host_name!r} registered twice")
        self._host_sites[host_name] = site_name
        if site_name not in self._lans:
            self.set_lan(site_name, self.default_lan)

    def has_host(self, host_name: str) -> bool:
        return host_name in self._host_sites

    def set_lan(self, site_name: str, spec: LinkSpec) -> None:
        spec = LinkSpec(spec.latency_s, spec.bandwidth_mbps, f"lan:{site_name}")
        self._lans[site_name] = Link(self.sim, spec)

    def set_wan(self, site_a: str, site_b: str, spec: LinkSpec) -> None:
        key = self._wan_key(site_a, site_b)
        spec = LinkSpec(spec.latency_s, spec.bandwidth_mbps, f"wan:{key[0]}-{key[1]}")
        self._wans[key] = Link(self.sim, spec)

    @staticmethod
    def _wan_key(site_a: str, site_b: str) -> Tuple[str, str]:
        return (site_a, site_b) if site_a <= site_b else (site_b, site_a)

    # -- lookup ------------------------------------------------------------

    def site_of(self, host_name: str) -> str:
        try:
            return self._host_sites[host_name]
        except KeyError:
            raise SimulationError(f"unknown host {host_name!r}") from None

    def link_between(self, src_host: str, dst_host: str) -> Optional[Link]:
        """The link a transfer between two hosts rides on (None = local)."""
        if src_host == dst_host:
            return None
        site_a, site_b = self.site_of(src_host), self.site_of(dst_host)
        if site_a == site_b:
            return self._lans[site_a]
        return self.wan_link(site_a, site_b)

    def wan_link(self, site_a: str, site_b: str) -> Link:
        key = self._wan_key(site_a, site_b)
        if key not in self._wans:
            self.set_wan(site_a, site_b, self.default_wan)
            if self._crosses_partition(site_a, site_b):
                # lazily created mid-partition: it is down like its peers
                self._wans[key].fail()
                self._partition_links.add(key)
        return self._wans[key]

    def lan_link(self, site_name: str) -> Link:
        if site_name not in self._lans:
            self.set_lan(site_name, self.default_lan)
        return self._lans[site_name]

    @property
    def site_names(self) -> List[str]:
        return sorted(self._lans)

    def links_of_site(self, site_name: str) -> List[Link]:
        """The site's LAN plus every WAN link touching it (full mesh).

        Used for whole-site outages: taking all of these down isolates
        the site at the network layer.
        """
        links = [self.lan_link(site_name)]
        for other in self.site_names:
            if other != site_name:
                links.append(self.wan_link(site_name, other))
        return links

    # -- partitions -------------------------------------------------------

    def _crosses_partition(self, site_a: str, site_b: str) -> bool:
        if not self._partition_group:
            return False
        ga = self._partition_group.get(site_a)
        gb = self._partition_group.get(site_b)
        return ga != gb

    def partition(self, groups: Sequence[Sequence[str]]) -> List[Tuple[str, str]]:
        """Partition the WAN: sites in different groups cannot talk.

        Every registered site must appear in exactly one group.  Takes
        down each WAN link crossing a group boundary (killing in-flight
        transfers) and remembers which, so :meth:`heal_partition`
        restores exactly those — a link downed independently stays down.
        Returns the downed ``(site_a, site_b)`` keys.
        """
        if self._partition_group:
            raise SimulationError("a partition is already active")
        assignment: Dict[str, int] = {}
        for gid, group in enumerate(groups):
            for site in group:
                if site not in self._lans:
                    raise SimulationError(f"unknown site {site!r}")
                if site in assignment:
                    raise SimulationError(f"site {site!r} in two groups")
                assignment[site] = gid
        missing = [s for s in self.site_names if s not in assignment]
        if missing:
            raise SimulationError(f"sites not assigned to a group: {missing}")
        self._partition_group = assignment
        downed: List[Tuple[str, str]] = []
        sites = self.site_names
        for i, site_a in enumerate(sites):
            for site_b in sites[i + 1:]:
                if assignment[site_a] == assignment[site_b]:
                    continue
                key = self._wan_key(site_a, site_b)
                if key not in self._wans:
                    self.set_wan(site_a, site_b, self.default_wan)
                link = self._wans[key]
                if link.up:
                    link.fail()
                    self._partition_links.add(key)
                    downed.append(key)
        return downed

    def heal_partition(self) -> List[Tuple[str, str]]:
        """End the active partition, recovering the links it took down."""
        healed = sorted(self._partition_links)
        for key in healed:
            self._wans[key].recover()
        self._partition_links.clear()
        self._partition_group.clear()
        return healed

    @property
    def partitioned(self) -> bool:
        return bool(self._partition_group)

    def reachable(self, site_a: str, site_b: str) -> bool:
        """Can control traffic flow between two sites right now?"""
        if site_a == site_b:
            return self.lan_link(site_a).up
        return self.wan_link(site_a, site_b).up

    # -- control-message quality knobs ------------------------------------

    def set_message_loss(self, prob: float, site_a: Optional[str] = None,
                         site_b: Optional[str] = None) -> None:
        """Set control-message loss probability on WAN links.

        With both sites given, targets that pair's link; with neither,
        applies to every WAN link of the (full-mesh) federation.
        """
        if not (0.0 <= prob < 1.0):
            raise SimulationError("loss probability must be in [0, 1)")
        for link in self._select_wans(site_a, site_b):
            link.loss_prob = prob

    def set_message_delay(self, extra_s: float, site_a: Optional[str] = None,
                          site_b: Optional[str] = None) -> None:
        """Add one-way control-message delay on WAN links."""
        if extra_s < 0:
            raise SimulationError("extra delay must be non-negative")
        for link in self._select_wans(site_a, site_b):
            link.extra_delay_s = extra_s

    def set_corruption(self, corrupt_prob: float, truncate_prob: float = 0.0,
                       site_a: Optional[str] = None,
                       site_b: Optional[str] = None) -> None:
        """Arm data-plane payload damage on WAN links.

        With both sites given, targets that pair's link; with neither,
        every WAN link of the (full-mesh) federation.  Unlike
        ``loss_prob`` this affects *bulk data transfers*: a completing
        transfer is marked bit-flipped or truncated with the given
        probabilities (one draw per transfer, per-link RNG stream).
        """
        if corrupt_prob < 0 or truncate_prob < 0 or corrupt_prob + truncate_prob >= 1.0:
            raise SimulationError(
                "corruption probabilities must be non-negative and sum below 1"
            )
        for link in self._select_wans(site_a, site_b):
            link.corrupt_prob = corrupt_prob
            link.truncate_prob = truncate_prob

    def _select_wans(self, site_a: Optional[str], site_b: Optional[str]) -> List[Link]:
        if (site_a is None) != (site_b is None):
            raise SimulationError("give both sites or neither")
        if site_a is not None:
            return [self.wan_link(site_a, site_b)]
        sites = self.site_names
        return [
            self.wan_link(a, b)
            for i, a in enumerate(sites)
            for b in sites[i + 1:]
        ]

    # -- use ------------------------------------------------------------------

    def transfer_time_estimate(self, src_host: str, dst_host: str, size_mb: float) -> float:
        """Scheduler-facing analytic transfer time (no contention)."""
        link = self.link_between(src_host, dst_host)
        if link is None:
            return LOCAL_COPY_TIME
        return link.spec.transfer_time(size_mb)

    def site_transfer_time_estimate(self, site_a: str, site_b: str, size_mb: float) -> float:
        """Site-granularity estimate used by the site scheduler (Fig. 2)."""
        if site_a == site_b:
            return self.lan_link(site_a).spec.transfer_time(size_mb)
        return self.wan_link(site_a, site_b).spec.transfer_time(size_mb)

    def transfer(self, src_host: str, dst_host: str, size_mb: float,
                 label: str = "xfer") -> Transfer:
        """Run a real (simulated, contention-aware) transfer."""
        link = self.link_between(src_host, dst_host)
        if link is None:
            # local move: complete after the constant copy time
            t = Transfer(_LocalLink(self.sim), size_mb, label)
            t.remaining_mb = 0.0

            def finish() -> None:
                t.finished_at = self.sim.now
                t.done.succeed(t)

            self.sim.call_after(LOCAL_COPY_TIME, finish)
            return t
        return link.transfer(size_mb, label=label)


class _LocalLink:
    """Stand-in link object for same-host transfers."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.spec = LinkSpec(latency_s=0.0, bandwidth_mbps=1e9, name="local")

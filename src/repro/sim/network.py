"""Network substrate: LAN/WAN links with latency, bandwidth and sharing.

VDCE's site scheduler charges a task placed away from its parents an
*inter-task transfer time* — "based on the network transfer time
between a site and the parent's site, and the size of the transfer"
(paper §3).  This module provides both faces of that quantity:

* :meth:`Network.transfer_time_estimate` — the analytic
  ``latency + size / bandwidth`` figure the *scheduler* uses (it only
  has database parameters, not live link state);
* :meth:`Network.transfer` — an actual simulated transfer on a
  fair-share link, which is what the *runtime* (Data Manager) incurs.
  Concurrent transfers on one link share its bandwidth equally, so the
  estimate and the realised time diverge under contention exactly as
  they would on the paper's campus network.

Intra-host moves are free bar a tiny constant; intra-site moves use the
site's LAN link; inter-site moves use the WAN link for that site pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.sim.kernel import Signal, SimulationError, Simulator

__all__ = ["Link", "LinkSpec", "Network", "TransferModel", "Transfer"]

#: time charged for a "transfer" between two tasks on the same host
LOCAL_COPY_TIME = 1e-6

_MIN_RATE = 1e-12


@dataclass(frozen=True)
class LinkSpec:
    """Static link parameters (what the resource-performance DB stores).

    ``bandwidth_mbps`` is megabytes per second to keep workload file
    sizes (expressed in MB, as in the paper's SIZE= properties) simple.
    """

    latency_s: float = 0.001
    bandwidth_mbps: float = 10.0
    name: str = "link"

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"link {self.name!r}: negative latency")
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"link {self.name!r}: bandwidth must be positive")

    def transfer_time(self, size_mb: float) -> float:
        """Analytic un-contended transfer time for ``size_mb`` megabytes."""
        if size_mb < 0:
            raise ValueError(f"negative transfer size: {size_mb}")
        return self.latency_s + size_mb / self.bandwidth_mbps


class Transfer:
    """One in-flight transfer on a fair-share :class:`Link`."""

    def __init__(self, link: "Link", size_mb: float, label: str):
        self.link = link
        self.size_mb = float(size_mb)
        self.remaining_mb = float(size_mb)
        self.label = label
        self.started_at = link.sim.now
        self.finished_at: Optional[float] = None
        self.done: Signal = link.sim.signal(f"{link.spec.name}:{label}:done")

    @property
    def elapsed(self) -> float:
        end = self.finished_at if self.finished_at is not None else self.link.sim.now
        return end - self.started_at


class Link:
    """A shared link: concurrent transfers split bandwidth equally.

    The same settle/reschedule machinery as :class:`repro.sim.host.Host`
    (a processor-sharing server over megabytes instead of work units).
    Latency is applied up front as a fixed delay before the transfer
    joins the bandwidth-sharing phase.
    """

    def __init__(self, sim: Simulator, spec: LinkSpec):
        self.sim = sim
        self.spec = spec
        self._active: list[Transfer] = []
        self._last_settle = sim.now
        self._completion_call = None
        self.bytes_carried_mb = 0.0
        self.transfer_count = 0

    @property
    def n_active(self) -> int:
        return len(self._active)

    def per_transfer_rate(self) -> float:
        if not self._active:
            return 0.0
        return self.spec.bandwidth_mbps / len(self._active)

    def transfer(self, size_mb: float, label: str = "xfer") -> Transfer:
        """Start a transfer; its ``done`` signal fires on completion."""
        if size_mb < 0:
            raise SimulationError(f"negative transfer size: {size_mb}")
        t = Transfer(self, size_mb, label)
        self.transfer_count += 1
        self.bytes_carried_mb += size_mb

        def begin_bandwidth_phase() -> None:
            self._settle()
            if t.remaining_mb <= 0.0:
                t.finished_at = self.sim.now
                self.sim.call_at(self.sim.now, lambda: t.done.succeed(t))
                return
            self._active.append(t)
            self._reschedule_completion()

        # latency phase first, then join the shared-bandwidth phase
        self.sim.call_after(self.spec.latency_s, begin_bandwidth_phase)
        self.sim.trace("net.xfer.start", link=self.spec.name, label=label, mb=size_mb)
        return t

    def _settle(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_settle
        self._last_settle = now
        if elapsed <= 0 or not self._active:
            return
        credit = elapsed * self.per_transfer_rate()
        for t in self._active:
            t.remaining_mb = max(0.0, t.remaining_mb - credit)

    def _reschedule_completion(self) -> None:
        if self._completion_call is not None:
            self._completion_call.cancelled = True
            self._completion_call = None
        if not self._active:
            return
        rate = self.per_transfer_rate()
        if rate <= _MIN_RATE:
            return
        soonest = min(t.remaining_mb for t in self._active)
        self._completion_call = self.sim.call_after(soonest / rate, self._tick)

    def _tick(self) -> None:
        self._completion_call = None
        self._settle()
        finished = [t for t in self._active if t.remaining_mb <= 1e-12]
        if not finished and self._active:
            # Float-stall guard: at large virtual times a tiny residual's
            # ETA can be below the clock's ulp, so the next tick would
            # land on the same instant, settle zero progress, and loop
            # forever.  Such residuals are complete by construction.
            rate = self.per_transfer_rate()
            if rate > _MIN_RATE:
                soonest = min(t.remaining_mb for t in self._active)
                if self.sim.now + soonest / rate <= self.sim.now:
                    finished = [
                        t for t in self._active if t.remaining_mb <= soonest
                    ]
        for t in finished:
            self._active.remove(t)
            t.finished_at = self.sim.now
            self.sim.trace(
                "net.xfer.done", link=self.spec.name, label=t.label, elapsed=t.elapsed
            )
            t.done.succeed(t)
        self._reschedule_completion()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.spec.name!r}, active={len(self._active)})"


@dataclass(frozen=True)
class TransferModel:
    """Analytic view of the network used by schedulers.

    Built from the same :class:`LinkSpec` parameters, independent of the
    live :class:`Network`, because the paper's scheduler works off the
    site repository, not live links.
    """

    local_copy_time: float = LOCAL_COPY_TIME
    lan: LinkSpec = LinkSpec(name="lan")
    wan: LinkSpec = LinkSpec(latency_s=0.05, bandwidth_mbps=1.0, name="wan")

    def estimate(self, same_host: bool, same_site: bool, size_mb: float) -> float:
        if same_host:
            return self.local_copy_time
        if same_site:
            return self.lan.transfer_time(size_mb)
        return self.wan.transfer_time(size_mb)


class Network:
    """Topology-wide link registry: per-site LANs, per-pair WAN links."""

    def __init__(self, sim: Simulator, default_lan: LinkSpec | None = None,
                 default_wan: LinkSpec | None = None):
        self.sim = sim
        self.default_lan = default_lan or LinkSpec(
            latency_s=0.0005, bandwidth_mbps=10.0, name="lan-default"
        )
        self.default_wan = default_wan or LinkSpec(
            latency_s=0.05, bandwidth_mbps=1.0, name="wan-default"
        )
        self._lans: Dict[str, Link] = {}
        self._wans: Dict[Tuple[str, str], Link] = {}
        self._host_sites: Dict[str, str] = {}

    # -- construction ----------------------------------------------------

    def register_host(self, host_name: str, site_name: str) -> None:
        if host_name in self._host_sites:
            raise SimulationError(f"host {host_name!r} registered twice")
        self._host_sites[host_name] = site_name
        if site_name not in self._lans:
            self.set_lan(site_name, self.default_lan)

    def set_lan(self, site_name: str, spec: LinkSpec) -> None:
        spec = LinkSpec(spec.latency_s, spec.bandwidth_mbps, f"lan:{site_name}")
        self._lans[site_name] = Link(self.sim, spec)

    def set_wan(self, site_a: str, site_b: str, spec: LinkSpec) -> None:
        key = self._wan_key(site_a, site_b)
        spec = LinkSpec(spec.latency_s, spec.bandwidth_mbps, f"wan:{key[0]}-{key[1]}")
        self._wans[key] = Link(self.sim, spec)

    @staticmethod
    def _wan_key(site_a: str, site_b: str) -> Tuple[str, str]:
        return (site_a, site_b) if site_a <= site_b else (site_b, site_a)

    # -- lookup ------------------------------------------------------------

    def site_of(self, host_name: str) -> str:
        try:
            return self._host_sites[host_name]
        except KeyError:
            raise SimulationError(f"unknown host {host_name!r}") from None

    def link_between(self, src_host: str, dst_host: str) -> Optional[Link]:
        """The link a transfer between two hosts rides on (None = local)."""
        if src_host == dst_host:
            return None
        site_a, site_b = self.site_of(src_host), self.site_of(dst_host)
        if site_a == site_b:
            return self._lans[site_a]
        key = self._wan_key(site_a, site_b)
        if key not in self._wans:
            # full-mesh default: lazily create the WAN link for this pair
            self.set_wan(site_a, site_b, self.default_wan)
        return self._wans[key]

    def wan_link(self, site_a: str, site_b: str) -> Link:
        key = self._wan_key(site_a, site_b)
        if key not in self._wans:
            self.set_wan(site_a, site_b, self.default_wan)
        return self._wans[key]

    def lan_link(self, site_name: str) -> Link:
        if site_name not in self._lans:
            self.set_lan(site_name, self.default_lan)
        return self._lans[site_name]

    # -- use ------------------------------------------------------------------

    def transfer_time_estimate(self, src_host: str, dst_host: str, size_mb: float) -> float:
        """Scheduler-facing analytic transfer time (no contention)."""
        link = self.link_between(src_host, dst_host)
        if link is None:
            return LOCAL_COPY_TIME
        return link.spec.transfer_time(size_mb)

    def site_transfer_time_estimate(self, site_a: str, site_b: str, size_mb: float) -> float:
        """Site-granularity estimate used by the site scheduler (Fig. 2)."""
        if site_a == site_b:
            return self.lan_link(site_a).spec.transfer_time(size_mb)
        return self.wan_link(site_a, site_b).spec.transfer_time(size_mb)

    def transfer(self, src_host: str, dst_host: str, size_mb: float,
                 label: str = "xfer") -> Transfer:
        """Run a real (simulated, contention-aware) transfer."""
        link = self.link_between(src_host, dst_host)
        if link is None:
            # local move: complete after the constant copy time
            t = Transfer(_LocalLink(self.sim), size_mb, label)
            t.remaining_mb = 0.0

            def finish() -> None:
                t.finished_at = self.sim.now
                t.done.succeed(t)

            self.sim.call_after(LOCAL_COPY_TIME, finish)
            return t
        return link.transfer(size_mb, label=label)


class _LocalLink:
    """Stand-in link object for same-host transfers."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.spec = LinkSpec(latency_s=0.0, bandwidth_mbps=1e9, name="local")

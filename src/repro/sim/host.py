"""Simulated hosts: the machines a VDCE site is made of.

A :class:`Host` is a processor-sharing CPU with a *speed* factor
(relative to the paper's "base processor", whose timings populate the
task-performance database), a background load expressed as a run-queue
length (other users' runnable processes, as on the non-dedicated NOWs
of Yan & Zhang [6]), finite memory, and an UP/DOWN failure state.

Task executions carry *work* measured in base-processor seconds; a task
with work ``w`` running alone on an idle host of speed ``s`` finishes in
``w / s``.  With ``n`` VDCE tasks and background load ``b`` the host is
a processor-sharing queue: each task progresses at rate
``s / (n + b)``.  Memory oversubscription multiplies the rate by a
thrashing penalty.  These are exactly the quantities the VDCE
performance-prediction model (paper §3) reasons about, so prediction
accuracy in experiments is a controlled variable, not an accident.

Beyond binary up/down, a host carries a time-varying *slowdown*
factor (performance-fault model): while ``slowdown > 1`` every
resident execution progresses that many times slower, so a straggling
host genuinely stretches task execution instead of crashing it.  The
factor is driven by :class:`~repro.sim.failures.FailureInjector`
(scripted slowdowns and stochastic flapping); ``1.0`` is nominal.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim.kernel import Signal, SimulationError, Simulator

__all__ = [
    "Host",
    "HostDownError",
    "HostSpec",
    "HostState",
    "Interrupted",
    "TaskExecution",
]

_exec_ids = itertools.count(1)

#: progress below this rate is treated as stalled (host down / fully thrashed)
_MIN_RATE = 1e-12


class HostDownError(RuntimeError):
    """Raised into executions whose host failed mid-run."""

    def __init__(self, host_name: str):
        super().__init__(f"host {host_name} went down")
        self.host_name = host_name


class HostState(enum.Enum):
    UP = "up"
    DOWN = "down"


@dataclass(frozen=True)
class HostSpec:
    """Static attributes of a host, as stored in the resource-performance DB.

    Mirrors the paper's resource attribute list: "host name, IP address,
    architecture type, OS type, total memory size of the machine, recent
    workload measurements, and available memory size" (§3).
    """

    name: str
    speed: float = 1.0  # relative to the base processor
    memory_mb: int = 256
    arch: str = "sparc"
    os: str = "solaris"
    ip: str = "0.0.0.0"
    #: rate multiplier applied while resident memory exceeds memory_mb
    thrash_factor: float = 0.25

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"host {self.name!r}: speed must be positive")
        if self.memory_mb <= 0:
            raise ValueError(f"host {self.name!r}: memory_mb must be positive")
        if not (0.0 < self.thrash_factor <= 1.0):
            raise ValueError(f"host {self.name!r}: thrash_factor must be in (0, 1]")


class TaskExecution:
    """One task running (or queued to run) on a host.

    ``done`` is a :class:`Signal` that succeeds with the execution when
    the work completes, or fails with :class:`HostDownError` /
    cancellation errors.  ``cpu_time`` accumulates virtual seconds of
    wall time during which the execution was resident on the host.
    """

    def __init__(self, host: "Host", work: float, memory_mb: int, label: str = ""):
        self.id = next(_exec_ids)
        self.host = host
        self.work = float(work)
        self.remaining = float(work)
        self.memory_mb = int(memory_mb)
        self.label = label or f"exec-{self.id}"
        self.started_at = host.sim.now
        self.finished_at: Optional[float] = None
        self.done: Signal = host.sim.signal(f"{host.spec.name}:{self.label}:done")

    @property
    def elapsed(self) -> float:
        end = self.finished_at if self.finished_at is not None else self.host.sim.now
        return end - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskExecution({self.label!r} on {self.host.spec.name!r}, "
            f"remaining={self.remaining:.3f}/{self.work:.3f})"
        )


class Host:
    """A simulated machine with processor-sharing execution semantics."""

    def __init__(self, sim: Simulator, spec: HostSpec, site_name: str = ""):
        self.sim = sim
        self.spec = spec
        self.site_name = site_name
        self.state = HostState.UP
        self.bg_load: float = 0.0
        #: performance-fault factor: > 1 stretches every resident
        #: execution by that multiple (1.0 = nominal)
        self.slowdown: float = 1.0
        self._running: list[TaskExecution] = []
        self._last_settle = sim.now
        self._completion_call = None
        #: counters for experiments
        self.completed_count = 0
        self.failed_count = 0
        self.busy_time = 0.0

    # -- observable metrics (what the Monitor daemon measures) -----------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def n_running(self) -> int:
        return len(self._running)

    def load_average(self) -> float:
        """Run-queue length: background load + resident VDCE tasks.

        This is the "recent workload measurement" the Monitor daemon
        periodically reports upward (paper §4.1).
        """
        return self.bg_load + len(self._running)

    def available_memory_mb(self) -> int:
        used = sum(e.memory_mb for e in self._running)
        return max(0, self.spec.memory_mb - used)

    def is_up(self) -> bool:
        return self.state == HostState.UP

    # -- execution ---------------------------------------------------------

    def per_task_rate(self) -> float:
        """Work units per virtual second delivered to each resident task."""
        if self.state is HostState.DOWN or not self._running:
            return 0.0
        rate = self.spec.speed / (self.bg_load + len(self._running))
        used = sum(e.memory_mb for e in self._running)
        if used > self.spec.memory_mb:
            rate *= self.spec.thrash_factor
        if self.slowdown > 1.0:
            rate /= self.slowdown
        return rate

    def execute(self, work: float, memory_mb: int = 0, label: str = "") -> TaskExecution:
        """Begin executing ``work`` base-processor seconds on this host."""
        if work < 0:
            raise SimulationError(f"negative work: {work}")
        if self.state is HostState.DOWN:
            raise HostDownError(self.spec.name)
        self._settle()
        execution = TaskExecution(self, work, memory_mb, label)
        self._running.append(execution)
        self.sim.trace(
            "exec.start", host=self.spec.name, label=execution.label, work=work
        )
        if execution.remaining <= 0.0:
            # Zero-work tasks complete immediately (but asynchronously).
            self._running.remove(execution)
            execution.finished_at = self.sim.now
            self.completed_count += 1
            self.sim.call_at(self.sim.now, lambda: execution.done.succeed(execution))
        self._reschedule_completion()
        return execution

    def cancel(self, execution: TaskExecution, cause: Any = None) -> None:
        """Abort a running execution (Application Controller rescheduling)."""
        if execution not in self._running:
            return
        self._settle()
        self._running.remove(execution)
        execution.finished_at = self.sim.now
        self.failed_count += 1
        self.sim.trace("exec.cancel", host=self.spec.name, label=execution.label)
        execution.done.fail(
            cause if isinstance(cause, BaseException) else Interrupted(cause)
        )
        self._reschedule_completion()

    def preempt_all(self, cause: Any = None) -> int:
        """Cancel every resident execution (graceful-drain preemption).

        Returns the number of executions evicted; each fails its
        ``done`` signal like an individual :meth:`cancel`, so owners
        observe the same :class:`Interrupted` they would after an
        Application Controller termination.
        """
        victims = list(self._running)
        for execution in victims:
            self.cancel(execution, cause)
        return len(victims)

    def set_bg_load(self, value: float) -> None:
        """Update background load (driven by a workload generator process)."""
        if value < 0:
            raise SimulationError(f"negative background load: {value}")
        self._settle()
        self.bg_load = float(value)
        self._reschedule_completion()

    def set_slowdown(self, factor: float) -> None:
        """Change the performance-fault factor (1.0 restores nominal).

        Progress accrued so far is settled first, so an execution that
        ran nominal for a while and then straggles stretches only its
        remaining work — the factor is genuinely time-varying.
        """
        if factor < 1.0:
            raise SimulationError(f"slowdown factor must be >= 1, got {factor}")
        if factor == self.slowdown:
            return
        self._settle()
        self.slowdown = float(factor)
        self.sim.trace("host.slowdown", host=self.spec.name, factor=factor)
        self._reschedule_completion()

    # -- failures ------------------------------------------------------------

    def fail(self) -> None:
        """Crash the host: all resident executions fail with HostDownError."""
        if self.state is HostState.DOWN:
            return
        self._settle()
        self.state = HostState.DOWN
        victims, self._running = self._running, []
        self.sim.trace("host.down", host=self.spec.name, victims=len(victims))
        for execution in victims:
            execution.finished_at = self.sim.now
            self.failed_count += 1
            execution.done.fail(HostDownError(self.spec.name))
        self._reschedule_completion()

    def recover(self) -> None:
        if self.state is HostState.UP:
            return
        self._last_settle = self.sim.now
        self.state = HostState.UP
        self.sim.trace("host.up", host=self.spec.name)

    # -- processor-sharing bookkeeping ----------------------------------------

    def _settle(self) -> None:
        """Credit elapsed progress to every resident execution."""
        now = self.sim.now
        elapsed = now - self._last_settle
        self._last_settle = now
        if elapsed <= 0 or not self._running:
            return
        rate = self.per_task_rate()
        self.busy_time += elapsed
        if rate <= 0:
            return
        credit = elapsed * rate
        for execution in self._running:
            execution.remaining = max(0.0, execution.remaining - credit)

    def _reschedule_completion(self) -> None:
        if self._completion_call is not None:
            self._completion_call.cancelled = True
            self._completion_call = None
        if not self._running:
            return
        rate = self.per_task_rate()
        if rate <= _MIN_RATE:
            return  # stalled: no progress until conditions change
        soonest = min(e.remaining for e in self._running)
        eta = soonest / rate
        self._completion_call = self.sim.call_after(eta, self._on_completion_tick)

    def _on_completion_tick(self) -> None:
        self._completion_call = None
        self._settle()
        finished = [e for e in self._running if e.remaining <= 1e-9]
        if not finished and self._running:
            # Float-stall guard (see Link._tick): a residual whose ETA is
            # below the clock's ulp would re-tick at the same instant
            # forever; treat it as complete.
            rate = self.per_task_rate()
            if rate > _MIN_RATE:
                soonest = min(e.remaining for e in self._running)
                if self.sim.now + soonest / rate <= self.sim.now:
                    finished = [
                        e for e in self._running if e.remaining <= soonest
                    ]
        for execution in finished:
            self._running.remove(execution)
            execution.remaining = 0.0
            execution.finished_at = self.sim.now
            self.completed_count += 1
            self.sim.trace(
                "exec.done",
                host=self.spec.name,
                label=execution.label,
                elapsed=execution.elapsed,
            )
            execution.done.succeed(execution)
        self._reschedule_completion()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Host({self.spec.name!r}, speed={self.spec.speed}, "
            f"state={self.state.value}, load={self.load_average():.2f})"
        )


class Interrupted(RuntimeError):
    """Execution was cancelled by the runtime (e.g. rescheduling)."""

    def __init__(self, cause: Any = None):
        super().__init__(f"execution cancelled: {cause!r}")
        self.cause = cause

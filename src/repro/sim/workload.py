"""Background-workload generators for non-dedicated hosts.

The paper targets non-dedicated networks of workstations: other users'
processes contend for CPU, and the Monitor daemons exist precisely to
track that contention (§4.1).  Each generator here is a kernel process
that periodically updates a host's background load (run-queue length).
Generators are deterministic given the simulator seed, so monitoring
and rescheduling experiments are reproducible.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.sim.host import Host
from repro.sim.kernel import Process, Simulator, Timeout

__all__ = [
    "ConstantLoad",
    "DiurnalLoad",
    "LoadGenerator",
    "OrnsteinUhlenbeckLoad",
    "RandomWalkLoad",
    "SpikeLoad",
    "TraceLoad",
]


class LoadGenerator:
    """Base class: drives ``host.set_bg_load`` on a fixed period."""

    def __init__(self, period_s: float = 1.0):
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.period_s = float(period_s)
        self.updates = 0

    def start(self, sim: Simulator, host: Host) -> Process:
        """Spawn the generator process for ``host``."""
        return sim.process(self._run(sim, host), name=f"load:{host.name}")

    def _run(self, sim: Simulator, host: Host):
        rng = sim.rng(f"load:{host.name}")
        state = self.initial(rng)
        while True:
            host.set_bg_load(max(0.0, state))
            self.updates += 1
            yield Timeout(self.period_s)
            state = self.next_value(state, rng)

    # -- subclass hooks -----------------------------------------------------

    def initial(self, rng) -> float:
        raise NotImplementedError

    def next_value(self, current: float, rng) -> float:
        raise NotImplementedError


class ConstantLoad(LoadGenerator):
    """A fixed background load (dedicated machine: 0.0)."""

    def __init__(self, level: float = 0.0, period_s: float = 60.0):
        super().__init__(period_s)
        if level < 0:
            raise ValueError("load level must be non-negative")
        self.level = float(level)

    def initial(self, rng) -> float:
        return self.level

    def next_value(self, current: float, rng) -> float:
        return self.level


class RandomWalkLoad(LoadGenerator):
    """Load takes uniform steps in ``[-step, +step]``, clamped to [lo, hi]."""

    def __init__(self, lo: float = 0.0, hi: float = 2.0, step: float = 0.2,
                 period_s: float = 1.0):
        super().__init__(period_s)
        if not (0 <= lo <= hi):
            raise ValueError("require 0 <= lo <= hi")
        self.lo, self.hi, self.step = float(lo), float(hi), float(step)

    def initial(self, rng) -> float:
        return float(rng.uniform(self.lo, self.hi))

    def next_value(self, current: float, rng) -> float:
        nxt = current + float(rng.uniform(-self.step, self.step))
        return min(self.hi, max(self.lo, nxt))


class OrnsteinUhlenbeckLoad(LoadGenerator):
    """Mean-reverting load — the standard model for CPU load averages.

    ``x' = x + theta * (mean - x) + sigma * N(0, 1)``, clamped at 0.
    High ``theta`` gives calm hosts; high ``sigma`` gives volatile ones
    (the knob for the monitoring-threshold experiment E5).
    """

    def __init__(self, mean: float = 0.5, theta: float = 0.2, sigma: float = 0.15,
                 period_s: float = 1.0):
        super().__init__(period_s)
        if mean < 0 or sigma < 0 or not (0 < theta <= 1):
            raise ValueError("require mean>=0, sigma>=0, 0<theta<=1")
        self.mean, self.theta, self.sigma = float(mean), float(theta), float(sigma)

    def initial(self, rng) -> float:
        return max(0.0, float(rng.normal(self.mean, self.sigma)))

    def next_value(self, current: float, rng) -> float:
        nxt = current + self.theta * (self.mean - current) + self.sigma * float(
            rng.normal()
        )
        return max(0.0, nxt)


class SpikeLoad(LoadGenerator):
    """Mostly idle, with occasional sustained load spikes.

    Models a workstation owner returning to their desk: with probability
    ``spike_prob`` per period a spike of ``spike_level`` begins and lasts
    ``spike_duration_periods`` periods.  Drives experiment E7 (dynamic
    rescheduling under load spikes).
    """

    def __init__(self, base: float = 0.1, spike_level: float = 4.0,
                 spike_prob: float = 0.02, spike_duration_periods: int = 10,
                 period_s: float = 1.0):
        super().__init__(period_s)
        if spike_duration_periods < 1:
            raise ValueError("spike_duration_periods must be >= 1")
        if not (0 <= spike_prob <= 1):
            raise ValueError("spike_prob must be a probability")
        self.base = float(base)
        self.spike_level = float(spike_level)
        self.spike_prob = float(spike_prob)
        self.spike_duration_periods = int(spike_duration_periods)
        self._remaining_spike = 0

    def initial(self, rng) -> float:
        self._remaining_spike = 0
        return self.base

    def next_value(self, current: float, rng) -> float:
        if self._remaining_spike > 0:
            self._remaining_spike -= 1
            return self.spike_level
        if float(rng.uniform()) < self.spike_prob:
            self._remaining_spike = self.spike_duration_periods - 1
            return self.spike_level
        return self.base


class DiurnalLoad(LoadGenerator):
    """Daily rhythm of a shared workstation: busy days, quiet nights.

    Load follows ``base + amplitude * max(0, sin(2pi (t - phase)/day))``
    plus mean-zero jitter — the canonical non-dedicated-NOW pattern the
    paper's monitoring subsystem exists to track across hours.
    """

    def __init__(self, base: float = 0.1, amplitude: float = 1.5,
                 day_length_s: float = 86400.0, phase_s: float = 0.0,
                 jitter: float = 0.1, period_s: float = 60.0):
        super().__init__(period_s)
        if base < 0 or amplitude < 0 or jitter < 0:
            raise ValueError("base, amplitude and jitter must be non-negative")
        if day_length_s <= 0:
            raise ValueError("day_length_s must be positive")
        self.base = float(base)
        self.amplitude = float(amplitude)
        self.day_length_s = float(day_length_s)
        self.phase_s = float(phase_s)
        self.jitter = float(jitter)
        self._elapsed = 0.0

    def _level(self, t: float, rng) -> float:
        import math

        daytime = math.sin(2.0 * math.pi * (t - self.phase_s) / self.day_length_s)
        level = self.base + self.amplitude * max(0.0, daytime)
        if self.jitter > 0:
            level += self.jitter * float(rng.normal())
        return max(0.0, level)

    def initial(self, rng) -> float:
        self._elapsed = 0.0
        return self._level(0.0, rng)

    def next_value(self, current: float, rng) -> float:
        self._elapsed += self.period_s
        return self._level(self._elapsed, rng)


class TraceLoad(LoadGenerator):
    """Replays an explicit ``(load value per period)`` sequence, then holds.

    Used by tests that need exact, hand-written load timelines.
    """

    def __init__(self, values: Sequence[float], period_s: float = 1.0):
        super().__init__(period_s)
        if not values:
            raise ValueError("trace must be non-empty")
        if any(v < 0 for v in values):
            raise ValueError("trace values must be non-negative")
        self.values = [float(v) for v in values]
        self._index = 0

    def initial(self, rng) -> float:
        self._index = 0
        return self.values[0]

    def next_value(self, current: float, rng) -> float:
        self._index = min(self._index + 1, len(self.values) - 1)
        return self.values[self._index]


def attach_generators(
    sim: Simulator,
    hosts: Iterable[Host],
    generator_factory,
) -> list[Process]:
    """Attach a fresh generator (from ``generator_factory()``) to every host."""
    return [generator_factory().start(sim, host) for host in hosts]

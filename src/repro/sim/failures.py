"""Failure injection: hosts crash and (optionally) recover.

Paper §4.1: "the Group Manager ... periodically check[s] all hosts in
the group by sending echo packets ... When a failure of a host is
detected, the Group Manager passes this information to the Site
Manager.  The host is then marked as 'down' at the site's
resource-performance database."

This module provides the ground truth that machinery must detect:
scheduled or stochastic crash/recover events on hosts.  Detection
latency experiments (E6) compare the injection log against the
runtime's repository updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.sim.host import Host
from repro.sim.kernel import Process, Simulator, Timeout

__all__ = ["FailureEvent", "FailureInjector"]


@dataclass(frozen=True)
class FailureEvent:
    """Ground-truth record of one state change."""

    time: float
    host: str
    kind: str  # "down" | "up"


class FailureInjector:
    """Schedules crash/recovery events against topology hosts.

    Two modes:

    * :meth:`schedule` — explicit ``(time, host, kind)`` scripts for
      deterministic tests;
    * :meth:`start_random` — exponential time-to-failure / time-to-repair
      per host, for stochastic availability experiments.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.log: List[FailureEvent] = []

    # -- scripted ------------------------------------------------------------

    def schedule(self, host: Host, time: float, kind: str = "down") -> None:
        if kind not in ("down", "up"):
            raise ValueError(f"kind must be 'down' or 'up', got {kind!r}")

        def fire() -> None:
            if kind == "down":
                host.fail()
            else:
                host.recover()
            self.log.append(FailureEvent(self.sim.now, host.name, kind))

        self.sim.call_at(time, fire)

    def schedule_outage(self, host: Host, start: float, duration: float) -> None:
        """Crash ``host`` at ``start`` and recover it ``duration`` later."""
        if duration <= 0:
            raise ValueError("outage duration must be positive")
        self.schedule(host, start, "down")
        self.schedule(host, start + duration, "up")

    # -- stochastic ------------------------------------------------------------

    def start_random(
        self,
        host: Host,
        mtbf_s: float,
        mttr_s: float,
    ) -> Process:
        """Exponential failure/repair process for ``host``.

        ``mtbf_s``: mean time between failures; ``mttr_s``: mean time to
        repair.  Draws come from the stream ``fail:<host>`` so adding an
        injector to one host never perturbs another host's fate.
        """
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")

        def run():
            rng = self.sim.rng(f"fail:{host.name}")
            while True:
                yield Timeout(float(rng.exponential(mtbf_s)))
                host.fail()
                self.log.append(FailureEvent(self.sim.now, host.name, "down"))
                yield Timeout(float(rng.exponential(mttr_s)))
                host.recover()
                self.log.append(FailureEvent(self.sim.now, host.name, "up"))

        return self.sim.process(run(), name=f"failinj:{host.name}")

    # -- queries --------------------------------------------------------------

    def downtime_intervals(self, host_name: str) -> List[Tuple[float, Optional[float]]]:
        """``(down_at, up_at)`` pairs for a host; ``up_at`` None if still down."""
        intervals: List[Tuple[float, Optional[float]]] = []
        down_at: Optional[float] = None
        for event in self.log:
            if event.host != host_name:
                continue
            if event.kind == "down" and down_at is None:
                down_at = event.time
            elif event.kind == "up" and down_at is not None:
                intervals.append((down_at, event.time))
                down_at = None
        if down_at is not None:
            intervals.append((down_at, None))
        return intervals

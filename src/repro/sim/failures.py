"""Failure injection: hosts, links, sites and WAN partitions.

Paper §4.1: "the Group Manager ... periodically check[s] all hosts in
the group by sending echo packets ... When a failure of a host is
detected, the Group Manager passes this information to the Site
Manager.  The host is then marked as 'down' at the site's
resource-performance database."

This module provides the ground truth that machinery must detect:
scheduled or stochastic crash/recover events on hosts, link outages,
whole-site outages, WAN partitions, and *performance faults* —
slowdown intervals and stochastic flapping during which a host answers
echoes but computes at a fraction of its nominal speed (the straggler
model the phi-accrual detector and speculative re-execution defend
against).  Detection latency experiments
(E6) and the chaos harness (:mod:`repro.sim.chaos`) compare the
injection log against the runtime's repository updates.

Every stochastic process draws from its own named RNG stream
(``fail:<target>``), so adding an injector to one target never perturbs
another target's fate and campaigns stay deterministic and composable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sim.host import Host
from repro.sim.kernel import Process, SimulationError, Simulator, Timeout
from repro.sim.network import Link, Network

__all__ = ["FailureEvent", "FailureInjector"]


@dataclass(frozen=True)
class FailureEvent:
    """Ground-truth record of one state change.

    ``host`` carries the target's name: a host name, a link name
    (``lan:<site>`` / ``wan:<a>-<b>``), ``site:<name>`` for whole-site
    outage markers, or ``partition`` for partition markers.
    """

    time: float
    host: str
    # "down" | "up" | "partition" | "heal" | "slow" | "normal"
    # | "corrupt-armed" | "artifact-loss" | "journal-corrupt"
    # | "join" | "drain" | "decommission" | "rejoin"
    kind: str
    #: slowdown factor for "slow" events (1.0 otherwise)
    factor: float = 1.0


class FailureInjector:
    """Schedules crash/recovery events against topology resources.

    Two modes, for every fault class:

    * scripted — explicit ``(time, target, kind)`` events for
      deterministic tests (:meth:`schedule`, :meth:`schedule_outage`,
      :meth:`schedule_link_outage`, :meth:`schedule_site_outage`,
      :meth:`schedule_partition`);
    * stochastic — exponential time-to-failure / time-to-repair
      (:meth:`start_random`, :meth:`start_random_link`).

    Only *effective* state changes are logged: crashing a host that is
    already down records nothing, so :meth:`downtime_intervals` pairs
    cleanly even when scripted and stochastic injectors overlap.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.log: List[FailureEvent] = []

    # -- scripted host faults ------------------------------------------------

    def schedule(self, host: Host, time: float, kind: str = "down") -> None:
        if kind not in ("down", "up"):
            raise ValueError(f"kind must be 'down' or 'up', got {kind!r}")
        if time < self.sim.now:
            raise ValueError(
                f"cannot schedule a failure event in the past "
                f"(time={time}, now={self.sim.now})"
            )
        self.sim.call_at(time, lambda: self._apply_host(host, kind))

    def schedule_outage(self, host: Host, start: float, duration: float) -> None:
        """Crash ``host`` at ``start`` and recover it ``duration`` later."""
        if duration <= 0:
            raise ValueError("outage duration must be positive")
        self.schedule(host, start, "down")
        self.schedule(host, start + duration, "up")

    def _apply_host(self, host: Host, kind: str) -> None:
        if kind == "down":
            if not host.is_up():
                return  # already down: nothing changes, nothing logged
            host.fail()
        else:
            if host.is_up():
                return
            host.recover()
        self.log.append(FailureEvent(self.sim.now, host.name, kind))

    # -- scripted performance faults (stragglers) ------------------------------

    def schedule_host_slowdown(
        self, host: Host, start: float, duration: float, factor: float
    ) -> None:
        """Degrade ``host`` by ``factor`` at ``start``, restoring it
        ``duration`` later.

        While degraded every resident execution progresses ``factor``
        times slower (compute *and* the IO the host mediates), so the
        host looks alive to echo packets but genuinely straggles.
        """
        if duration <= 0:
            raise ValueError("slowdown duration must be positive")
        if factor <= 1.0:
            raise ValueError(f"slowdown factor must exceed 1, got {factor}")
        if start < self.sim.now:
            raise ValueError(
                f"cannot schedule a slowdown event in the past "
                f"(time={start}, now={self.sim.now})"
            )
        self.sim.call_at(start, lambda: self._apply_slowdown(host, factor))
        self.sim.call_at(start + duration, lambda: self._apply_slowdown(host, 1.0))

    def _apply_slowdown(self, host: Host, factor: float) -> None:
        if factor > 1.0:
            if host.slowdown > 1.0:
                return  # already degraded: nothing changes, nothing logged
            host.set_slowdown(factor)
            self.log.append(FailureEvent(self.sim.now, host.name, "slow", factor))
        else:
            if host.slowdown <= 1.0:
                return
            host.set_slowdown(1.0)
            self.log.append(FailureEvent(self.sim.now, host.name, "normal"))

    def start_flapping(
        self,
        host: Host,
        mean_normal_s: float,
        mean_slow_s: float,
        factor: float,
    ) -> Process:
        """Stochastic performance flapping for ``host``.

        Alternates exponentially distributed nominal and degraded
        phases; draws come from the stream ``fail:<host>`` like the
        crash injector, so one host's fate never perturbs another's.
        """
        if mean_normal_s <= 0 or mean_slow_s <= 0:
            raise ValueError("mean_normal_s and mean_slow_s must be positive")
        if factor <= 1.0:
            raise ValueError(f"slowdown factor must exceed 1, got {factor}")

        def run():
            rng = self.sim.rng(f"fail:{host.name}")
            while True:
                yield Timeout(float(rng.exponential(mean_normal_s)))
                self._apply_slowdown(host, factor)
                yield Timeout(float(rng.exponential(mean_slow_s)))
                self._apply_slowdown(host, 1.0)

        return self.sim.process(run(), name=f"flapinj:{host.name}")

    # -- scripted link faults ------------------------------------------------

    def schedule_link(self, link: Link, time: float, kind: str = "down") -> None:
        if kind not in ("down", "up"):
            raise ValueError(f"kind must be 'down' or 'up', got {kind!r}")
        if time < self.sim.now:
            raise ValueError(
                f"cannot schedule a link event in the past "
                f"(time={time}, now={self.sim.now})"
            )
        self.sim.call_at(time, lambda: self._apply_link(link, kind))

    def schedule_link_outage(self, link: Link, start: float, duration: float) -> None:
        """Take ``link`` down at ``start`` and restore it ``duration`` later."""
        if duration <= 0:
            raise ValueError("outage duration must be positive")
        self.schedule_link(link, start, "down")
        self.schedule_link(link, start + duration, "up")

    def _apply_link(self, link: Link, kind: str) -> None:
        if kind == "down":
            if not link.up:
                return
            link.fail()
        else:
            if link.up:
                return
            link.recover()
        self.log.append(FailureEvent(self.sim.now, link.spec.name, kind))

    # -- scripted WAN partitions ----------------------------------------------

    def schedule_partition(
        self,
        network: Network,
        groups: Sequence[Sequence[str]],
        start: float,
        duration: float,
    ) -> None:
        """Partition the WAN into site ``groups`` for ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("partition duration must be positive")
        if start < self.sim.now:
            raise ValueError("cannot schedule a partition in the past")
        label = " | ".join(",".join(sorted(g)) for g in groups)

        def begin() -> None:
            downed = network.partition(groups)
            self.log.append(FailureEvent(self.sim.now, f"partition:{label}", "partition"))
            for key in downed:
                self.log.append(
                    FailureEvent(self.sim.now, network.wan_link(*key).spec.name, "down")
                )

        def end() -> None:
            healed = network.heal_partition()
            for key in healed:
                self.log.append(
                    FailureEvent(self.sim.now, network.wan_link(*key).spec.name, "up")
                )
            self.log.append(FailureEvent(self.sim.now, f"partition:{label}", "heal"))

        self.sim.call_at(start, begin)
        self.sim.call_at(start + duration, end)

    # -- scripted whole-site outages -------------------------------------------

    def schedule_site_outage(
        self,
        site,
        network: Network,
        start: float,
        duration: float,
    ) -> None:
        """Take a whole :class:`~repro.sim.site.Site` down: every host
        crashes and every link touching the site (LAN + WAN) goes dark."""
        if duration <= 0:
            raise ValueError("outage duration must be positive")
        if start < self.sim.now:
            raise ValueError("cannot schedule a site outage in the past")

        def begin() -> None:
            self.log.append(FailureEvent(self.sim.now, f"site:{site.name}", "down"))
            for host in sorted(site.hosts.values(), key=lambda h: h.name):
                self._apply_host(host, "down")
            for link in network.links_of_site(site.name):
                self._apply_link(link, "down")

        def end() -> None:
            for link in network.links_of_site(site.name):
                self._apply_link(link, "up")
            for host in sorted(site.hosts.values(), key=lambda h: h.name):
                self._apply_host(host, "up")
            self.log.append(FailureEvent(self.sim.now, f"site:{site.name}", "up"))

        self.sim.call_at(start, begin)
        self.sim.call_at(start + duration, end)

    # -- scripted manager crashes (control-plane faults) -----------------------

    def schedule_group_manager_crash(
        self, gm, time: float, duration: Optional[float] = None
    ) -> None:
        """Crash a Group Manager process at ``time``.

        With ``duration`` the original manager recovers that much later;
        without it the crash is permanent and the group's Monitor
        daemons elect a deputy (``gm.request_failover``).  ``gm`` is
        duck-typed (``alive`` / ``crash()`` / ``recover()``) so this
        module keeps its no-runtime-imports layering.
        """
        self._schedule_manager(gm, f"gm:{gm.name}", time, duration)

    def schedule_site_manager_crash(
        self, sm, time: float, duration: Optional[float] = None
    ) -> None:
        """Crash a Site Manager (the VDCE Server process) at ``time``.

        While crashed the site answers no bids, takes no allocations and
        buffers monitoring reports; with ``duration`` a replacement
        server re-registers that much later and replays them.
        """
        self._schedule_manager(sm, f"sm:{sm.name}", time, duration)

    def _schedule_manager(
        self, manager, label: str, time: float, duration: Optional[float]
    ) -> None:
        if time < self.sim.now:
            raise ValueError("cannot schedule a manager crash in the past")
        if duration is not None and duration <= 0:
            raise ValueError("crash duration must be positive")

        def crash() -> None:
            if not manager.alive:
                return  # already crashed: nothing changes, nothing logged
            manager.crash()
            self.log.append(FailureEvent(self.sim.now, label, "down"))

        def recover() -> None:
            if manager.alive:
                return  # a failover beat the scripted recovery
            manager.recover()
            self.log.append(FailureEvent(self.sim.now, label, "up"))

        self.sim.call_at(time, crash)
        if duration is not None:
            self.sim.call_at(time + duration, recover)

    # -- data-plane corruption faults ------------------------------------------

    def schedule_link_corruption(
        self,
        link: Link,
        time: float,
        corrupt_prob: float,
        truncate_prob: float = 0.0,
        duration: Optional[float] = None,
    ) -> None:
        """Arm payload bit-flip/truncation on ``link`` at ``time``.

        With ``duration`` the link is disarmed that much later.  The
        per-transfer draws come from the link's own ``corrupt:<name>``
        stream (see :meth:`Link._maybe_corrupt`), so arming one link
        never perturbs another's fate and unarmed runs draw nothing.
        """
        if time < self.sim.now:
            raise ValueError("cannot schedule link corruption in the past")
        if duration is not None and duration <= 0:
            raise ValueError("corruption duration must be positive")

        def arm() -> None:
            link.corrupt_prob = corrupt_prob
            link.truncate_prob = truncate_prob
            self.log.append(
                FailureEvent(self.sim.now, link.spec.name, "corrupt-armed")
            )

        def disarm() -> None:
            link.corrupt_prob = 0.0
            link.truncate_prob = 0.0
            self.log.append(FailureEvent(self.sim.now, link.spec.name, "normal"))

        self.sim.call_at(time, arm)
        if duration is not None:
            self.sim.call_at(time + duration, disarm)

    def schedule_artifact_loss(self, store, host_name: str, time: float) -> None:
        """Vanish every staged artifact held on ``host_name`` at ``time``.

        ``store`` is duck-typed (``drop_host(host_name) -> int``, the
        :class:`~repro.runtime.integrity.IntegrityManager`'s artifact
        index) to keep this module's no-runtime-imports layering, like
        the manager-crash hooks above.  Only an *effective* loss — one
        that actually dropped artifacts — is logged.
        """
        if time < self.sim.now:
            raise ValueError("cannot schedule artifact loss in the past")

        def lose() -> None:
            dropped = store.drop_host(host_name)
            if dropped:
                self.log.append(
                    FailureEvent(
                        self.sim.now, f"artifacts:{host_name}", "artifact-loss"
                    )
                )

        self.sim.call_at(time, lose)

    def schedule_journal_corruption(self, journal, time: float, label: str) -> None:
        """Damage one checkpoint-journal record at ``time``.

        ``journal`` is duck-typed (``inject_corruption(rng)``); the byte
        or record to damage is drawn from the stream
        ``corrupt:journal:<label>`` so journal faults compose with every
        other injector without perturbing their draws.
        """
        if time < self.sim.now:
            raise ValueError("cannot schedule journal corruption in the past")

        def corrupt() -> None:
            rng = self.sim.rng(f"corrupt:journal:{label}")
            detail = journal.inject_corruption(rng)
            if detail.get("offset") is not None or detail.get("index") is not None:
                self.log.append(
                    FailureEvent(
                        self.sim.now, f"journal:{label}", "journal-corrupt"
                    )
                )

        self.sim.call_at(time, corrupt)

    # -- elastic membership (churn) --------------------------------------------

    def schedule_host_join(self, manager, spec, group_name: str, time: float) -> None:
        """Admit a new host into a site's group at ``time``.

        ``manager`` is duck-typed (``alive`` /
        ``admit_host(spec, group_name)``, the Site Manager's membership
        RPC) to keep this module's no-runtime-imports layering.  A dead
        manager skips the join silently — the roster cannot change
        through a crashed VDCE server.
        """
        if time < self.sim.now:
            raise ValueError("cannot schedule a host join in the past")

        def join() -> None:
            if not getattr(manager, "alive", True):
                return  # the site's server is down: no membership change
            manager.admit_host(spec, group_name)
            self.log.append(FailureEvent(self.sim.now, spec.name, "join"))

        self.sim.call_at(time, join)

    def schedule_host_decommission(
        self,
        manager,
        host_name: str,
        time: float,
        drain_deadline_s: Optional[float] = None,
    ) -> None:
        """Decommission ``host_name`` at ``time``.

        With ``drain_deadline_s`` the removal is a *graceful drain*: new
        placements stop immediately, running attempts get that long to
        finish, and the host retires at the deadline.  Without it the
        host is retired on the spot (hard decommission).  ``manager`` is
        duck-typed (``alive`` / ``drain_host`` / ``retire_host``).
        """
        if time < self.sim.now:
            raise ValueError("cannot schedule a decommission in the past")
        if drain_deadline_s is not None and drain_deadline_s <= 0:
            raise ValueError("drain deadline must be positive")

        def decommission() -> None:
            if not getattr(manager, "alive", True):
                return
            if drain_deadline_s is None:
                manager.retire_host(host_name)
                self.log.append(
                    FailureEvent(self.sim.now, host_name, "decommission")
                )
            else:
                manager.drain_host(host_name, drain_deadline_s)
                self.log.append(FailureEvent(self.sim.now, host_name, "drain"))

        self.sim.call_at(time, decommission)

    def schedule_host_rejoin(self, manager, host_name: str, time: float) -> None:
        """Bring a previously departed host back at ``time``.

        ``manager`` is duck-typed (``alive`` / ``rejoin_host(name)``);
        the host comes back under a fresh membership epoch with its old
        task-performance calibration intact.
        """
        if time < self.sim.now:
            raise ValueError("cannot schedule a host rejoin in the past")

        def rejoin() -> None:
            if not getattr(manager, "alive", True):
                return
            manager.rejoin_host(host_name)
            self.log.append(FailureEvent(self.sim.now, host_name, "rejoin"))

        self.sim.call_at(time, rejoin)

    def schedule_churn(
        self,
        manager,
        host_names: Sequence[str],
        start: float,
        window_s: float,
        drain_deadline_s: Optional[float] = 6.0,
        rejoin_after_s: Optional[float] = None,
    ) -> None:
        """Membership churn: each host departs (and optionally rejoins).

        Each target's departure time is drawn uniformly inside
        ``[start, start + window_s)`` from its own ``churn:<name>``
        stream, so churning one host never perturbs another target's
        fate and an unarmed run (empty ``host_names``) draws nothing.
        With ``rejoin_after_s`` the host rejoins that long after it
        fully departed, jittered ±25% from the same stream.
        """
        if window_s <= 0:
            raise ValueError("churn window must be positive")
        if start < self.sim.now:
            raise ValueError("cannot schedule churn in the past")
        if rejoin_after_s is not None and rejoin_after_s <= 0:
            raise ValueError("rejoin_after_s must be positive")
        for host_name in host_names:
            rng = self.sim.rng(f"churn:{host_name}")
            depart_at = start + float(rng.uniform(0.0, window_s))
            self.schedule_host_decommission(
                manager, host_name, depart_at,
                drain_deadline_s=drain_deadline_s,
            )
            if rejoin_after_s is not None:
                departed_at = depart_at + (drain_deadline_s or 0.0)
                delay = rejoin_after_s * float(rng.uniform(0.75, 1.25))
                self.schedule_host_rejoin(
                    manager, host_name, departed_at + delay
                )

    # -- stochastic ------------------------------------------------------------

    def start_random(
        self,
        host: Host,
        mtbf_s: float,
        mttr_s: float,
    ) -> Process:
        """Exponential failure/repair process for ``host``.

        ``mtbf_s``: mean time between failures; ``mttr_s``: mean time to
        repair.  Draws come from the stream ``fail:<host>`` so adding an
        injector to one host never perturbs another host's fate.
        """
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")

        def run():
            rng = self.sim.rng(f"fail:{host.name}")
            while True:
                yield Timeout(float(rng.exponential(mtbf_s)))
                self._apply_host(host, "down")
                yield Timeout(float(rng.exponential(mttr_s)))
                self._apply_host(host, "up")

        return self.sim.process(run(), name=f"failinj:{host.name}")

    def start_random_link(
        self,
        link: Link,
        mtbf_s: float,
        mttr_s: float,
    ) -> Process:
        """Exponential outage/repair process for a link.

        Draws come from the stream ``fail:<link-name>``, independent of
        every other injector.
        """
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")

        def run():
            rng = self.sim.rng(f"fail:{link.spec.name}")
            while True:
                yield Timeout(float(rng.exponential(mtbf_s)))
                self._apply_link(link, "down")
                yield Timeout(float(rng.exponential(mttr_s)))
                self._apply_link(link, "up")

        return self.sim.process(run(), name=f"failinj:{link.spec.name}")

    # -- queries --------------------------------------------------------------

    def downtime_intervals(self, name: str) -> List[Tuple[float, Optional[float]]]:
        """``(down_at, up_at)`` pairs for a host or link; ``up_at`` is
        ``None`` while still down.

        Tolerates duplicate "down" (or "up") events for a target already
        in that state — e.g. overlapping scripted and stochastic
        injectors — by keeping the earliest "down" of each interval.
        """
        intervals: List[Tuple[float, Optional[float]]] = []
        down_at: Optional[float] = None
        for event in self.log:
            if event.host != name:
                continue
            if event.kind == "down" and down_at is None:
                down_at = event.time
            elif event.kind == "up" and down_at is not None:
                intervals.append((down_at, event.time))
                down_at = None
        if down_at is not None:
            intervals.append((down_at, None))
        return intervals

    def slowdown_intervals(self, name: str) -> List[Tuple[float, Optional[float]]]:
        """``(slow_at, normal_at)`` pairs for a host; ``normal_at`` is
        ``None`` while still degraded.

        Mirrors :meth:`downtime_intervals`: duplicate "slow" (or
        "normal") events for a host already in that state are tolerated
        by keeping the earliest "slow" of each interval.
        """
        intervals: List[Tuple[float, Optional[float]]] = []
        slow_at: Optional[float] = None
        for event in self.log:
            if event.host != name:
                continue
            if event.kind == "slow" and slow_at is None:
                slow_at = event.time
            elif event.kind == "normal" and slow_at is not None:
                intervals.append((slow_at, event.time))
                slow_at = None
        if slow_at is not None:
            intervals.append((slow_at, None))
        return intervals
